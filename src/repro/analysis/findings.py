"""The unit of lint output: a :class:`Finding` with a stable fingerprint."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Ordering is (path, line, col, rule) so reports and baselines are
    deterministic regardless of rule execution order.
    """

    path: str  # repo-relative posix path
    line: int  # 1-based
    col: int  # 0-based (ast convention)
    rule: str  # e.g. "SPA001"
    message: str
    hint: str = ""
    line_text: str = field(default="", compare=False)
    # Dotted name of the enclosing def/class chain ("Cls.method"), used
    # by the v2 fingerprint so findings survive unrelated line motion.
    qualname: str = field(default="", compare=False)

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}"

    @property
    def snippet(self) -> str:
        """Whitespace-normalised offending line (fingerprint material)."""
        return " ".join(self.line_text.split())

    def fingerprint(self) -> str:
        """Content-based identity used by the baseline file (v2).

        Hashes (rule, path, enclosing-def qualname, normalised source
        snippet) — not line numbers, and not raw indentation — so
        unrelated edits above a grandfathered finding, or a pure
        re-indent of the surrounding block, do not resurrect it.  Two
        identical lines in one *function* share a fingerprint; the
        baseline therefore stores a count per fingerprint rather than
        a set.
        """
        payload = (
            f"{self.rule}\x1f{self.path}\x1f{self.qualname}\x1f{self.snippet}"
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def fingerprint_v1(self) -> str:
        """Legacy (version-1 baseline) fingerprint, kept for migration.

        v1 keyed on (rule, path, stripped line text) only, so findings
        churned whenever an identical line moved between functions.
        Version-1 baseline files are matched through this fallback
        until they are rewritten with ``--write-baseline``.
        """
        payload = f"{self.rule}\x1f{self.path}\x1f{self.line_text.strip()}"
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
            "qualname": self.qualname,
            "fingerprint": self.fingerprint(),
        }

    def to_payload(self) -> dict:
        """Complete plain-dict form (the analysis cache's wire format)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
            "line_text": self.line_text,
            "qualname": self.qualname,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "Finding":
        return cls(
            path=payload["path"],
            line=int(payload["line"]),
            col=int(payload["col"]),
            rule=payload["rule"],
            message=payload["message"],
            hint=payload.get("hint", ""),
            line_text=payload.get("line_text", ""),
            qualname=payload.get("qualname", ""),
        )
