"""The unit of lint output: a :class:`Finding` with a stable fingerprint."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Ordering is (path, line, col, rule) so reports and baselines are
    deterministic regardless of rule execution order.
    """

    path: str  # repo-relative posix path
    line: int  # 1-based
    col: int  # 0-based (ast convention)
    rule: str  # e.g. "SPA001"
    message: str
    hint: str = ""
    line_text: str = field(default="", compare=False)

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}"

    def fingerprint(self) -> str:
        """Content-based identity used by the baseline file.

        Hashes the rule, path and the *text* of the offending line (not
        its number), so unrelated edits above a grandfathered finding do
        not resurrect it.  Two identical lines in one file share a
        fingerprint; the baseline therefore stores a count per
        fingerprint rather than a set.
        """
        payload = f"{self.rule}\x1f{self.path}\x1f{self.line_text.strip()}"
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
            "fingerprint": self.fingerprint(),
        }
