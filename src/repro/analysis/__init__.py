"""Static invariant checks for the SimProf codebase (``simprof check``).

SimProf's value proposition is that a sampled profile is a *faithful,
reproducible* estimator of the full run.  The stratified error bounds
of the paper hold only if replay is bit-identical under a fixed seed —
a stray ``random.random()``, a wall-clock read inside the simulated
pipeline, or an unordered ``set`` iteration feeding an artifact hash
silently breaks that contract without failing any unit test.

``repro.analysis`` machine-checks those invariants: a small AST-walking
lint framework (rule registry, per-rule findings with ``file:line`` and
fix hints, text/JSON reporters, inline ``# simprof: ignore[RULE]``
suppressions, and a checked-in baseline for grandfathered findings)
exposed as ``simprof check [--strict] [--format json] [paths...]``.

The shipped rules target this repo's real failure modes:

========  ====================================================
SPA001    global RNG state (``random.*`` / legacy ``np.random.*``)
SPA002    wall-clock reads inside deterministic packages
SPA003    seed discipline for public randomness-drawing functions
SPA004    unordered set/dict iteration feeding artifacts
SPA005    docstring numeric constants drifting from code
========  ====================================================

See ``docs/analysis.md`` for the full rule catalogue and workflow.
"""

from repro.analysis.base import (
    ModuleContext,
    Rule,
    all_rules,
    get_rule,
    register_rule,
)
from repro.analysis.baseline import Baseline
from repro.analysis.checker import CheckResult, check_source, run_check
from repro.analysis.findings import Finding
from repro.analysis.reporters import render_json, render_text

# Importing the package registers every built-in rule.
from repro.analysis import rules as _rules  # noqa: F401  (registration side effect)

__all__ = [
    "Finding",
    "ModuleContext",
    "Rule",
    "Baseline",
    "CheckResult",
    "all_rules",
    "get_rule",
    "register_rule",
    "run_check",
    "check_source",
    "render_text",
    "render_json",
]
