"""Static invariant checks for the SimProf codebase (``simprof check``).

SimProf's value proposition is that a sampled profile is a *faithful,
reproducible* estimator of the full run.  The stratified error bounds
of the paper hold only if replay is bit-identical under a fixed seed —
a stray ``random.random()``, a wall-clock read inside the simulated
pipeline, or an unordered ``set`` iteration feeding an artifact hash
silently breaks that contract without failing any unit test.

``repro.analysis`` machine-checks those invariants with a two-pass
whole-program engine: pass 1 runs per-module rules and builds a
:class:`~repro.analysis.index.ProjectIndex` (symbol tables, class
attribute maps, call edges, import graph), pass 2 runs cross-module
:class:`~repro.analysis.project.ProjectRule` checks over it.  Per-file
results are content-addressed in the
:class:`~repro.runtime.store.ArtifactStore` (unchanged file ⇒ zero
re-analysis) and both passes fan out over ``map_tasks`` with
byte-identical reports, exposed as ``simprof check [--strict]
[--format json|sarif] [--jobs N|auto] [--changed] [paths...]``.

The shipped rules target this repo's real failure modes:

========  ====================================================
SPA001    global RNG state (``random.*`` / legacy ``np.random.*``)
SPA002    wall-clock reads inside deterministic packages
SPA003    seed discipline for public randomness-drawing functions
SPA004    unordered set/dict iteration feeding artifacts
SPA005    docstring numeric constants drifting from code
SPA006    silently swallowed exceptions
SPA007    quadratic pairwise-distance loops
SPA008    per-row iteration over columnar batches
SPA009    snapshot-state drift (project)
SPA010    checkpoint-key completeness (project)
SPA011    cross-boundary entropy taint (project)
SPA012    shared-resource lifecycle (project)
========  ====================================================

See ``docs/analysis.md`` for the full rule catalogue, the engine
architecture, and the checking workflow.
"""

from repro.analysis.base import (
    ModuleContext,
    Rule,
    all_rules,
    get_rule,
    register_rule,
)
from repro.analysis.baseline import Baseline
from repro.analysis.checker import CheckResult, check_source, run_check
from repro.analysis.findings import Finding
from repro.analysis.index import ModuleIndex, ProjectIndex, build_module_index
from repro.analysis.project import (
    ProjectContext,
    ProjectRule,
    all_project_rules,
    check_project,
    get_project_rule,
    register_project_rule,
)
from repro.analysis.reporters import render_json, render_sarif, render_text

# Importing the package registers every built-in rule.
from repro.analysis import rules as _rules  # noqa: F401  (registration side effect)

__all__ = [
    "Finding",
    "ModuleContext",
    "ModuleIndex",
    "ProjectContext",
    "ProjectIndex",
    "ProjectRule",
    "Rule",
    "Baseline",
    "CheckResult",
    "all_rules",
    "all_project_rules",
    "build_module_index",
    "check_project",
    "get_rule",
    "get_project_rule",
    "register_rule",
    "register_project_rule",
    "run_check",
    "check_source",
    "render_text",
    "render_json",
    "render_sarif",
]
