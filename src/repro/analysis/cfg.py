"""Lightweight per-function control-flow graphs with exception edges.

Pass 2's reachability rules (SPA012 shared-resource lifecycle) need to
answer one question: *starting from this statement, can the function
exit — normally or by propagating an exception — without passing
through one of these other statements?*  :func:`build_cfg` builds a
statement-level CFG good enough for that:

* one node per simple statement; ``if``/``while``/``for``/``with``/
  ``try`` are decomposed with the usual branch/loop/back edges;
* two distinguished sinks — :attr:`CFG.exit_id` (normal completion:
  fall-through and ``return``) and :attr:`CFG.raise_id` (an exception
  propagating out of the function);
* every statement that contains a call (or is a ``raise``/``assert``)
  gets an *exception edge* to the innermost enclosing handler chain,
  or to the raise sink when nothing encloses it.  A catch-all handler
  (``except:``/``except Exception``/``except BaseException``) stops
  propagation; ``finally`` bodies are routed through on every exit
  kind.

The graph is intentionally approximate (handlers share one dispatch
node, ``finally`` exits fan out to every continuation that flowed in)
— precise enough to prove "this shared-memory block is closed on every
path" and to flag the paths where it is not.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = ["CFG", "CFGNode", "build_cfg"]


@dataclass
class CFGNode:
    """One CFG vertex: a statement, or a synthetic join/sink."""

    stmt: ast.stmt | None
    kind: str  # "stmt" | "entry" | "exit" | "raise" | "join"
    succ: set[int] = field(default_factory=set)
    exc_succ: set[int] = field(default_factory=set)


class CFG:
    """Statement-level control-flow graph of one function body."""

    def __init__(self) -> None:
        self.nodes: list[CFGNode] = []
        self.entry = self._add(None, "entry")
        self.exit_id = self._add(None, "exit")
        self.raise_id = self._add(None, "raise")
        self._stmt_ids: dict[int, int] = {}  # id(ast stmt) -> node id

    def _add(self, stmt: ast.stmt | None, kind: str) -> int:
        self.nodes.append(CFGNode(stmt=stmt, kind=kind))
        return len(self.nodes) - 1

    def node_of(self, stmt: ast.stmt) -> int | None:
        """The node id of a statement object, if it is in this graph."""
        return self._stmt_ids.get(id(stmt))

    def reaches_without(
        self, start: int, avoid: set[int], goal: int
    ) -> bool:
        """Can ``goal`` be reached from ``start`` on a path avoiding ``avoid``?

        The walk leaves ``start`` through its *normal* successors only
        (if the starting statement itself raises, its effect — e.g. a
        resource acquisition — never happened), then follows both
        normal and exception edges.  Nodes in ``avoid`` block the path:
        a path that touches one is considered handled.
        """
        frontier = [s for s in self.nodes[start].succ if s not in avoid]
        seen = set(frontier)
        while frontier:
            cur = frontier.pop()
            if cur == goal:
                return True
            node = self.nodes[cur]
            for nxt in (*node.succ, *node.exc_succ):
                if nxt not in seen and nxt not in avoid:
                    seen.add(nxt)
                    frontier.append(nxt)
        return False


def _can_raise(stmt: ast.stmt) -> bool:
    """Whether a statement can plausibly raise (calls dominate)."""
    if isinstance(stmt, (ast.Raise, ast.Assert)):
        return True
    return any(isinstance(n, ast.Call) for n in ast.walk(stmt))


def _is_catch_all(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    name = handler.type
    if isinstance(name, ast.Attribute):
        name = ast.Name(id=name.attr)
    return isinstance(name, ast.Name) and name.id in ("Exception", "BaseException")


class _Builder:
    def __init__(self) -> None:
        self.cfg = CFG()
        # Innermost-first stack of exception landing nodes; exceptions
        # raised where the stack is empty propagate to the raise sink.
        self.exc_stack: list[int] = []
        # (break targets, continue targets) per enclosing loop.
        self.loop_stack: list[tuple[set[int], int]] = []

    # -- plumbing -------------------------------------------------------------

    def _exc_target(self) -> int:
        return self.exc_stack[-1] if self.exc_stack else self.cfg.raise_id

    def _link(self, preds: set[int], node: int) -> None:
        for p in preds:
            self.cfg.nodes[p].succ.add(node)

    def _stmt_node(self, stmt: ast.stmt, preds: set[int]) -> int:
        nid = self.cfg._add(stmt, "stmt")
        self.cfg._stmt_ids[id(stmt)] = nid
        self._link(preds, nid)
        if _can_raise(stmt):
            self.cfg.nodes[nid].exc_succ.add(self._exc_target())
        return nid

    # -- structure ------------------------------------------------------------

    def visit_body(self, stmts: list[ast.stmt], preds: set[int]) -> set[int]:
        frontier = set(preds)
        for stmt in stmts:
            if not frontier:
                break  # unreachable code after a terminator
            frontier = self.visit(stmt, frontier)
        return frontier

    def visit(self, stmt: ast.stmt, preds: set[int]) -> set[int]:
        cfg = self.cfg
        if isinstance(stmt, ast.Return):
            nid = self._stmt_node(stmt, preds)
            cfg.nodes[nid].succ.add(cfg.exit_id)
            return set()
        if isinstance(stmt, ast.Raise):
            nid = self._stmt_node(stmt, preds)
            cfg.nodes[nid].succ.add(self._exc_target())
            return set()
        if isinstance(stmt, (ast.Break, ast.Continue)):
            nid = self._stmt_node(stmt, preds)
            if self.loop_stack:
                breaks, header = self.loop_stack[-1]
                if isinstance(stmt, ast.Break):
                    breaks.add(nid)
                else:
                    cfg.nodes[nid].succ.add(header)
            return set()
        if isinstance(stmt, ast.If):
            nid = self._stmt_node(stmt, preds)
            then = self.visit_body(stmt.body, {nid})
            if stmt.orelse:
                other = self.visit_body(stmt.orelse, {nid})
                return then | other
            return then | {nid}
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            nid = self._stmt_node(stmt, preds)
            breaks: set[int] = set()
            self.loop_stack.append((breaks, nid))
            body_exit = self.visit_body(stmt.body, {nid})
            self.loop_stack.pop()
            self._link(body_exit, nid)  # back edge
            tail = {nid} | breaks
            if stmt.orelse:
                tail = self.visit_body(stmt.orelse, {nid}) | breaks
            return tail
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            nid = self._stmt_node(stmt, preds)
            return self.visit_body(stmt.body, {nid})
        if isinstance(stmt, (ast.Try, getattr(ast, "TryStar", ast.Try))):
            return self._visit_try(stmt, preds)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            # Nested definitions are opaque statements (no inlined body).
            nid = cfg._add(stmt, "stmt")
            cfg._stmt_ids[id(stmt)] = nid
            self._link(preds, nid)
            return {nid}
        return {self._stmt_node(stmt, preds)}

    def _visit_try(self, stmt: ast.Try, preds: set[int]) -> set[int]:
        cfg = self.cfg
        dispatch = cfg._add(None, "join")  # exception landing for the body
        self.exc_stack.append(dispatch)
        body_exit = self.visit_body(stmt.body, preds)
        self.exc_stack.pop()
        if stmt.orelse:
            body_exit = self.visit_body(stmt.orelse, body_exit)

        caught_all = any(_is_catch_all(h) for h in stmt.handlers)
        handler_exit: set[int] = set()
        for handler in stmt.handlers:
            handler_exit |= self.visit_body(handler.body, {dispatch})

        if stmt.finalbody:
            fin_entry = cfg._add(None, "join")
            inflow = body_exit | handler_exit
            self._link(inflow, fin_entry)
            escaped = bool(stmt.handlers) and not caught_all
            if not stmt.handlers or escaped:
                # Uncaught exceptions still run the finally suite.
                cfg.nodes[dispatch].succ.add(fin_entry)
            fin_exit = self.visit_body(stmt.finalbody, {fin_entry})
            if not stmt.handlers or escaped:
                # After the finally, an uncaught exception propagates.
                self._link(fin_exit, self._exc_target())
            return fin_exit
        if stmt.handlers and not caught_all:
            cfg.nodes[dispatch].succ.add(self._exc_target())
        if not stmt.handlers:
            cfg.nodes[dispatch].succ.add(self._exc_target())
        return body_exit | handler_exit


def build_cfg(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """Build the CFG of one function definition's body."""
    builder = _Builder()
    tail = builder.visit_body(fn.body, {builder.cfg.entry})
    builder._link(tail, builder.cfg.exit_id)
    return builder.cfg
