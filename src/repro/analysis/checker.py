"""Orchestration: the two-pass whole-program check.

**Pass 1** parses every target file, runs the per-module rules
(:class:`~repro.analysis.base.Rule`) and distils a
:class:`~repro.analysis.index.ModuleIndex`.  The complete per-file
result — findings, suppression table, index — is one plain-dict
payload, content-addressed in the
:class:`~repro.runtime.store.ArtifactStore` by the file's digest: an
unchanged file costs one cache read and zero re-analysis.

**Pass 2** assembles the module indexes into a
:class:`~repro.analysis.index.ProjectIndex` and runs the project rules
(:class:`~repro.analysis.project.ProjectRule`) with cross-module
context.  Each rule's findings are cached against the digest of the
*whole project* (every module's content digest), so a warm re-run
skips pass 2 entirely.

Both passes fan out over :func:`repro.runtime.runner.map_tasks`; the
payloads are deterministic and globally sorted, so serial, parallel
and warm-cache runs produce byte-identical reports.

``--changed`` mode (``changed_only=True``) reports findings only for
files whose digest had no cache entry, plus their reverse-dependency
closure over the import graph; everything else is listed as skipped.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.base import ModuleContext, Rule, all_rules, get_rule
from repro.analysis.baseline import Baseline
from repro.analysis.findings import Finding
from repro.analysis.index import (
    INDEX_VERSION,
    ModuleIndex,
    ProjectIndex,
    build_module_index,
)
from repro.analysis.project import (
    ProjectContext,
    ProjectRule,
    all_project_rules,
    get_project_rule,
    project_rule_ids,
)
from repro.analysis.suppressions import SuppressionIndex, parse_suppressions

__all__ = ["CheckResult", "run_check", "check_source", "collect_files"]

_SKIP_DIRS = {"__pycache__", ".git", ".pytest_cache", ".venv", "node_modules"}

#: Bump when analysis payload semantics change (cache invalidation).
ANALYSIS_VERSION = 1


@dataclass
class CheckResult:
    """Outcome of one checker invocation."""

    findings: list[Finding] = field(default_factory=list)  # new (not baselined)
    baselined: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    n_files: int = 0
    parse_errors: list[tuple[str, str]] = field(default_factory=list)
    #: (path, line, rule-ids) of suppression markers that matched nothing.
    unused_suppressions: list[tuple[str, int, tuple[str, ...]]] = field(
        default_factory=list
    )
    #: Paths excluded from the report by ``--changed``.
    skipped: list[str] = field(default_factory=list)
    #: Pass-1 payloads served from the ArtifactStore.
    n_cached: int = 0
    #: Pass-2 (per-project-rule) results served from the store.
    n_project_cached: int = 0

    def exit_code(self, *, strict: bool = False) -> int:
        """0 when clean; 1 on new findings (plus baselined ones under
        ``--strict``); 2 when a target file failed to parse."""
        if self.parse_errors:
            return 2
        offending = len(self.findings) + (len(self.baselined) if strict else 0)
        return 1 if offending else 0


def collect_files(paths: list[str | Path]) -> list[Path]:
    """Python files under ``paths`` (dirs recursed), sorted for determinism."""
    out: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    out.add(candidate)
        elif path.suffix == ".py":
            out.add(path)
    return sorted(out)


def check_source(
    source: str,
    *,
    path: str = "<string>",
    module: str | None = None,
    rules: list[Rule] | None = None,
) -> list[Finding]:
    """Run per-module rules over one in-memory source blob.

    The test/fixture path: suppression comments are honoured, baselines
    are not.  Project rules need a whole project — use
    :func:`repro.analysis.project.check_project` for those.
    """
    ctx = ModuleContext(source, path=path, module=module)
    suppressions = parse_suppressions(ctx.lines)
    found: list[Finding] = []
    for rule in rules if rules is not None else all_rules():
        for finding in rule.check(ctx):
            if not suppressions.is_suppressed(finding.rule, finding.line):
                found.append(finding)
    return sorted(found)


# -- pass 1: per-file analysis (picklable task) -------------------------------


def _suppressions_payload(supp: SuppressionIndex) -> dict:
    return {str(line): sorted(rules) for line, rules in supp._by_line.items()}


def _suppressions_from_payload(payload: dict) -> SuppressionIndex:
    return SuppressionIndex(
        {int(line): frozenset(rules) for line, rules in payload.items()}
    )


def _analyze_file_task(item: dict) -> dict:
    """Parse one file, run module rules, build its index (pass-1 task).

    Module-level and dict-in/dict-out so :func:`map_tasks` can ship it
    to pool workers; importing the rules package registers the rule
    classes inside fresh worker processes.
    """
    import repro.analysis.rules  # noqa: F401  (registry side effect)

    path: str = item["path"]
    payload: dict = {
        "version": ANALYSIS_VERSION,
        "path": path,
        "module": "",
        "digest": item["digest"],
        "parse_error": None,
        "findings": [],
        "suppressed": 0,
        "suppressions": {},
        "used_lines": [],
        "index": None,
    }
    try:
        ctx = ModuleContext(item["source"], path=path)
    except SyntaxError as exc:
        payload["parse_error"] = str(exc)
        return payload
    payload["module"] = ctx.module
    suppressions = parse_suppressions(ctx.lines)
    findings: list[Finding] = []
    suppressed = 0
    for rule_id in item["rule_ids"]:
        rule = get_rule(rule_id)
        for finding in rule.check(ctx):
            if suppressions.is_suppressed(finding.rule, finding.line):
                suppressed += 1
            else:
                findings.append(finding)
    payload["findings"] = [f.to_payload() for f in sorted(findings)]
    payload["suppressed"] = suppressed
    payload["suppressions"] = _suppressions_payload(suppressions)
    payload["used_lines"] = sorted(suppressions.used)
    payload["index"] = build_module_index(ctx, digest=item["digest"]).to_dict()
    return payload


# -- pass 2: project rules (picklable task) -----------------------------------


def _project_rule_task(item: dict) -> list[dict]:
    """Run one project rule over the assembled index (pass-2 task)."""
    import repro.analysis.rules  # noqa: F401  (registry side effect)

    index = ProjectIndex(
        {m: ModuleIndex.from_dict(d) for m, d in item["modules"].items()}
    )
    project = ProjectContext(index, sources=item["sources"])
    rule = get_project_rule(item["rule"])
    return [f.to_payload() for f in sorted(rule.check(project))]


# -- orchestration ------------------------------------------------------------


def _split_rule_ids(rule_ids: list[str] | None) -> tuple[list[str], list[str]]:
    """Partition a selection into (module rule ids, project rule ids)."""
    module_ids = sorted(r.id for r in all_rules())
    project_ids = sorted(r.id for r in all_project_rules())
    if rule_ids is None:
        return module_ids, project_ids
    mod: list[str] = []
    proj: list[str] = []
    for rule_id in rule_ids:
        if rule_id in project_rule_ids():
            proj.append(rule_id)
        else:
            get_rule(rule_id)  # raises KeyError on unknown ids
            mod.append(rule_id)
    return sorted(set(mod)), sorted(set(proj))


def run_check(
    paths: list[str | Path],
    *,
    rules: list[Rule] | None = None,
    rule_ids: list[str] | None = None,
    baseline: Baseline | None = None,
    jobs: int | None = None,
    store=None,
    changed_only: bool = False,
) -> CheckResult:
    """Check every Python file under ``paths`` with the two-pass engine.

    ``rule_ids`` selects a subset of registered rules (module and/or
    project); ``baseline`` partitions surviving findings into new vs
    grandfathered.  ``store`` (an :class:`ArtifactStore`) enables the
    content-addressed cache — ``None`` keeps the run pure.  ``jobs``
    fans both passes out over :func:`map_tasks` (``None`` = serial
    unless ``SIMPROF_JOBS`` says otherwise).  ``rules`` (explicit
    instances) is the legacy single-pass escape hatch used by tests:
    it runs in-process, uncached, per-module only.
    """
    result = CheckResult()
    files = collect_files(paths)
    result.n_files = len(files)

    if rules is not None:
        module_rules: list[Rule] = [r for r in rules if isinstance(r, Rule)]
        project_rules = [r for r in rules if isinstance(r, ProjectRule)]
        return _run_legacy(files, module_rules, project_rules, baseline, result)

    module_ids, project_ids = _split_rule_ids(rule_ids)
    full_run = rule_ids is None
    sig = f"a{ANALYSIS_VERSION}.i{INDEX_VERSION}|" + ",".join(module_ids)

    # Pass 0: read and digest every file, probe the cache.
    payloads: dict[str, dict] = {}  # path -> pass-1 payload
    keys: dict[str, str] = {}
    misses: list[dict] = []
    for file_path in files:
        path = file_path.as_posix()
        try:
            raw = file_path.read_bytes()
        except OSError as exc:
            result.parse_errors.append((path, str(exc)))
            continue
        digest = hashlib.sha256(raw).hexdigest()
        cached = None
        if store is not None:
            key = store.key_for(
                "analysis-module", {"path": path, "digest": digest, "sig": sig}
            )
            keys[path] = key
            try:
                candidate = store.get(key)
            except KeyError:
                candidate = None
            if (
                isinstance(candidate, dict)
                and candidate.get("version") == ANALYSIS_VERSION
            ):
                cached = candidate
        if cached is not None:
            payloads[path] = cached
            result.n_cached += 1
        else:
            misses.append(
                {
                    "path": path,
                    "source": raw.decode("utf-8"),
                    "digest": digest,
                    "rule_ids": module_ids,
                }
            )

    # Pass 1: analyze the misses (parallel when jobs > 1).
    fresh = _map(_analyze_file_task, misses, jobs)
    for payload in fresh:
        payloads[payload["path"]] = payload
        if store is not None and payload["path"] in keys:
            store.put(keys[payload["path"]], payload)

    changed_paths = {m["path"] for m in misses}
    ordered = [payloads[p.as_posix()] for p in files if p.as_posix() in payloads]

    index = ProjectIndex()
    sources: dict[str, str] = {}
    for payload in ordered:
        if payload["parse_error"] is not None:
            result.parse_errors.append((payload["path"], payload["parse_error"]))
            continue
        index.add(ModuleIndex.from_dict(payload["index"]))
    for item in misses:
        mi = index.module_of_path(item["path"])
        if mi is not None:
            sources[mi.module] = item["source"]

    # ``--changed``: the report covers changed files plus everything
    # that (transitively) imports them.
    report_paths = {p["path"] for p in ordered}
    if changed_only:
        changed_modules = {
            p["module"]
            for p in ordered
            if p["path"] in changed_paths and p["parse_error"] is None
        }
        closure = index.reverse_closure(changed_modules)
        report_paths = {
            p["path"]
            for p in ordered
            if p["parse_error"] is not None
            or p["module"] in closure
            or p["path"] in changed_paths
        }
        result.skipped = sorted(
            p["path"] for p in ordered if p["path"] not in report_paths
        )

    # Pass 2: project rules against the assembled index.
    project_findings: list[Finding] = []
    if project_ids and index.modules:
        project_digest = hashlib.sha256(
            (
                sig
                + "|"
                + "|".join(
                    f"{m}:{index.modules[m].digest}" for m in sorted(index.modules)
                )
            ).encode()
        ).hexdigest()
        module_dicts = {m: mi.to_dict() for m, mi in index.modules.items()}
        pending: list[dict] = []
        pending_ids: list[str] = []
        cached_by_rule: dict[str, list[dict]] = {}
        for rule_id in project_ids:
            key = None
            if store is not None:
                key = store.key_for(
                    "analysis-project",
                    {"rule": rule_id, "digest": project_digest, "sig": sig},
                )
                try:
                    cached_by_rule[rule_id] = store.get(key)
                    result.n_project_cached += 1
                    continue
                except KeyError:
                    pass
            pending.append(
                {"rule": rule_id, "modules": module_dicts, "sources": sources}
            )
            pending_ids.append(rule_id)
        computed = _map(_project_rule_task, pending, jobs)
        for rule_id, item, rows in zip(pending_ids, pending, computed):
            cached_by_rule[rule_id] = rows
            if store is not None:
                key = store.key_for(
                    "analysis-project",
                    {"rule": rule_id, "digest": project_digest, "sig": sig},
                )
                store.put(key, rows)
        for rule_id in project_ids:
            project_findings.extend(
                Finding.from_payload(row) for row in cached_by_rule[rule_id]
            )

    # Apply suppressions to project findings at their anchor lines.
    supp_by_path = {
        p["path"]: _suppressions_from_payload(p["suppressions"]) for p in ordered
    }
    kept_project: list[Finding] = []
    project_suppressed = 0
    for finding in project_findings:
        supp = supp_by_path.get(finding.path)
        if supp is not None and supp.is_suppressed(finding.rule, finding.line):
            project_suppressed += 1
        else:
            kept_project.append(finding)

    found: list[Finding] = []
    suppressed = 0
    for payload in ordered:
        if payload["path"] not in report_paths:
            continue
        found.extend(Finding.from_payload(row) for row in payload["findings"])
        suppressed += payload["suppressed"]
    found.extend(f for f in kept_project if f.path in report_paths)
    result.suppressed = suppressed + project_suppressed

    # Unused-suppression report: only meaningful when every rule ran.
    if full_run:
        for payload in ordered:
            if payload["path"] not in report_paths:
                continue
            supp = supp_by_path[payload["path"]]
            supp.mark_used(payload["used_lines"])
            for line, rule_list in supp.unused():
                result.unused_suppressions.append(
                    (payload["path"], line, rule_list)
                )
        result.unused_suppressions.sort()

    if baseline is None:
        baseline = Baseline()
    result.findings, result.baselined = baseline.partition(sorted(found))
    return result


def _map(fn, items: list, jobs: int | None) -> list:
    """Dispatch task dicts: in-process when serial, map_tasks otherwise."""
    if not items:
        return []
    if jobs is None or jobs <= 1:
        return [fn(item) for item in items]
    from repro.runtime.runner import map_tasks

    return map_tasks(fn, items, jobs=jobs, retries=0)


def _run_legacy(
    files: list[Path],
    module_rules: list[Rule],
    project_rules: list[ProjectRule],
    baseline: Baseline | None,
    result: CheckResult,
) -> CheckResult:
    """Explicit rule instances: single-process, uncached (test path)."""
    suppressed = 0
    found: list[Finding] = []
    index = ProjectIndex()
    sources: dict[str, str] = {}
    supp_by_path: dict[str, SuppressionIndex] = {}
    for file_path in files:
        source = file_path.read_text(encoding="utf-8")
        try:
            ctx = ModuleContext(source, path=file_path)
        except SyntaxError as exc:
            result.parse_errors.append((file_path.as_posix(), str(exc)))
            continue
        suppressions = parse_suppressions(ctx.lines)
        supp_by_path[ctx.path] = suppressions
        for rule in module_rules:
            for finding in rule.check(ctx):
                if suppressions.is_suppressed(finding.rule, finding.line):
                    suppressed += 1
                else:
                    found.append(finding)
        if project_rules:
            index.add(build_module_index(ctx))
            sources[ctx.module] = source
    if project_rules and index.modules:
        project = ProjectContext(index, sources=sources)
        for rule in project_rules:
            for finding in rule.check(project):
                supp = supp_by_path.get(finding.path)
                if supp is not None and supp.is_suppressed(
                    finding.rule, finding.line
                ):
                    suppressed += 1
                else:
                    found.append(finding)
    result.suppressed = suppressed
    if baseline is None:
        baseline = Baseline()
    result.findings, result.baselined = baseline.partition(sorted(found))
    return result
