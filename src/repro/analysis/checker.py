"""Orchestration: collect files, run rules, apply suppressions + baseline."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.base import ModuleContext, Rule, all_rules, get_rule
from repro.analysis.baseline import Baseline
from repro.analysis.findings import Finding
from repro.analysis.suppressions import parse_suppressions

__all__ = ["CheckResult", "run_check", "check_source", "collect_files"]

_SKIP_DIRS = {"__pycache__", ".git", ".pytest_cache", ".venv", "node_modules"}


@dataclass
class CheckResult:
    """Outcome of one checker invocation."""

    findings: list[Finding] = field(default_factory=list)  # new (not baselined)
    baselined: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    n_files: int = 0
    parse_errors: list[tuple[str, str]] = field(default_factory=list)

    def exit_code(self, *, strict: bool = False) -> int:
        """0 when clean; 1 on new findings (plus baselined ones under
        ``--strict``); 2 when a target file failed to parse."""
        if self.parse_errors:
            return 2
        offending = len(self.findings) + (len(self.baselined) if strict else 0)
        return 1 if offending else 0


def collect_files(paths: list[str | Path]) -> list[Path]:
    """Python files under ``paths`` (dirs recursed), sorted for determinism."""
    out: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    out.add(candidate)
        elif path.suffix == ".py":
            out.add(path)
    return sorted(out)


def check_source(
    source: str,
    *,
    path: str = "<string>",
    module: str | None = None,
    rules: list[Rule] | None = None,
) -> list[Finding]:
    """Run rules over one in-memory source blob (the test/fixture path).

    Suppression comments are honoured; baselines are not applied.
    """
    ctx = ModuleContext(source, path=path, module=module)
    suppressions = parse_suppressions(ctx.lines)
    found: list[Finding] = []
    for rule in rules if rules is not None else all_rules():
        for finding in rule.check(ctx):
            if not suppressions.is_suppressed(finding.rule, finding.line):
                found.append(finding)
    return sorted(found)


def run_check(
    paths: list[str | Path],
    *,
    rules: list[Rule] | None = None,
    rule_ids: list[str] | None = None,
    baseline: Baseline | None = None,
) -> CheckResult:
    """Check every Python file under ``paths``.

    ``rule_ids`` selects a subset of registered rules; ``baseline``
    partitions the surviving findings into new vs grandfathered.
    """
    if rules is None:
        rules = [get_rule(r) for r in rule_ids] if rule_ids else all_rules()
    result = CheckResult()
    suppressed = 0
    found: list[Finding] = []
    for file_path in collect_files(paths):
        result.n_files += 1
        source = file_path.read_text(encoding="utf-8")
        try:
            ctx = ModuleContext(source, path=file_path)
        except SyntaxError as exc:
            result.parse_errors.append((file_path.as_posix(), str(exc)))
            continue
        suppressions = parse_suppressions(ctx.lines)
        for rule in rules:
            for finding in rule.check(ctx):
                if suppressions.is_suppressed(finding.rule, finding.line):
                    suppressed += 1
                else:
                    found.append(finding)
    result.suppressed = suppressed
    if baseline is None:
        baseline = Baseline()
    result.findings, result.baselined = baseline.partition(found)
    return result
