"""Render a :class:`~repro.analysis.checker.CheckResult` as text or JSON."""

from __future__ import annotations

import json

from repro.analysis.base import all_rules
from repro.analysis.checker import CheckResult

__all__ = ["render_text", "render_json", "render_rule_catalogue"]


def render_text(result: CheckResult, *, strict: bool = False) -> str:
    """Human-oriented report: one line per finding plus its hint."""
    out: list[str] = []
    for path, error in result.parse_errors:
        out.append(f"{path}: PARSE ERROR: {error}")
    shown = list(result.findings)
    if strict:
        shown += result.baselined
    for finding in sorted(shown):
        tag = " (baselined)" if finding in result.baselined else ""
        out.append(f"{finding.location}: {finding.rule}{tag} {finding.message}")
        if finding.hint:
            out.append(f"    hint: {finding.hint}")
    summary = (
        f"{result.n_files} files checked: "
        f"{len(result.findings)} new finding(s), "
        f"{len(result.baselined)} baselined, "
        f"{result.suppressed} suppressed inline"
    )
    out.append(summary)
    return "\n".join(out)


def render_json(result: CheckResult, *, strict: bool = False) -> str:
    """Machine-oriented report (stable key order)."""
    doc = {
        "files": result.n_files,
        "new": [f.to_dict() for f in sorted(result.findings)],
        "baselined": [f.to_dict() for f in sorted(result.baselined)],
        "suppressed": result.suppressed,
        "parse_errors": [
            {"path": p, "error": e} for p, e in result.parse_errors
        ],
        "exit_code": result.exit_code(strict=strict),
    }
    return json.dumps(doc, indent=2, sort_keys=True)


def render_rule_catalogue() -> str:
    """``simprof check --list-rules`` output."""
    out = []
    for rule in all_rules():
        out.append(f"{rule.id}  {rule.name}")
        out.append(f"    {rule.rationale}")
    return "\n".join(out)
