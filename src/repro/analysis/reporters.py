"""Render a :class:`~repro.analysis.checker.CheckResult` as text/JSON/SARIF."""

from __future__ import annotations

import json

from repro.analysis.base import all_rules
from repro.analysis.checker import CheckResult
from repro.analysis.project import all_project_rules

__all__ = [
    "render_text",
    "render_json",
    "render_sarif",
    "render_rule_catalogue",
]

#: Anchor base for rule help URIs (``--format sarif`` links and docs).
DOCS_URL = "https://github.com/simprof/simprof/blob/main/docs/analysis.md"


def _catalogue():
    """Every registered rule (module + project), sorted by id."""
    return sorted(all_rules() + all_project_rules(), key=lambda r: r.id)


def _help_uri(rule) -> str:
    """docs/analysis.md heading anchor for ``### SPA00N — name``."""
    return f"{DOCS_URL}#{rule.id.lower()}--{rule.name}"


def render_text(result: CheckResult, *, strict: bool = False) -> str:
    """Human-oriented report: one line per finding plus its hint."""
    out: list[str] = []
    for path, error in result.parse_errors:
        out.append(f"{path}: PARSE ERROR: {error}")
    shown = list(result.findings)
    if strict:
        shown += result.baselined
    for finding in sorted(shown):
        tag = " (baselined)" if finding in result.baselined else ""
        out.append(f"{finding.location}: {finding.rule}{tag} {finding.message}")
        if finding.hint:
            out.append(f"    hint: {finding.hint}")
    for path, line, rule_list in result.unused_suppressions:
        spec = ", ".join(rule_list) if rule_list else "all rules"
        out.append(
            f"{path}:{line}: warning: unused suppression ({spec}) — "
            "the marker matched no finding; remove it"
        )
    for path in result.skipped:
        out.append(f"skipped (unchanged): {path}")
    summary = (
        f"{result.n_files} files checked: "
        f"{len(result.findings)} new finding(s), "
        f"{len(result.baselined)} baselined, "
        f"{result.suppressed} suppressed inline"
    )
    if result.skipped:
        summary += f", {len(result.skipped)} skipped as unchanged"
    out.append(summary)
    return "\n".join(out)


def render_json(result: CheckResult, *, strict: bool = False) -> str:
    """Machine-oriented report (stable key order).

    Deliberately excludes cache statistics: serial, parallel and
    warm-cache runs of the same tree must render byte-identically.
    """
    doc = {
        "files": result.n_files,
        "new": [f.to_dict() for f in sorted(result.findings)],
        "baselined": [f.to_dict() for f in sorted(result.baselined)],
        "suppressed": result.suppressed,
        "unused_suppressions": [
            {"path": p, "line": line, "rules": list(rules)}
            for p, line, rules in result.unused_suppressions
        ],
        "skipped": list(result.skipped),
        "parse_errors": [
            {"path": p, "error": e} for p, e in result.parse_errors
        ],
        "exit_code": result.exit_code(strict=strict),
    }
    return json.dumps(doc, indent=2, sort_keys=True)


def render_sarif(result: CheckResult, *, strict: bool = False) -> str:
    """SARIF 2.1.0 report for GitHub code-scanning annotations.

    Every registered rule appears in the driver's rule table with a
    help URI anchored into docs/analysis.md; each finding becomes one
    ``result`` with a physical location and the finding's fingerprint
    (so code scanning tracks findings across commits the same way the
    baseline does).
    """
    catalogue = _catalogue()
    rule_index = {rule.id: i for i, rule in enumerate(catalogue)}
    shown = list(result.findings)
    if strict:
        shown += result.baselined
    results = []
    for finding in sorted(shown):
        results.append(
            {
                "ruleId": finding.rule,
                "ruleIndex": rule_index.get(finding.rule, -1),
                "level": "error",
                "message": {
                    "text": finding.message
                    + (f" (hint: {finding.hint})" if finding.hint else "")
                },
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": finding.path,
                                "uriBaseId": "SRCROOT",
                            },
                            "region": {
                                "startLine": finding.line,
                                "startColumn": finding.col + 1,
                            },
                        }
                    }
                ],
                "partialFingerprints": {
                    "simprofFingerprint/v2": finding.fingerprint()
                },
            }
        )
    for path, error in result.parse_errors:
        results.append(
            {
                "ruleId": "parse-error",
                "ruleIndex": -1,
                "level": "error",
                "message": {"text": f"file does not parse: {error}"},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": path,
                                "uriBaseId": "SRCROOT",
                            },
                            "region": {"startLine": 1, "startColumn": 1},
                        }
                    }
                ],
            }
        )
    doc = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
            "Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "simprof-check",
                        "informationUri": DOCS_URL,
                        "rules": [
                            {
                                "id": rule.id,
                                "name": rule.name,
                                "shortDescription": {"text": rule.rationale},
                                "helpUri": _help_uri(rule),
                                "defaultConfiguration": {"level": "error"},
                            }
                            for rule in catalogue
                        ],
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": results,
            }
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=True)


def render_rule_catalogue() -> str:
    """``simprof check --list-rules`` output (module + project rules)."""
    out = []
    for rule in _catalogue():
        kind = " [project]" if rule.id in {r.id for r in all_project_rules()} else ""
        out.append(f"{rule.id}  {rule.name}{kind}")
        out.append(f"    {rule.rationale}")
    return "\n".join(out)
