"""Baseline file: grandfathered findings tolerated by ``simprof check``.

The baseline is a checked-in JSON document mapping finding fingerprints
to occurrence counts.  Version 2 fingerprints key on (rule, path,
enclosing-def qualname, whitespace-normalised snippet) — not line
numbers, and not raw line text — so unrelated edits above a
grandfathered line, or moving it between functions' *surroundings*,
do not resurrect it.  The default (non ``--strict``) check subtracts
baselined findings from the failure set; ``--strict`` tolerates
nothing.  ``--write-baseline`` rewrites the file from the current
tree, which is how a finding leaves the baseline: fix it, regenerate,
commit the shrunken file.

Version-1 files (keyed on raw stripped line text) still load: matching
falls back to the legacy fingerprint, and the CLI migrates the file in
place to version 2 on the first successful run that loads one.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from repro.analysis.findings import Finding

__all__ = ["Baseline", "BASELINE_VERSION", "DEFAULT_BASELINE_NAME"]

BASELINE_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)
DEFAULT_BASELINE_NAME = ".simprof-baseline.json"


class Baseline:
    """Fingerprint multiset with load/save/partition operations."""

    def __init__(
        self,
        counts: dict[str, int] | None = None,
        *,
        version: int = BASELINE_VERSION,
    ) -> None:
        self.counts: Counter[str] = Counter(counts or {})
        #: Schema version of the file this baseline was loaded from.
        self.version = version

    def __len__(self) -> int:
        return sum(self.counts.values())

    def __contains__(self, fingerprint: str) -> bool:
        return self.counts.get(fingerprint, 0) > 0

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        return cls(Counter(f.fingerprint() for f in findings))

    def _fingerprint(self, finding: Finding) -> str:
        """The fingerprint flavour this baseline's version matches on."""
        if self.version == 1:
            return finding.fingerprint_v1()
        return finding.fingerprint()

    def partition(
        self, findings: list[Finding]
    ) -> tuple[list[Finding], list[Finding]]:
        """Split ``findings`` into (new, grandfathered).

        Each baseline entry absorbs at most its recorded count, so a
        *second* occurrence of a grandfathered pattern on a new line of
        the same file still fails the check.
        """
        budget = Counter(self.counts)
        fresh: list[Finding] = []
        known: list[Finding] = []
        for finding in sorted(findings):
            fp = self._fingerprint(finding)
            if budget.get(fp, 0) > 0:
                budget[fp] -= 1
                known.append(finding)
            else:
                fresh.append(finding)
        return fresh, known

    # -- persistence ----------------------------------------------------------

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        try:
            text = Path(path).read_text()
        except FileNotFoundError:
            return cls()
        data = json.loads(text)
        version = data.get("version")
        if version not in _SUPPORTED_VERSIONS:
            raise ValueError(
                f"unsupported baseline version {version!r} in {path}"
            )
        counts: Counter[str] = Counter()
        for entry in data.get("findings", []):
            counts[entry["fingerprint"]] += int(entry.get("count", 1))
        return cls(counts, version=version)

    def save(self, path: str | Path, findings: list[Finding]) -> None:
        """Write the (version-2) baseline for ``findings``.

        Entries carry the rule/path/message of one representative
        occurrence purely for human review; only the fingerprint and
        count participate in matching.
        """
        entries: dict[str, dict] = {}
        for finding in sorted(findings):
            fp = finding.fingerprint()
            if fp in entries:
                entries[fp]["count"] += 1
            else:
                entries[fp] = {
                    "fingerprint": fp,
                    "count": 1,
                    "rule": finding.rule,
                    "path": finding.path,
                    "message": finding.message,
                }
        doc = {
            "version": BASELINE_VERSION,
            "findings": sorted(
                entries.values(),
                key=lambda e: (e["path"], e["rule"], e["fingerprint"]),
            ),
        }
        Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
