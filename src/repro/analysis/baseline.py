"""Baseline file: grandfathered findings tolerated by ``simprof check``.

The baseline is a checked-in JSON document mapping finding fingerprints
(rule + path + offending line *text* — not line numbers, so edits above
a grandfathered line do not resurrect it) to occurrence counts.  The
default (non ``--strict``) check subtracts baselined findings from the
failure set; ``--strict`` tolerates nothing.  ``--write-baseline``
rewrites the file from the current tree, which is how a finding leaves
the baseline: fix it, regenerate, commit the shrunken file.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from repro.analysis.findings import Finding

__all__ = ["Baseline", "BASELINE_VERSION", "DEFAULT_BASELINE_NAME"]

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = ".simprof-baseline.json"


class Baseline:
    """Fingerprint multiset with load/save/partition operations."""

    def __init__(self, counts: dict[str, int] | None = None) -> None:
        self.counts: Counter[str] = Counter(counts or {})

    def __len__(self) -> int:
        return sum(self.counts.values())

    def __contains__(self, fingerprint: str) -> bool:
        return self.counts.get(fingerprint, 0) > 0

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        return cls(Counter(f.fingerprint() for f in findings))

    def partition(
        self, findings: list[Finding]
    ) -> tuple[list[Finding], list[Finding]]:
        """Split ``findings`` into (new, grandfathered).

        Each baseline entry absorbs at most its recorded count, so a
        *second* occurrence of a grandfathered pattern on a new line of
        the same file still fails the check.
        """
        budget = Counter(self.counts)
        fresh: list[Finding] = []
        known: list[Finding] = []
        for finding in sorted(findings):
            fp = finding.fingerprint()
            if budget.get(fp, 0) > 0:
                budget[fp] -= 1
                known.append(finding)
            else:
                fresh.append(finding)
        return fresh, known

    # -- persistence ----------------------------------------------------------

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        try:
            text = Path(path).read_text()
        except FileNotFoundError:
            return cls()
        data = json.loads(text)
        if data.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline version {data.get('version')!r} in {path}"
            )
        counts: Counter[str] = Counter()
        for entry in data.get("findings", []):
            counts[entry["fingerprint"]] += int(entry.get("count", 1))
        return cls(counts)

    def save(self, path: str | Path, findings: list[Finding]) -> None:
        """Write the baseline for ``findings`` (sorted, annotated).

        Entries carry the rule/path/message of one representative
        occurrence purely for human review; only the fingerprint and
        count participate in matching.
        """
        entries: dict[str, dict] = {}
        for finding in sorted(findings):
            fp = finding.fingerprint()
            if fp in entries:
                entries[fp]["count"] += 1
            else:
                entries[fp] = {
                    "fingerprint": fp,
                    "count": 1,
                    "rule": finding.rule,
                    "path": finding.path,
                    "message": finding.message,
                }
        doc = {
            "version": BASELINE_VERSION,
            "findings": sorted(
                entries.values(),
                key=lambda e: (e["path"], e["rule"], e["fingerprint"]),
            ),
        }
        Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
