"""Rule framework: module context, name resolution, rule registry.

A :class:`Rule` receives a fully parsed :class:`ModuleContext` and
yields :class:`~repro.analysis.findings.Finding` objects.  The context
carries everything the shipped rules need:

* the ``ast`` tree plus a parent map (``parent(node)``),
* the raw source lines (for fingerprints and suppression comments),
* the dotted module name (``repro.core.profiler``) so rules can be
  package-scoped,
* import-alias resolution: :meth:`ModuleContext.resolve` maps an
  expression like ``np.random.default_rng`` back to its canonical
  dotted path ``numpy.random.default_rng`` regardless of how the
  module was imported or aliased.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator

from repro.analysis.findings import Finding

__all__ = ["ModuleContext", "Rule", "register_rule", "all_rules", "get_rule"]


class ModuleContext:
    """One parsed source file plus the lookups rules share."""

    def __init__(
        self,
        source: str,
        *,
        path: str | Path = "<string>",
        module: str | None = None,
    ) -> None:
        self.path = Path(path).as_posix()
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=self.path)
        self.module = module if module is not None else _module_from_path(self.path)
        self._parents: dict[ast.AST, ast.AST] = {}
        for node in ast.walk(self.tree):
            for child in ast.iter_child_nodes(node):
                self._parents[child] = node
        self._aliases = _collect_aliases(self.tree)

    # -- navigation -----------------------------------------------------------

    def parent(self, node: ast.AST) -> ast.AST | None:
        """The syntactic parent of ``node`` (None for the module)."""
        return self._parents.get(node)

    def line_text(self, lineno: int) -> str:
        """1-based source line (empty string when out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    # -- name resolution ------------------------------------------------------

    def resolve(self, node: ast.AST) -> str | None:
        """Canonical dotted name of a Name/Attribute chain, or None.

        ``np.random.seed`` -> ``numpy.random.seed`` (given ``import
        numpy as np``); ``default_rng`` -> ``numpy.random.default_rng``
        (given ``from numpy.random import default_rng``).  Locals that
        shadow no import resolve to their bare chain, so rules can
        still match stdlib modules referenced without an import in
        fixture snippets.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        parts.reverse()
        head = self._aliases.get(parts[0], parts[0])
        return ".".join([head, *parts[1:]])

    def resolve_call(self, node: ast.Call) -> str | None:
        """Canonical dotted name of a call's callee, or None."""
        return self.resolve(node.func)

    # -- common iterations ----------------------------------------------------

    def walk(self) -> Iterator[ast.AST]:
        return ast.walk(self.tree)

    def docstring_nodes(self) -> Iterator[tuple[ast.AST, ast.Constant]]:
        """(owner, string-constant) pairs for every docstring."""
        for node in ast.walk(self.tree):
            if not isinstance(
                node,
                (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef),
            ):
                continue
            body = node.body
            if (
                body
                and isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
                and isinstance(body[0].value.value, str)
            ):
                yield node, body[0].value

    def enclosing_function(
        self, node: ast.AST
    ) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        """Nearest enclosing function definition, if any."""
        cur = self.parent(node)
        while cur is not None:
            if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return cur
            cur = self.parent(cur)
        return None

    def enclosing_names(self, node: ast.AST) -> list[str]:
        """Names of enclosing functions/classes, innermost first."""
        names: list[str] = []
        cur = self.parent(node)
        while cur is not None:
            if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                names.append(cur.name)
            cur = self.parent(cur)
        return names


def _module_from_path(path: str) -> str:
    """Best-effort dotted module name from a file path.

    Strips a leading ``src/`` layout component and the ``.py`` suffix;
    ``__init__`` maps to its package.  Unrecognisable paths fall back
    to the bare stem so package-scoped rules simply never match.
    """
    parts = list(Path(path).parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    for anchor in ("src", "site-packages"):
        if anchor in parts[:-1]:
            parts = parts[parts.index(anchor) + 1 :]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(p for p in parts if p not in ("", ".", "..", "/"))


def _collect_aliases(tree: ast.Module) -> dict[str, str]:
    """Local name -> canonical dotted prefix, from every import statement."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.partition(".")[0]
                aliases[local] = alias.name if alias.asname else alias.name.partition(".")[0]
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases


class Rule:
    """Base class: subclass, set the class attributes, implement check().

    ``id`` is the stable code (``SPA001``) used in reports, suppression
    comments and the baseline; ``name`` is a short slug; ``rationale``
    one sentence on why the invariant matters; ``hint`` the generic fix
    suggestion attached to findings that do not override it.
    """

    id: str = ""
    name: str = ""
    rationale: str = ""
    hint: str = ""

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:  # pragma: no cover
        raise NotImplementedError

    def finding(
        self,
        ctx: ModuleContext,
        node: ast.AST,
        message: str,
        *,
        hint: str | None = None,
    ) -> Finding:
        """Build a Finding anchored at ``node``."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            path=ctx.path,
            line=line,
            col=col,
            rule=self.id,
            message=message,
            hint=self.hint if hint is None else hint,
            line_text=ctx.line_text(line),
            qualname=".".join(reversed(ctx.enclosing_names(node))),
        )


_REGISTRY: dict[str, type[Rule]] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if cls.id in _REGISTRY and _REGISTRY[cls.id] is not cls:
        raise ValueError(f"duplicate rule id {cls.id}")
    _REGISTRY[cls.id] = cls
    return cls


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule, sorted by id."""
    return [cls() for _, cls in sorted(_REGISTRY.items())]


def get_rule(rule_id: str) -> Rule:
    """Instantiate one registered rule by id."""
    try:
        return _REGISTRY[rule_id]()
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown rule {rule_id!r} (known: {known})") from None
