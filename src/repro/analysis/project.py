"""Pass 2 of the whole-program engine: project rules.

A :class:`ProjectRule` sees the entire project at once through a
:class:`ProjectContext` — the merged :class:`~repro.analysis.index.ProjectIndex`
built in pass 1 plus lazy access to each module's parsed
:class:`~repro.analysis.base.ModuleContext` (for rules, like the CFG
reachability checks, that need real ASTs rather than the distilled
index).  Module sources are only read and re-parsed on demand, so an
index-only rule touches no source files at all.

Project rules register in their own registry
(:func:`register_project_rule`) so the checker can run the per-module
pass and the project pass with independent rule selections, and so
``--rules SPA009`` keeps working uniformly across both kinds.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.index import ModuleIndex, ProjectIndex, build_module_index

__all__ = [
    "ProjectContext",
    "ProjectRule",
    "register_project_rule",
    "all_project_rules",
    "get_project_rule",
    "project_rule_ids",
    "check_project",
]


class ProjectContext:
    """Whole-program view handed to project rules.

    ``sources`` may pre-seed module sources (tests, or the in-process
    checker which already read every file); anything else is loaded
    from the path recorded in the module's index entry.
    """

    def __init__(
        self,
        index: ProjectIndex,
        *,
        sources: dict[str, str] | None = None,
    ) -> None:
        self.index = index
        self._sources: dict[str, str] = dict(sources or {})
        self._contexts: dict[str, ModuleContext | None] = {}

    # -- module access --------------------------------------------------------

    def module_index(self, module: str) -> ModuleIndex | None:
        return self.index.modules.get(module)

    def source(self, module: str) -> str | None:
        """Raw source of a project module (lazy disk read)."""
        if module in self._sources:
            return self._sources[module]
        mi = self.index.modules.get(module)
        if mi is None:
            return None
        try:
            text = open(mi.path, encoding="utf-8").read()
        except OSError:
            text = None
        self._sources[module] = text  # type: ignore[assignment]
        return text

    def module_context(self, module: str) -> ModuleContext | None:
        """Parsed :class:`ModuleContext` for a project module (cached)."""
        if module in self._contexts:
            return self._contexts[module]
        mi = self.index.modules.get(module)
        source = self.source(module)
        if mi is None or source is None:
            self._contexts[module] = None
            return None
        try:
            ctx = ModuleContext(source, path=mi.path, module=module)
        except SyntaxError:
            ctx = None
        self._contexts[module] = ctx
        return ctx

    def line_text(self, module: str, lineno: int) -> str:
        source = self.source(module)
        if source is None:
            return ""
        lines = source.splitlines()
        if 1 <= lineno <= len(lines):
            return lines[lineno - 1]
        return ""


class ProjectRule:
    """Base class for cross-module rules (pass 2).

    Mirrors :class:`~repro.analysis.base.Rule` but ``check`` receives
    the :class:`ProjectContext`; findings must anchor at a concrete
    (module, line) so suppression comments and the baseline work
    exactly as they do for per-module findings.
    """

    id: str = ""
    name: str = ""
    rationale: str = ""
    hint: str = ""

    def check(self, project: ProjectContext) -> Iterator[Finding]:  # pragma: no cover
        raise NotImplementedError

    def finding(
        self,
        project: ProjectContext,
        *,
        module: str,
        line: int,
        message: str,
        col: int = 0,
        hint: str | None = None,
        qualname: str = "",
    ) -> Finding:
        """Build a Finding anchored at ``module``'s source line."""
        mi = project.module_index(module)
        return Finding(
            path=mi.path if mi is not None else module,
            line=line,
            col=col,
            rule=self.id,
            message=message,
            hint=self.hint if hint is None else hint,
            line_text=project.line_text(module, line),
            qualname=qualname,
        )


_PROJECT_REGISTRY: dict[str, type[ProjectRule]] = {}


def register_project_rule(cls: type[ProjectRule]) -> type[ProjectRule]:
    """Class decorator adding a project rule to the pass-2 registry."""
    if not cls.id:
        raise ValueError(f"project rule {cls.__name__} has no id")
    if cls.id in _PROJECT_REGISTRY and _PROJECT_REGISTRY[cls.id] is not cls:
        raise ValueError(f"duplicate project rule id {cls.id}")
    _PROJECT_REGISTRY[cls.id] = cls
    return cls


def all_project_rules() -> list[ProjectRule]:
    """Fresh instances of every registered project rule, sorted by id."""
    return [cls() for _, cls in sorted(_PROJECT_REGISTRY.items())]


def get_project_rule(rule_id: str) -> ProjectRule:
    """Instantiate one registered project rule by id."""
    try:
        return _PROJECT_REGISTRY[rule_id]()
    except KeyError:
        known = ", ".join(sorted(_PROJECT_REGISTRY))
        raise KeyError(f"unknown project rule {rule_id!r} (known: {known})") from None


def project_rule_ids() -> frozenset[str]:
    return frozenset(_PROJECT_REGISTRY)


def check_project(
    sources: dict[str, str], rule: ProjectRule
) -> list[Finding]:
    """Run one project rule over in-memory modules (test helper).

    ``sources`` maps dotted module names to source text; paths are
    synthesised as ``src/<module path>.py`` so findings look like real
    repo findings.
    """
    index = ProjectIndex()
    for module, source in sources.items():
        path = "src/" + module.replace(".", "/") + ".py"
        ctx = ModuleContext(source, path=path, module=module)
        index.add(build_module_index(ctx))
    project = ProjectContext(index, sources=dict(sources))
    return sorted(rule.check(project))


def _walk_functions(
    tree: ast.Module,
) -> Iterator[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]]:
    """(qualname, def) pairs for module-level functions and methods."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node.name, node
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield f"{node.name}.{item.name}", item
