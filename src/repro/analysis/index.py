"""Pass 1 of the whole-program engine: per-module symbol indexes.

:func:`build_module_index` distils one parsed :class:`ModuleContext`
into a :class:`ModuleIndex` — a compact, picklable summary of what the
cross-module (pass 2) rules need from the module without re-walking its
AST:

* the classes it defines, with resolved base-class names and a
  per-method attribute map (which ``self.X`` attributes each method
  assigns, mutates and reads, and whether an assignment binds a
  mutable container);
* its functions/methods with their parameters, resolved call edges
  (``repro.runtime.store.ArtifactStore`` style dotted names), and which
  parameters flow — bare — into which calls (one-level dataflow for
  taint rules);
* its import alias table and the modules it imports (the project
  import graph's edges, which ``--changed`` uses for the
  reverse-dependency closure).

A :class:`ProjectIndex` is the pass-2 view over every module's index:
class resolution across modules (attribute maps merged over the base
chain), function lookup by name, and the import graph.  Module indexes
are content-addressed in the :class:`~repro.runtime.store.ArtifactStore`
by the source file's digest, so an unchanged file costs one cache read
on re-analysis.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from repro.analysis.base import ModuleContext

__all__ = [
    "INDEX_VERSION",
    "CallSite",
    "FunctionInfo",
    "ClassInfo",
    "ModuleIndex",
    "ProjectIndex",
    "build_module_index",
    "file_digest",
]

#: Bump when the index schema or extraction logic changes so cached
#: entries from older engines are never misread.
INDEX_VERSION = 1

# Constructors whose result is mutable state when bound to ``self.X``.
_MUTABLE_CALLS = frozenset(
    {
        "list",
        "dict",
        "set",
        "deque",
        "defaultdict",
        "Counter",
        "OrderedDict",
        "bytearray",
        "zeros",
        "empty",
        "ones",
        "full",
        "array",
        "arange",
    }
)

# Method names that mutate their receiver in place.
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "extend",
        "extendleft",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "discard",
        "clear",
        "sort",
        "reverse",
        "fill",
    }
)


def file_digest(path: str | Path) -> str:
    """SHA-256 of a file's raw bytes (the pass-1 cache identity)."""
    return hashlib.sha256(Path(path).read_bytes()).hexdigest()


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function."""

    dotted: str | None  # resolved dotted callee, e.g. "numpy.cumsum"
    attr: str | None  # bare attribute name for method calls ("put")
    lineno: int
    #: Enclosing-function parameters passed bare as positional args.
    arg_params: tuple[str, ...] = ()
    #: (keyword, parameter) pairs for parameters passed bare by keyword.
    kw_params: tuple[tuple[str, str], ...] = ()

    def to_dict(self) -> dict:
        return {
            "dotted": self.dotted,
            "attr": self.attr,
            "lineno": self.lineno,
            "arg_params": list(self.arg_params),
            "kw_params": [list(p) for p in self.kw_params],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CallSite":
        return cls(
            dotted=data["dotted"],
            attr=data["attr"],
            lineno=data["lineno"],
            arg_params=tuple(data["arg_params"]),
            kw_params=tuple((k, p) for k, p in data["kw_params"]),
        )


@dataclass
class FunctionInfo:
    """Index entry for one function or method."""

    name: str
    qualname: str  # dotted within the module ("Cls.method")
    lineno: int
    params: tuple[str, ...] = ()
    calls: tuple[CallSite, ...] = ()
    # self-attribute maps (methods only; attr -> first lineno seen).
    self_assign: dict[str, int] = field(default_factory=dict)
    self_mutable_assign: dict[str, int] = field(default_factory=dict)
    self_mutate: dict[str, int] = field(default_factory=dict)
    #: ``self.X = <param>`` — attributes bound straight from a parameter
    #: (injected collaborators rather than internally-built state).
    self_param_assign: dict[str, int] = field(default_factory=dict)
    self_read: frozenset[str] = frozenset()
    #: Names of own methods invoked as ``self.helper(...)``.
    self_calls: frozenset[str] = frozenset()

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "qualname": self.qualname,
            "lineno": self.lineno,
            "params": list(self.params),
            "calls": [c.to_dict() for c in self.calls],
            "self_assign": dict(self.self_assign),
            "self_mutable_assign": dict(self.self_mutable_assign),
            "self_mutate": dict(self.self_mutate),
            "self_param_assign": dict(self.self_param_assign),
            "self_read": sorted(self.self_read),
            "self_calls": sorted(self.self_calls),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FunctionInfo":
        return cls(
            name=data["name"],
            qualname=data["qualname"],
            lineno=data["lineno"],
            params=tuple(data["params"]),
            calls=tuple(CallSite.from_dict(c) for c in data["calls"]),
            self_assign=dict(data["self_assign"]),
            self_mutable_assign=dict(data["self_mutable_assign"]),
            self_mutate=dict(data["self_mutate"]),
            self_param_assign=dict(data["self_param_assign"]),
            self_read=frozenset(data["self_read"]),
            self_calls=frozenset(data["self_calls"]),
        )


@dataclass
class ClassInfo:
    """Index entry for one class definition."""

    name: str
    qualname: str
    lineno: int
    bases: tuple[str, ...] = ()  # resolved dotted base names
    methods: dict[str, FunctionInfo] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "qualname": self.qualname,
            "lineno": self.lineno,
            "bases": list(self.bases),
            "methods": {k: v.to_dict() for k, v in self.methods.items()},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ClassInfo":
        return cls(
            name=data["name"],
            qualname=data["qualname"],
            lineno=data["lineno"],
            bases=tuple(data["bases"]),
            methods={
                k: FunctionInfo.from_dict(v) for k, v in data["methods"].items()
            },
        )


@dataclass
class ModuleIndex:
    """Everything pass 2 knows about one module without its AST."""

    module: str
    path: str
    digest: str = ""
    imports: dict[str, str] = field(default_factory=dict)  # alias -> dotted
    import_modules: tuple[str, ...] = ()  # candidate imported module names
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "version": INDEX_VERSION,
            "module": self.module,
            "path": self.path,
            "digest": self.digest,
            "imports": dict(self.imports),
            "import_modules": list(self.import_modules),
            "classes": {k: v.to_dict() for k, v in self.classes.items()},
            "functions": {k: v.to_dict() for k, v in self.functions.items()},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ModuleIndex":
        if data.get("version") != INDEX_VERSION:
            raise ValueError(
                f"module index version {data.get('version')!r} != {INDEX_VERSION}"
            )
        return cls(
            module=data["module"],
            path=data["path"],
            digest=data["digest"],
            imports=dict(data["imports"]),
            import_modules=tuple(data["import_modules"]),
            classes={k: ClassInfo.from_dict(v) for k, v in data["classes"].items()},
            functions={
                k: FunctionInfo.from_dict(v) for k, v in data["functions"].items()
            },
        )


# -- extraction ---------------------------------------------------------------


def _is_self_attr(node: ast.AST) -> str | None:
    """``self.X`` -> ``X`` (direct attributes only)."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _is_mutable_expr(ctx: ModuleContext, node: ast.AST) -> bool:
    """Whether an assigned expression builds a mutable container."""
    if isinstance(
        node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
    ):
        return True
    if isinstance(node, ast.Call):
        dotted = ctx.resolve_call(node) or ""
        return dotted.rpartition(".")[2] in _MUTABLE_CALLS
    return False


def _record_first(table: dict[str, int], attr: str, lineno: int) -> None:
    table.setdefault(attr, lineno)


def _function_info(
    ctx: ModuleContext, fn: ast.FunctionDef | ast.AsyncFunctionDef, qualname: str
) -> FunctionInfo:
    params = tuple(
        a.arg
        for a in (
            *fn.args.posonlyargs,
            *fn.args.args,
            *fn.args.kwonlyargs,
            *([fn.args.vararg] if fn.args.vararg else []),
            *([fn.args.kwarg] if fn.args.kwarg else []),
        )
    )
    param_set = set(params)
    calls: list[CallSite] = []
    self_assign: dict[str, int] = {}
    self_mutable: dict[str, int] = {}
    self_mutate: dict[str, int] = {}
    self_param: dict[str, int] = {}
    self_read: set[str] = set()
    self_calls: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                for leaf in ast.walk(target):
                    attr = _is_self_attr(leaf)
                    if attr is None or not isinstance(leaf.ctx, ast.Store):
                        continue
                    _record_first(self_assign, attr, leaf.lineno)
                    if _is_mutable_expr(ctx, node.value):
                        _record_first(self_mutable, attr, leaf.lineno)
                    if (
                        isinstance(node.value, ast.Name)
                        and node.value.id in param_set
                    ):
                        _record_first(self_param, attr, leaf.lineno)
                # ``self.x[...] = v`` mutates x rather than rebinding it.
                if isinstance(target, ast.Subscript):
                    attr = _is_self_attr(target.value)
                    if attr is not None:
                        _record_first(self_mutate, attr, target.lineno)
        elif isinstance(node, ast.AugAssign):
            attr = _is_self_attr(node.target)
            if attr is not None:
                _record_first(self_assign, attr, node.target.lineno)
                _record_first(self_mutate, attr, node.target.lineno)
            elif isinstance(node.target, ast.Subscript):
                attr = _is_self_attr(node.target.value)
                if attr is not None:
                    _record_first(self_mutate, attr, node.target.lineno)
        elif isinstance(node, ast.Call):
            func = node.func
            attr_name = func.attr if isinstance(func, ast.Attribute) else None
            # ``self.x.append(...)``-style receiver mutation.
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATOR_METHODS
                and (recv := _is_self_attr(func.value)) is not None
            ):
                _record_first(self_mutate, recv, func.lineno)
            if isinstance(func, ast.Attribute):
                direct = _is_self_attr(func)
                if direct is not None:
                    self_calls.add(direct)
            arg_params = tuple(
                a.id
                for a in node.args
                if isinstance(a, ast.Name) and a.id in param_set
            )
            kw_params = tuple(
                (kw.arg, kw.value.id)
                for kw in node.keywords
                if kw.arg is not None
                and isinstance(kw.value, ast.Name)
                and kw.value.id in param_set
            )
            calls.append(
                CallSite(
                    dotted=ctx.resolve_call(node),
                    attr=attr_name,
                    lineno=node.lineno,
                    arg_params=arg_params,
                    kw_params=kw_params,
                )
            )
        elif isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
            attr = _is_self_attr(node)
            if attr is not None:
                self_read.add(attr)
    return FunctionInfo(
        name=fn.name,
        qualname=qualname,
        lineno=fn.lineno,
        params=params,
        calls=tuple(calls),
        self_assign=self_assign,
        self_mutable_assign=self_mutable,
        self_mutate=self_mutate,
        self_param_assign=self_param,
        self_read=frozenset(self_read),
        self_calls=frozenset(self_calls),
    )


def _import_candidates(tree: ast.Module) -> tuple[str, ...]:
    """Dotted names this module's imports might resolve to as modules."""
    out: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                out.add(alias.name)
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            out.add(node.module)
            for alias in node.names:
                if alias.name != "*":
                    out.add(f"{node.module}.{alias.name}")
    return tuple(sorted(out))


def build_module_index(ctx: ModuleContext, *, digest: str = "") -> ModuleIndex:
    """Distil one parsed module into its :class:`ModuleIndex`."""
    index = ModuleIndex(
        module=ctx.module,
        path=ctx.path,
        digest=digest,
        imports=dict(ctx._aliases),
        import_modules=_import_candidates(ctx.tree),
    )
    for node in ctx.tree.body:
        if isinstance(node, ast.ClassDef):
            info = ClassInfo(
                name=node.name,
                qualname=node.name,
                lineno=node.lineno,
                bases=tuple(
                    dotted
                    for base in node.bases
                    if (dotted := ctx.resolve(base)) is not None
                ),
            )
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    info.methods[item.name] = _function_info(
                        ctx, item, f"{node.name}.{item.name}"
                    )
            index.classes[node.name] = info
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            index.functions[node.name] = _function_info(ctx, node, node.name)
    return index


# -- whole-program view -------------------------------------------------------


class ProjectIndex:
    """Pass-2 view over every module's :class:`ModuleIndex`."""

    def __init__(self, modules: dict[str, ModuleIndex] | None = None) -> None:
        self.modules: dict[str, ModuleIndex] = dict(modules or {})

    def add(self, index: ModuleIndex) -> None:
        self.modules[index.module] = index

    # -- lookups --------------------------------------------------------------

    def module_of_path(self, path: str) -> ModuleIndex | None:
        for mi in self.modules.values():
            if mi.path == path:
                return mi
        return None

    def resolve_class(self, dotted: str) -> tuple[ModuleIndex, ClassInfo] | None:
        """``repro.core.profiler.ProfilerSession`` -> its index entry."""
        module, _, name = dotted.rpartition(".")
        mi = self.modules.get(module)
        if mi is not None and name in mi.classes:
            return mi, mi.classes[name]
        # Re-exports: ``repro.faults.EventGuard`` defined in a submodule.
        for mi in self.modules.values():
            if dotted == f"{mi.module}.{name}" and name in mi.classes:
                return mi, mi.classes[name]
        return None

    def base_chain(
        self, mi: ModuleIndex, info: ClassInfo
    ) -> Iterator[tuple[ModuleIndex, ClassInfo]]:
        """``info`` plus every resolvable base, nearest first, cycle-safe."""
        seen: set[tuple[str, str]] = set()
        queue: list[tuple[ModuleIndex, ClassInfo]] = [(mi, info)]
        while queue:
            cur_mi, cur = queue.pop(0)
            key = (cur_mi.module, cur.name)
            if key in seen:
                continue
            seen.add(key)
            yield cur_mi, cur
            for base in cur.bases:
                found = self.resolve_class(base)
                if found is None and "." not in base:
                    # Unqualified base defined in the same module.
                    local = cur_mi.classes.get(base)
                    found = (cur_mi, local) if local is not None else None
                if found is not None:
                    queue.append(found)

    def method(self, mi: ModuleIndex, info: ClassInfo, name: str) -> FunctionInfo | None:
        """Resolve a method through the base chain (nearest definition)."""
        for _, cls in self.base_chain(mi, info):
            if name in cls.methods:
                return cls.methods[name]
        return None

    def functions_named(self, name: str) -> list[FunctionInfo]:
        """Every function or method with bare name ``name`` (sorted)."""
        out: list[tuple[str, FunctionInfo]] = []
        for module, mi in sorted(self.modules.items()):
            if name in mi.functions:
                out.append((f"{module}.{name}", mi.functions[name]))
            for cls in mi.classes.values():
                if name in cls.methods:
                    out.append((f"{module}.{cls.name}.{name}", cls.methods[name]))
        return [fi for _, fi in sorted(out, key=lambda kv: kv[0])]

    def function_by_dotted(self, dotted: str) -> FunctionInfo | None:
        """Resolve ``pkg.mod.fn`` (module-level functions only)."""
        module, _, name = dotted.rpartition(".")
        mi = self.modules.get(module)
        if mi is not None:
            return mi.functions.get(name)
        for mi in self.modules.values():
            if dotted == f"{mi.module}.{name}" and name in mi.functions:
                return mi.functions[name]
        return None

    # -- import graph ---------------------------------------------------------

    def import_graph(self) -> dict[str, set[str]]:
        """module -> set of *project* modules it imports."""
        known = set(self.modules)
        graph: dict[str, set[str]] = {}
        for module, mi in self.modules.items():
            deps = {m for m in mi.import_modules if m in known and m != module}
            graph[module] = deps
        return graph

    def reverse_closure(self, changed: set[str]) -> set[str]:
        """``changed`` plus every module that (transitively) imports one."""
        graph = self.import_graph()
        reverse: dict[str, set[str]] = {m: set() for m in graph}
        for module, deps in graph.items():
            for dep in deps:
                reverse.setdefault(dep, set()).add(module)
        out = set(changed) & set(self.modules)
        frontier = list(out)
        while frontier:
            cur = frontier.pop()
            for dependant in reverse.get(cur, ()):
                if dependant not in out:
                    out.add(dependant)
                    frontier.append(dependant)
        return out
