"""SPA007: no ad-hoc O(n²) distance computation in ``repro.core``.

The phase-formation fast path assembles pairwise distances once — via
``_pairwise_sq_dists`` (one GEMM on shared squared row norms) and the
:class:`~repro.core.clustering.SilhouetteDistances` structure shared
across the whole k-sweep.  An ad-hoc distance expression elsewhere in
``repro.core`` silently reintroduces the quadratic hot loop the fast
path removed, and — because BLAS GEMM results are shape-dependent at
the last bit — risks distances that are *almost* but not bitwise equal
to the shared structure, breaking the bit-parity guarantees.

Two idioms are flagged, both restricted to ``repro.core`` modules
(``repro.core.clustering`` hosts the helpers and is exempt, as is the
``repro.core._reference`` museum of pre-fast-path implementations):

* ``np.linalg.norm(a - b, ...)`` — a norm over a broadcast difference
  materialises the full displacement tensor;
* ``A[..., None, ...] - B[..., None, ...]`` — a subtraction whose both
  operands are ``None``-indexed subscripts, the classic
  ``X[:, None] - C[None, :]`` broadcast that allocates an
  ``(n, k, d)`` intermediate.

The Gram-matrix expression the helpers use
(``x_sq[:, None] + c_sq[None, :] - 2 * X @ C.T``) is not flagged: its
subtraction operands are an addition and a product, not subscripts.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import ModuleContext, Rule, register_rule
from repro.analysis.findings import Finding

_SCOPE_PREFIX = "repro.core"
_EXEMPT_MODULES = frozenset(
    {"repro.core.clustering", "repro.core._reference"}
)

_NORM_CALLEES = frozenset({"numpy.linalg.norm", "scipy.linalg.norm"})


def _contains_sub(node: ast.AST) -> bool:
    """Whether any subtraction appears inside ``node``."""
    return any(
        isinstance(inner, ast.BinOp) and isinstance(inner.op, ast.Sub)
        for inner in ast.walk(node)
    )


def _is_none_indexed(node: ast.AST) -> bool:
    """Whether ``node`` is a subscript with a ``None`` axis (``a[:, None]``)."""
    if not isinstance(node, ast.Subscript):
        return False
    sl = node.slice
    elements = sl.elts if isinstance(sl, ast.Tuple) else [sl]
    return any(
        isinstance(e, ast.Constant) and e.value is None for e in elements
    )


@register_rule
class QuadraticDistanceRule(Rule):
    id = "SPA007"
    name = "quadratic-distance-idiom"
    rationale = (
        "Ad-hoc pairwise-distance expressions reintroduce the O(n²) "
        "hot loop and drift bitwise from the shared distance structure."
    )
    hint = (
        "use repro.core.clustering's _pairwise_sq_dists / "
        "SilhouetteDistances instead of an inline distance expression"
    )

    def _in_scope(self, ctx: ModuleContext) -> bool:
        mod = ctx.module
        if mod in _EXEMPT_MODULES:
            return False
        return mod == _SCOPE_PREFIX or mod.startswith(_SCOPE_PREFIX + ".")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not self._in_scope(ctx):
            return
        for node in ctx.walk():
            if isinstance(node, ast.Call):
                dotted = ctx.resolve_call(node)
                if dotted in _NORM_CALLEES and any(
                    _contains_sub(arg) for arg in node.args
                ):
                    yield self.finding(
                        ctx,
                        node,
                        "norm over a difference materialises the full "
                        "pairwise displacement tensor",
                    )
            elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Sub):
                if _is_none_indexed(node.left) and _is_none_indexed(node.right):
                    yield self.finding(
                        ctx,
                        node,
                        "broadcast-subtract over None-indexed operands "
                        "allocates an O(n·k·d) distance intermediate",
                    )
