"""SPA013: undeclared stage inputs.

A ``@stage_fn``-decorated function's provenance key covers exactly what
the decorator declares: its ``inputs``/``params`` arguments, its
``code=`` roots (plus the import closure of its module) and its
``reads=`` declarations.  Anything else the function consumes — a
module-level constant, an environment variable, a file on disk — can
change without moving the key, so a warm cache returns a stale artifact
while claiming full provenance.  This rule proves the declaration
complete for the three ambient channels a stage can realistically
reach:

* **module globals** — a ``Load`` of an ``ALL_CAPS`` name bound at
  module scope (directly or via a module-level/function-local
  ``from … import``) needs ``reads=("global:<module>.<NAME>", …)``.
  Lower-case bindings are functions/classes: they are code, and the
  import closure already fingerprints them.
* **environment variables** — ``os.environ[…]`` / ``os.environ.get`` /
  ``os.getenv`` needs ``reads=("env:<NAME>", …)``.
* **files** — ``open(…)`` in a read mode or ``….read_text()`` /
  ``….read_bytes()`` needs a ``reads=("file:…", …)`` entry (matched by
  prefix only: paths are rarely static, but the declaration forces the
  author to surface the dependency).

Constants the stage only *formats with* still count: the value reached
the artifact, so it must be keyed.  Writes are outputs, not inputs —
``open(path, "w")`` is exempt.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.base import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.project import (
    ProjectContext,
    ProjectRule,
    register_project_rule,
)

#: Module-scope data constants follow the ALL_CAPS convention; a single
#: capital letter (``T``, ``K``) is a type variable, not data.
_ALL_CAPS = re.compile(r"^[A-Z][A-Z0-9_]+$")

_ENV_GETTERS = frozenset({"os.getenv", "os.environ.get"})
_FILE_READ_METHODS = frozenset({"read_text", "read_bytes"})


def _stage_decorator(ctx: ModuleContext, fn: ast.FunctionDef) -> ast.Call | None:
    """The ``@stage_fn(...)`` decorator call on ``fn``, if any."""
    for dec in fn.decorator_list:
        if not isinstance(dec, ast.Call):
            continue
        dotted = ctx.resolve_call(dec) or ""
        if dotted.rpartition(".")[2] == "stage_fn":
            return dec
    return None


def _declared_reads(decorator: ast.Call) -> set[str] | None:
    """Literal ``reads=`` strings, or None if not statically knowable."""
    reads: set[str] = set()
    for kw in decorator.keywords:
        if kw.arg != "reads":
            continue
        if not isinstance(kw.value, (ast.Tuple, ast.List, ast.Set)):
            return None  # computed reads: assume the author knows best
        for elt in kw.value.elts:
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                reads.add(elt.value)
            else:
                return None
    return reads


def _module_global_origins(ctx: ModuleContext) -> dict[str, str]:
    """ALL_CAPS names bound at module scope -> their defining module."""
    origins: dict[str, str] = {}
    for stmt in ctx.tree.body:
        if isinstance(stmt, ast.ImportFrom) and stmt.module:
            for alias in stmt.names:
                bound = alias.asname or alias.name
                if _ALL_CAPS.match(bound):
                    origins[bound] = f"{stmt.module}.{alias.name}"
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            for target in targets:
                if isinstance(target, ast.Name) and _ALL_CAPS.match(target.id):
                    origins[target.id] = f"{ctx.module}.{target.id}"
    return origins


def _env_name(ctx: ModuleContext, node: ast.AST) -> str | None:
    """The env-var name read by ``node``, '?' if dynamic, None if not one."""
    if isinstance(node, ast.Subscript):
        base = ctx.resolve(node.value) or ""
        if base != "os.environ":
            return None
        key = node.slice
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            return key.value
        return "?"
    if isinstance(node, ast.Call):
        dotted = ctx.resolve_call(node) or ""
        if dotted not in _ENV_GETTERS:
            return None
        if node.args and isinstance(node.args[0], ast.Constant):
            if isinstance(node.args[0].value, str):
                return node.args[0].value
        return "?"
    return None


def _is_file_read(ctx: ModuleContext, node: ast.Call) -> bool:
    dotted = ctx.resolve_call(node) or ""
    if dotted == "open":
        mode = None
        if len(node.args) >= 2 and isinstance(node.args[1], ast.Constant):
            mode = node.args[1].value
        for kw in node.keywords:
            if kw.arg == "mode" and isinstance(kw.value, ast.Constant):
                mode = kw.value.value
        if isinstance(mode, str) and any(c in mode for c in "wax"):
            return False  # producing an output, not reading an input
        return True
    return (
        isinstance(node.func, ast.Attribute)
        and node.func.attr in _FILE_READ_METHODS
    )


@register_project_rule
class UndeclaredStageInput(ProjectRule):
    id = "SPA013"
    name = "undeclared-stage-input"
    rationale = (
        "A @stage_fn function that reads a module global, environment "
        "variable or file the decorator does not declare has an input "
        "outside its provenance key: the ambient value can change "
        "without invalidating the cached artifact, so warm runs return "
        "stale results that claim full lineage."
    )
    hint = (
        "declare the channel on the decorator — "
        "reads=(\"global:<module>.<NAME>\",), reads=(\"env:<NAME>\",) or "
        "reads=(\"file:<path>\",) — or pass the value in through params"
    )

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        for module in sorted(project.index.modules):
            ctx = project.module_context(module)
            if ctx is None:
                continue
            module_origins = _module_global_origins(ctx)
            for node in ast.walk(ctx.tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    decorator = _stage_decorator(ctx, node)
                    if decorator is None:
                        continue
                    yield from self._check_stage(
                        project, ctx, module, node, decorator, module_origins
                    )

    def _check_stage(
        self,
        project: ProjectContext,
        ctx: ModuleContext,
        module: str,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        decorator: ast.Call,
        module_origins: dict[str, str],
    ) -> Iterator[Finding]:
        reads = _declared_reads(decorator)
        if reads is None:
            return
        has_file_read = any(r.startswith("file:") for r in reads)

        # Function-local ``from m import NAME`` bindings shadow (and
        # extend) the module-scope origins inside this stage.
        origins = dict(module_origins)
        local_bound = {
            a.arg for a in fn.args.args + fn.args.kwonlyargs + fn.args.posonlyargs
        }
        for node in ast.walk(fn):
            if isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    bound = alias.asname or alias.name
                    if _ALL_CAPS.match(bound):
                        origins[bound] = f"{node.module}.{alias.name}"
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name):
                        local_bound.add(target.id)

        flagged: set[str] = set()
        for node in ast.walk(fn):
            env = _env_name(ctx, node)
            if env is not None:
                if f"env:{env}" not in reads and f"env:{env}" not in flagged:
                    flagged.add(f"env:{env}")
                    yield self.finding(
                        project,
                        module=module,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"stage '{fn.name}' reads environment variable "
                            f"{env!r} without declaring "
                            f'reads=("env:{env}",)'
                        ),
                        qualname=fn.name,
                    )
                continue
            if isinstance(node, ast.Call) and _is_file_read(ctx, node):
                if not has_file_read and "file:" not in flagged:
                    flagged.add("file:")
                    yield self.finding(
                        project,
                        module=module,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"stage '{fn.name}' reads a file without a "
                            'reads=("file:…",) declaration'
                        ),
                        qualname=fn.name,
                    )
                continue
            if (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and _ALL_CAPS.match(node.id)
                and node.id not in local_bound
                and node.id in origins
            ):
                dotted = origins[node.id]
                declared = f"global:{dotted}"
                if declared not in reads and declared not in flagged:
                    flagged.add(declared)
                    yield self.finding(
                        project,
                        module=module,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"stage '{fn.name}' reads module global "
                            f"{dotted!r} without declaring "
                            f'reads=("{declared}",)'
                        ),
                        qualname=fn.name,
                    )
        return
