"""SPA011: cross-boundary entropy taint.

SimProf's replay guarantee is that every run is a pure function of its
seeds.  Wall-clock and ambient-entropy values (``time.time()``,
``os.urandom``, an *unseeded* ``default_rng()``/``SeedSequence()``)
are fine as local diagnostics, but once they flow into a process/cache
boundary — a queue ``put`` to a worker, ``ArtifactStore.put``/
``get_or_compute``/``key_for``, ``checkpoint_job_key``, shared-memory
``send_stream`` — they make cache keys, checkpoints or cross-process
payloads nondeterministic, which is invisible until a replay diverges.

The rule taints locals assigned from entropy sources inside each
function, then flags sink calls whose arguments carry taint.  It is
interprocedural one level up: a fixpoint over the project index marks
function *parameters* that reach a sink inside their callee, so
passing a tainted local into such a function is flagged at the caller.

Exempt by design: values passed as declared manifest-metadata keywords
(``compute_seconds``, ``created``, ``stages``, ``counters``) — the
store records wall-clock *about* an artifact without keying on it —
and anything derived from a seeded RNG (``default_rng(seed)`` takes
arguments and is therefore never a source).  Scope is product code
(``repro.*``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.project import (
    ProjectContext,
    ProjectRule,
    _walk_functions,
    register_project_rule,
)

# Fully-resolved dotted names whose call yields wall-clock/entropy.
_ENTROPY_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "os.urandom",
        "uuid.uuid1",
        "uuid.uuid4",
    }
)

# Zero-argument forms of these are OS-entropy seeded (nondeterministic);
# with arguments they are SeedSequence-derived and deterministic.
_UNSEEDED_CALLS = frozenset({"default_rng", "SeedSequence", "Random"})

# Method names that ship a value across a cache/process boundary.
_SINK_ATTRS = frozenset({"put", "put_nowait", "get_or_compute", "key_for", "save"})

# Free functions that do the same.
_SINK_FUNCS = frozenset(
    {"stable_hash", "checkpoint_job_key", "encode_state", "send_stream"}
)

# Keyword arguments that are declared wall-clock *metadata* at the sink.
_EXEMPT_KWARGS = frozenset({"compute_seconds", "created", "stages", "counters"})


def _is_entropy_call(ctx: ModuleContext, node: ast.Call) -> bool:
    dotted = ctx.resolve_call(node) or ""
    if dotted in _ENTROPY_CALLS or dotted.startswith("secrets."):
        return True
    leaf = dotted.rpartition(".")[2]
    return leaf in _UNSEEDED_CALLS and not node.args and not node.keywords


def _is_sink_call(ctx: ModuleContext, node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr in _SINK_ATTRS:
        return True
    dotted = ctx.resolve_call(node) or ""
    return dotted.rpartition(".")[2] in _SINK_FUNCS


def _sink_param_fixpoint(project: ProjectContext) -> dict[str, frozenset[str]]:
    """dotted function -> parameters that reach a boundary sink inside it.

    Seeded from direct sink calls, then propagated up call edges
    recorded in the index (a caller parameter passed bare into a
    sink-reaching parameter is itself sink-reaching).
    """

    def all_functions():
        for module, mi in project.index.modules.items():
            for name, fi in mi.functions.items():
                yield f"{module}.{name}", fi
            for cls in mi.classes.values():
                for name, fi in cls.methods.items():
                    yield f"{module}.{cls.name}.{name}", fi

    reach: dict[str, set[str]] = {}
    for dotted, fi in all_functions():
        for cs in fi.calls:
            leaf = (cs.dotted or "").rpartition(".")[2]
            if not (cs.attr in _SINK_ATTRS or leaf in _SINK_FUNCS):
                continue
            params = reach.setdefault(dotted, set())
            params.update(cs.arg_params)
            params.update(p for kw, p in cs.kw_params if kw not in _EXEMPT_KWARGS)

    # Propagate through resolvable call edges until stable.
    changed = True
    while changed:
        changed = False
        for dotted, fi in all_functions():
            for cs in fi.calls:
                if cs.dotted is None:
                    continue
                callee = project.index.function_by_dotted(cs.dotted)
                if callee is None:
                    continue
                callee_keys = [
                    key
                    for key in reach
                    if key.rpartition(".")[2] == callee.name and reach[key]
                ]
                if not callee_keys:
                    continue
                callee_params = set().union(*(reach[k] for k in callee_keys))
                flow = set(cs.arg_params)
                flow.update(p for kw, p in cs.kw_params if kw in callee_params)
                if flow - reach.get(dotted, set()):
                    reach.setdefault(dotted, set()).update(flow)
                    changed = True
    return {k: frozenset(v) for k, v in reach.items() if v}


@register_project_rule
class EntropyTaint(ProjectRule):
    id = "SPA011"
    name = "cross-boundary-entropy-taint"
    rationale = (
        "Wall-clock or ambient entropy crossing a cache/process boundary "
        "makes keys and payloads nondeterministic, breaking seeded replay."
    )
    hint = (
        "derive the value from a SeedSequence-spawned RNG, or pass it as "
        "declared manifest metadata (e.g. compute_seconds) instead of "
        "key/payload material"
    )

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        sink_params = _sink_param_fixpoint(project)
        for module in sorted(project.index.modules):
            if not module.startswith("repro."):
                continue
            ctx = project.module_context(module)
            if ctx is None:
                continue
            for qualname, fn in _walk_functions(ctx.tree):
                yield from self._check_function(
                    project, ctx, module, qualname, fn, sink_params
                )

    def _check_function(
        self,
        project: ProjectContext,
        ctx: ModuleContext,
        module: str,
        qualname: str,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        sink_params: dict[str, frozenset[str]],
    ) -> Iterator[Finding]:
        tainted: set[str] = set()

        def expr_tainted(expr: ast.AST) -> bool:
            for node in ast.walk(expr):
                if isinstance(node, ast.Call) and _is_entropy_call(ctx, node):
                    return True
                if isinstance(node, ast.Name) and node.id in tainted:
                    return True
            return False

        # Two passes pick up chained assignments regardless of the
        # (source-order) walk sequence.
        for _ in range(2):
            for node in ast.walk(fn):
                if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                    value = node.value
                    if value is None or not expr_tainted(value):
                        continue
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        for leaf in ast.walk(target):
                            if isinstance(leaf, ast.Name):
                                tainted.add(leaf.id)

        seen_lines: set[int] = set()
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            is_sink = _is_sink_call(ctx, node)
            callee_params: frozenset[str] = frozenset()
            if not is_sink:
                dotted = ctx.resolve_call(node) or ""
                for key, params in sink_params.items():
                    if key == dotted or (
                        dotted and key.rpartition(".")[2] == dotted.rpartition(".")[2]
                    ):
                        callee_params = callee_params | params
                if not callee_params:
                    continue
            for kw in node.keywords:
                if kw.arg in _EXEMPT_KWARGS:
                    continue
                if not is_sink and kw.arg is not None and kw.arg not in callee_params:
                    continue
                if expr_tainted(kw.value):
                    break
            else:
                if not any(expr_tainted(arg) for arg in node.args):
                    continue
            if node.lineno in seen_lines:
                continue
            seen_lines.add(node.lineno)
            boundary = (
                node.func.attr
                if isinstance(node.func, ast.Attribute)
                else (ctx.resolve_call(node) or "").rpartition(".")[2]
            )
            yield self.finding(
                project,
                module=module,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    "entropy/wall-clock-derived value crosses a "
                    f"cache/process boundary via '{boundary}' without a "
                    "SeedSequence-derived RNG"
                ),
                qualname=qualname,
            )
