"""SPA012: shared-resource lifecycle.

Shared-memory blocks, replay buffers and ``delete=False`` temp files
outlive the Python objects that wrap them: a path that leaves the
function without closing/unlinking the handle leaks a kernel object or
an on-disk file.  The leak almost always hides on *exception* paths —
the happy path closes the block, but an error between acquisition and
release unwinds past the cleanup (PR 7's chaos harness finds these
dynamically by killing workers; this rule proves their absence
statically).

Per function, each ``name = <acquisition>()`` assignment is checked
against the function's CFG (:mod:`repro.analysis.cfg`, with exception
edges): the acquisition node must not reach the normal exit or the
raise sink without passing a *release* or an *escape* of the resource.

* acquisitions — ``multiprocessing.shared_memory.SharedMemory(...)``,
  ``tempfile.NamedTemporaryFile(...)`` / ``tempfile.mkstemp(...)``,
  and (in ``repro.*`` product code only) ``ReplayBuffer(...)``;
* releases — ``name.close()/.unlink()/.release()/.clear()``, or
  ``os.replace/os.unlink/os.remove`` applied to ``name``/``name.name``;
* escapes (ownership transfer ends local responsibility) — returning
  or yielding the resource, passing it *bare* to a call
  (``open_blocks.append(block)``), storing it into an attribute,
  subscript or container, or aliasing it to another name.  Reading an
  attribute (``block.buf``, ``block.name``) is not an escape.

``with <acquisition>() as name:`` is exempt — the context manager owns
the lifecycle.

Exception paths are only required to release *kernel-backed* resources
(shared memory, ``delete=False`` temp files): those outlive the
process.  A replay buffer is a pure-Python pin — if an error unwinds
before it escapes, the garbage collector drops it (still empty) along
with anything it pinned — so it is only checked on normal paths.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import ModuleContext
from repro.analysis.cfg import CFG, build_cfg
from repro.analysis.findings import Finding
from repro.analysis.project import (
    ProjectContext,
    ProjectRule,
    _walk_functions,
    register_project_rule,
)

_RELEASE_METHODS = frozenset({"close", "unlink", "release", "clear", "terminate"})
#: Kinds the garbage collector reclaims on its own — an exception that
#: unwinds before the escape drops them harmlessly, so only normal
#: paths must release or transfer them.
_GC_SAFE_KINDS = frozenset({"replay buffer"})
_OS_RELEASES = frozenset({"unlink", "remove", "replace"})
_TMP_CALLS = frozenset({"NamedTemporaryFile", "mkstemp"})


def _acquisition_kind(ctx: ModuleContext, node: ast.AST) -> str | None:
    if not isinstance(node, ast.Call):
        return None
    dotted = ctx.resolve_call(node) or ""
    leaf = dotted.rpartition(".")[2]
    if leaf == "SharedMemory":
        return "shared-memory block"
    if leaf in _TMP_CALLS:
        # delete=True temp files clean themselves up on close/GC.
        for kw in node.keywords:
            if (
                kw.arg == "delete"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is False
            ):
                return "delete=False temp file"
        return None
    if leaf == "ReplayBuffer" and ctx.module.startswith("repro."):
        return "replay buffer"
    return None


def _names_resource(node: ast.AST, name: str) -> bool:
    """``node`` is ``name`` or ``name.<attr>`` (e.g. ``fd.name``)."""
    if isinstance(node, ast.Name) and node.id == name:
        return True
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == name
    )


def _is_release(ctx: ModuleContext, stmt: ast.stmt, name: str) -> bool:
    for node in ast.walk(stmt):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _RELEASE_METHODS
            and isinstance(func.value, ast.Name)
            and func.value.id == name
        ):
            return True
        dotted = ctx.resolve_call(node) or ""
        if dotted.startswith("os.") and dotted.rpartition(".")[2] in _OS_RELEASES:
            if any(_names_resource(arg, name) for arg in node.args):
                return True
    return False


def _is_escape(ctx: ModuleContext, stmt: ast.stmt, name: str) -> bool:
    def bare(node: ast.AST) -> bool:
        # A *bare* occurrence: the name itself, not ``name.attr``.
        return (
            isinstance(node, ast.Name)
            and node.id == name
            and not isinstance(ctx.parent(node), ast.Attribute)
        )

    if isinstance(stmt, ast.Return):
        return stmt.value is not None and any(
            bare(n) for n in ast.walk(stmt.value)
        )
    if isinstance(stmt, ast.Expr) and isinstance(
        stmt.value, (ast.Yield, ast.YieldFrom)
    ):
        return any(bare(n) for n in ast.walk(stmt.value))
    if isinstance(stmt, ast.Assign):
        # Aliasing or storing the resource anywhere transfers ownership.
        return any(bare(n) for n in ast.walk(stmt.value))
    for node in ast.walk(stmt):
        if isinstance(node, ast.Call) and (
            any(bare(arg) for arg in node.args)
            or any(bare(kw.value) for kw in node.keywords)
        ):
            return True
    return False


@register_project_rule
class SharedResourceLifecycle(ProjectRule):
    id = "SPA012"
    name = "shared-resource-lifecycle"
    rationale = (
        "A shared-memory block or delete=False temp file that escapes "
        "cleanup on any path — especially exception unwinds — leaks a "
        "kernel object or on-disk file past the process."
    )
    hint = (
        "release the resource on every path (try/finally or an except "
        "handler that closes and unlinks before re-raising), or hand it "
        "to an owner that does"
    )

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        for module in sorted(project.index.modules):
            ctx = project.module_context(module)
            if ctx is None:
                continue
            for node in ast.walk(ctx.tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield from self._check_function(project, ctx, module, node)

    def _check_function(
        self,
        project: ProjectContext,
        ctx: ModuleContext,
        module: str,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> Iterator[Finding]:
        acquisitions: list[tuple[ast.Assign, str, str]] = []
        for node in ast.walk(fn):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                kind = _acquisition_kind(ctx, node.value)
                if kind is not None:
                    acquisitions.append((node, node.targets[0].id, kind))
        if not acquisitions:
            return

        cfg: CFG = build_cfg(fn)
        qualname = ".".join(reversed(ctx.enclosing_names(fn))) or ""
        qualname = f"{qualname}.{fn.name}" if qualname else fn.name
        for stmt, name, kind in acquisitions:
            start = cfg.node_of(stmt)
            if start is None:
                continue  # inside a nested def; checked separately there
            handled = {
                nid
                for nid, node in enumerate(cfg.nodes)
                if node.stmt is not None
                and (
                    _is_release(ctx, node.stmt, name)
                    or _is_escape(ctx, node.stmt, name)
                )
            }
            leak_normal = cfg.reaches_without(start, handled, cfg.exit_id)
            leak_raise = kind not in _GC_SAFE_KINDS and cfg.reaches_without(
                start, handled, cfg.raise_id
            )
            if not (leak_normal or leak_raise):
                continue
            if leak_normal:
                detail = "a normal path reaches the function exit"
            else:
                detail = "an exception path unwinds out of the function"
            yield self.finding(
                project,
                module=module,
                line=stmt.lineno,
                col=stmt.col_offset,
                message=(
                    f"{kind} '{name}' is not released on every path: "
                    f"{detail} without close/unlink or an ownership "
                    "transfer"
                ),
                qualname=qualname,
            )
