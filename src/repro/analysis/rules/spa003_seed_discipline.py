"""SPA003: public randomness must be seedable by the caller.

Two violations of seed discipline:

* **Entropy seeding** — ``np.random.default_rng()`` (or
  ``SeedSequence()`` / ``random.Random()``) called with *no* arguments
  draws a seed from OS entropy.  Nothing downstream of such a call can
  ever be replayed, so this is flagged everywhere, even in private
  helpers and tests.
* **Hard-coded seeds in public APIs** — a public function that
  constructs its RNG from a literal (``default_rng(0)``) without
  accepting a ``seed``/``rng`` parameter and without deriving the seed
  from configuration is deterministic but *unsteerable*: callers
  cannot vary draws, and every experiment silently shares one stream.
  (The established repo idiom — ``rng: Generator | None = None`` with
  a ``default_rng(0)`` fallback — passes, because the parameter exists.)

Test modules (``test_*``/``conftest``), ``pytest.fixture`` functions
and private helpers are exempt from the hard-coded-seed clause: pinning
a seed there is the point.  The entropy clause applies everywhere.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import ModuleContext, Rule, register_rule
from repro.analysis.findings import Finding

_RNG_CONSTRUCTORS = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.SeedSequence",
        "random.Random",
    }
)

# Parameter names that count as "the caller can steer the randomness".
_SEED_PARAMS = frozenset(
    {"seed", "seeds", "rng", "seed_sequence", "seed_seq", "random_state", "generator"}
)

# Identifier substrings in constructor arguments that count as deriving
# the seed from threaded state (cfg.seed, self._rng, base_seed, ...).
_SEEDISH_MARKERS = ("seed", "rng", "random_state", "entropy")


def _is_test_module(module: str) -> bool:
    basename = module.rpartition(".")[2]
    return basename.startswith("test_") or basename == "conftest"


def _is_fixture(ctx: ModuleContext, fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for dec in fn.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        dotted = ctx.resolve(target) or ""
        if dotted.rpartition(".")[2] == "fixture":
            return True
    return False


def _params_of(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    args = fn.args
    names = [a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)]
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return set(names)


def _mentions_seedish(nodes: list[ast.AST]) -> bool:
    for root in nodes:
        for node in ast.walk(root):
            ident = None
            if isinstance(node, ast.Name):
                ident = node.id
            elif isinstance(node, ast.Attribute):
                ident = node.attr
            elif isinstance(node, ast.arg):
                ident = node.arg
            if ident and any(m in ident.lower() for m in _SEEDISH_MARKERS):
                return True
    return False


@register_rule
class SeedDisciplineRule(Rule):
    id = "SPA003"
    name = "seed-discipline"
    rationale = (
        "Randomness a caller cannot seed cannot be replayed or varied; "
        "entropy-seeded generators are unreproducible by construction."
    )
    hint = (
        "accept a seed or numpy.random.Generator parameter and derive "
        "the generator from it (rng or np.random.default_rng(seed))"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.resolve_call(node)
            if dotted not in _RNG_CONSTRUCTORS:
                continue
            args: list[ast.AST] = [*node.args, *[kw.value for kw in node.keywords]]
            if not args:
                yield self.finding(
                    ctx,
                    node,
                    f"{dotted}() with no seed draws OS entropy; the "
                    "result can never be replayed",
                )
                continue
            if _mentions_seedish(args):
                continue  # seed threaded from a parameter/config
            fn = ctx.enclosing_function(node)
            if fn is None:
                # Module-level literal-seeded generator: module-global
                # RNG state in disguise.
                yield self.finding(
                    ctx,
                    node,
                    f"module-level {dotted}(...) with a hard-coded seed "
                    "is shared global state",
                )
                continue
            if fn.name.startswith("_") or fn.name.startswith("test"):
                continue  # private helpers and tests may pin seeds
            if _is_test_module(ctx.module) or _is_fixture(ctx, fn):
                continue  # test fixtures/helpers pin seeds on purpose
            if _params_of(fn) & _SEED_PARAMS:
                continue  # caller can steer via the parameter
            yield self.finding(
                ctx,
                node,
                f"public function {fn.name}() hard-codes its seed in "
                f"{dotted}(...) and exposes no seed/rng parameter",
            )
