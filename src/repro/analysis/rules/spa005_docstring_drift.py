"""SPA005: docstring numeric constants must match the code.

Docstrings here routinely quote the defaults they document — "``100 M``
instruction units", "``snapshot_period`` … default 2 M" — and those
prose copies silently rot when a constant changes (PR 2 fixed exactly
this: docstrings still advertising the paper's 10 M snapshot period
after the default moved to 2 M).  The rule extracts named constants
from the module's AST (module-level assignments, class-field defaults,
keyword-argument defaults) and cross-checks every "``name`` …
default(s to) N [K/M/G]" claim found in a docstring against them.

Only claims naming a constant *defined in the same module* are
checked: prose about other modules' defaults is a documentation
problem this rule cannot adjudicate locally.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.base import ModuleContext, Rule, register_rule
from repro.analysis.findings import Finding

# "``snapshot_period``, default 2 M" / "`unit_size` (defaults to 100_000_000)"
# / "unit_size ... default: 100M".  The gap between the name and the word
# "default" is bounded and may not cross a sentence.
_CLAIM = re.compile(
    r"``?(?P<name>[A-Za-z_][\w.]*)``?"
    r"[^.;`]{0,60}?"
    r"\bdefaults?(?:\s+(?:to|of|is|at)|:)?\s+"
    r"(?P<num>\d[\d_,]*(?:\.\d+)?)\s?(?P<suffix>[KMG]\b)?"
)

_SUFFIX = {"K": 1e3, "M": 1e6, "G": 1e9}


def _literal_number(node: ast.AST) -> float | None:
    """The numeric value of a (possibly negated) literal, else None."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _literal_number(node.operand)
        return None if inner is None else -inner
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        if isinstance(node.value, bool):
            return None
        return float(node.value)
    return None


def _collect_constants(tree: ast.Module) -> dict[str, set[float]]:
    """Every name -> numeric literal binding visible in the module.

    Covers module/class-level ``NAME = 42`` and ``name: int = 42``
    (dataclass fields) plus keyword-argument defaults in function
    signatures.  A name bound to several values (same field name in two
    classes) accumulates all of them; a docstring claim matching *any*
    binding passes — the rule prefers false negatives to noise.
    """
    constants: dict[str, set[float]] = {}

    def record(name: str, value: float | None) -> None:
        if value is not None:
            constants.setdefault(name, set()).add(value)

    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    record(target.id, _literal_number(node.value))
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name):
                record(node.target.id, _literal_number(node.value))
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = node.args
            positional = [*args.posonlyargs, *args.args]
            for arg, default in zip(positional[len(positional) - len(args.defaults):],
                                    args.defaults):
                record(arg.arg, _literal_number(default))
            for arg, default in zip(args.kwonlyargs, args.kw_defaults):
                if default is not None:
                    record(arg.arg, _literal_number(default))
    return constants


def _fmt(value: float) -> str:
    return f"{value:g}"


@register_rule
class DocstringDriftRule(Rule):
    id = "SPA005"
    name = "docstring-constant-drift"
    rationale = (
        "Docstrings quoting defaults rot silently when the constant "
        "changes; readers then reason from wrong sampling parameters."
    )
    hint = "update the docstring (or the constant) so both agree"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        constants = _collect_constants(ctx.tree)
        if not constants:
            return
        for _owner, doc_node in ctx.docstring_nodes():
            text = doc_node.value
            for match in _CLAIM.finditer(text):
                name = match.group("name").rpartition(".")[2]
                known = constants.get(name)
                if not known:
                    continue
                quoted = float(match.group("num").replace("_", "").replace(",", ""))
                if match.group("suffix"):
                    quoted *= _SUFFIX[match.group("suffix")]
                if any(abs(quoted - actual) <= 1e-9 * max(1.0, abs(actual))
                       for actual in known):
                    continue
                # Anchor the finding at the docstring line containing
                # the stale claim so the fix is one keystroke away.
                offset = text[: match.start()].count("\n")
                anchor = ast.Constant(value=None)
                anchor.lineno = doc_node.lineno + offset
                anchor.col_offset = 0
                expected = " or ".join(sorted(_fmt(v) for v in known))
                yield self.finding(
                    ctx,
                    anchor,
                    f"docstring says {name} defaults to "
                    f"{_fmt(quoted)} but the code binds {expected}",
                )
