"""SPA001: no global RNG state.

Every draw in this codebase flows through an explicitly seeded
``numpy.random.Generator`` (see ``repro.jvm.machine``).  The stdlib
``random`` module functions and the legacy ``numpy.random.*`` free
functions (``np.random.seed``, ``np.random.rand``, …) mutate hidden
module-level state shared across threads, so a single call anywhere
makes replay order-dependent and breaks bit-identical reproduction —
the property every parity test (serial vs parallel, batch vs stream)
relies on.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import ModuleContext, Rule, register_rule
from repro.analysis.findings import Finding

# numpy.random names that do NOT touch the legacy global RandomState:
# explicit generators, bit generators and seed plumbing.
_NUMPY_ALLOWED = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

# stdlib random names that construct *instances* instead of driving the
# module-level singleton.  (SystemRandom is still non-reproducible, but
# that is SPA003's seed-discipline problem, not global state.)
_STDLIB_ALLOWED = frozenset({"Random", "SystemRandom"})


@register_rule
class GlobalRngRule(Rule):
    id = "SPA001"
    name = "global-rng"
    rationale = (
        "Module-level RNG state makes results depend on call order "
        "across the whole process; sampled profiles stop being "
        "reproducible estimators."
    )
    hint = (
        "thread an explicit numpy.random.Generator "
        "(np.random.default_rng(seed)) through the call instead"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.resolve_call(node)
            if dotted is None:
                continue
            if dotted.startswith("numpy.random."):
                tail = dotted.removeprefix("numpy.random.").partition(".")[0]
                if tail not in _NUMPY_ALLOWED:
                    yield self.finding(
                        ctx,
                        node,
                        f"call to legacy global-state API {dotted}()",
                    )
            elif dotted.startswith("random."):
                tail = dotted.removeprefix("random.").partition(".")[0]
                if tail not in _STDLIB_ALLOWED:
                    yield self.finding(
                        ctx,
                        node,
                        f"call to stdlib global-RNG function {dotted}()",
                    )
