"""SPA008: no per-element Python iteration over packed segment arrays.

The columnar trace plane moves segments as packed ``SEGMENT_DTYPE``
structured arrays precisely so nothing between substrate flush and
unit emission runs a Python-level per-segment loop.  One stray
``for row in batch.data`` (or a ``.tolist()``) silently reintroduces
the per-object hot path the refactor removed — the code still passes
every parity test, it is just 100× slower, which is the kind of
regression only a profiler would catch.  This rule catches it
statically instead.

Flagged, inside the trace-plane modules only (``repro.jvm.segments``,
``repro.jvm.stream``, ``repro.jvm.shm``, ``repro.core.profiler``,
``repro.core.features``, ``repro.faults.stream``; ``_reference``
modules are the sanctioned object-path museum and stay exempt):

* iteration (``for`` statements and comprehensions) whose iterable is
  a packed-array expression: a ``.data`` batch payload, a call to one
  of the packers (``to_structured``, ``drain_structured``,
  ``segments_to_array``, ``empty_segment_array``), a subscript of
  either (column slices are still per-element iteration), a local
  name bound to one of those, or a bare name ``data`` (the
  trace-plane convention for a packed batch payload);
* ``zip(...)``/``enumerate(...)`` iterables with any packed-array
  argument;
* ``.tolist()`` on anything — there is no columnar reason to
  round-trip through Python lists;
* ``object``-dtype arrays (``dtype=object`` / ``dtype="object"`` /
  ``np.dtype(object)``), which box every element and defeat the
  packed layout.

The one legitimate columnar → object adapter
(:func:`repro.jvm.segments.array_to_segments`) carries an inline
``# simprof: ignore[SPA008]`` with its justification.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import ModuleContext, Rule, register_rule
from repro.analysis.findings import Finding

_SCOPE_MODULES = frozenset(
    {
        "repro.jvm.segments",
        "repro.jvm.stream",
        "repro.jvm.shm",
        "repro.core.profiler",
        "repro.core.features",
        "repro.faults.stream",
    }
)

_PACKER_NAMES = frozenset(
    {
        "to_structured",
        "drain_structured",
        "segments_to_array",
        "empty_segment_array",
    }
)

_WRAPPER_CALLS = frozenset({"zip", "enumerate", "reversed", "iter", "list", "tuple"})


def _call_name(node: ast.Call) -> str | None:
    """Bare callee name of ``node`` (``f`` for both ``f()`` and ``a.f()``)."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


class _PackedSources:
    """Names bound to packed-array expressions (one-step local dataflow).

    Scoped to one function (or the module top level): a rebinding like
    ``segments = segments_to_array(segments)`` taints ``segments`` only
    inside the function that does it.
    """

    def __init__(self, assigns: "list[ast.Assign]") -> None:
        self.names: set[str] = {"data"}
        for node in assigns:
            if self._is_packed_expr(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.names.add(target.id)

    def _is_packed_expr(self, node: ast.AST) -> bool:
        """Whether ``node`` syntactically produces a packed segment array."""
        if isinstance(node, ast.Attribute):
            return node.attr == "data"
        if isinstance(node, ast.Call):
            return _call_name(node) in _PACKER_NAMES
        if isinstance(node, ast.Subscript):
            # A column or row slice of a packed source is still the
            # packed source as far as per-element iteration goes.
            return self._is_packed_expr(node.value)
        if isinstance(node, ast.Name):
            return node.id in self.names
        return False

    def is_packed_iterable(self, node: ast.AST) -> bool:
        """Packed expression, or a zip/enumerate over one."""
        if self._is_packed_expr(node):
            return True
        if isinstance(node, ast.Call) and _call_name(node) in _WRAPPER_CALLS:
            return any(self._is_packed_expr(arg) for arg in node.args)
        return False


def _is_object_dtype(node: ast.AST) -> bool:
    """Whether ``node`` names the object dtype (``object`` / ``"object"``)."""
    if isinstance(node, ast.Name) and node.id == "object":
        return True
    if isinstance(node, ast.Constant) and node.value == "object":
        return True
    return False


@register_rule
class ColumnarIterationRule(Rule):
    id = "SPA008"
    name = "columnar-iteration"
    rationale = (
        "Per-element Python iteration over packed segment arrays "
        "reintroduces the per-object hot path the columnar trace plane "
        "removed."
    )
    hint = (
        "operate on column slices (arr['instructions'], searchsorted, "
        "cumsum) instead of iterating rows; use "
        "repro.jvm.segments.array_to_segments if objects are truly needed"
    )

    def _in_scope(self, ctx: ModuleContext) -> bool:
        mod = ctx.module
        if mod.endswith("._reference"):
            return False
        return mod in _SCOPE_MODULES

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not self._in_scope(ctx):
            return
        by_scope: dict[ast.AST | None, _PackedSources] = {}

        def sources_at(node: ast.AST) -> _PackedSources:
            scope = ctx.enclosing_function(node)
            cached = by_scope.get(scope)
            if cached is None:
                region = scope if scope is not None else ctx.tree
                assigns = [
                    n
                    for n in ast.walk(region)
                    if isinstance(n, ast.Assign)
                    and ctx.enclosing_function(n) is scope
                ]
                cached = _PackedSources(assigns)
                by_scope[scope] = cached
            return cached

        for node in ctx.walk():
            if isinstance(node, ast.For):
                if sources_at(node).is_packed_iterable(node.iter):
                    yield self.finding(
                        ctx,
                        node.iter,
                        "per-element for-loop over a packed segment array",
                    )
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for gen in node.generators:
                    if sources_at(node).is_packed_iterable(gen.iter):
                        yield self.finding(
                            ctx,
                            gen.iter,
                            "comprehension iterates a packed segment "
                            "array per element",
                        )
            elif isinstance(node, ast.Call):
                name = _call_name(node)
                if name == "tolist" and isinstance(node.func, ast.Attribute):
                    yield self.finding(
                        ctx,
                        node,
                        ".tolist() boxes every element of the array "
                        "into Python objects",
                    )
                    continue
                dotted = ctx.resolve_call(node)
                if dotted == "numpy.dtype" and any(
                    _is_object_dtype(arg) for arg in node.args
                ):
                    yield self.finding(
                        ctx, node, "object dtype defeats the packed layout"
                    )
                    continue
                for kw in node.keywords:
                    if kw.arg == "dtype" and _is_object_dtype(kw.value):
                        yield self.finding(
                            ctx,
                            kw.value,
                            "object dtype defeats the packed layout",
                        )
