"""SPA010: checkpoint-key completeness.

:func:`repro.runtime.checkpoint.checkpoint_job_key` is the identity
under which in-flight profiling state is checkpointed and resumed.  If
a parameter influences the profiled stream but is missing from the key
material, two *different* jobs share a checkpoint chain and a resume
silently continues the wrong run — the same class of collision PR 7's
chaos tests probe dynamically, caught statically here.

For every function that builds a job key, the rule compares two root
sets derived by expanding local assignments back to terminal names
(function parameters and attribute chains such as ``args.scale``):

* **covered** — roots reaching the ``checkpoint_job_key(...)``
  argument (dict-literal values, or the ``self``-reads of a
  ``spec.profile_params()``-style key method resolved through the
  project index);
* **influencing** — roots passed to stream-producer calls
  (``run_workload_stream``, ``stream_in_worker``, …) in the same
  function.

Influencing roots with no covered counterpart are flagged.  Runtime
plumbing that deliberately stays outside the key is exempt: ``store``/
``queue``/``manager`` objects, ``checkpoint=``/``policy=`` keyword
arguments (checkpoint cadence does not change the job's identity), and
upper-case module constants.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.project import (
    ProjectContext,
    ProjectRule,
    _walk_functions,
    register_project_rule,
)

# Calls that produce (or transform into) the profiled event stream.
_PRODUCERS = frozenset(
    {"run_workload", "run_workload_stream", "stream_in_worker", "profile_stream"}
)

# Keyword arguments on producer calls that are runtime plumbing, not
# job identity (checkpoint cadence may differ between resumed runs).
_PLUMBING_KWARGS = frozenset({"checkpoint", "policy", "store"})

# Terminal roots that never belong in a job key.
_PLUMBING_HEADS = frozenset(
    {"self", "store", "queue", "manager", "policy", "checkpoint"}
)


def _dotted(node: ast.AST) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _roots(node: ast.AST) -> set[str]:
    """Terminal name roots referenced by an expression.

    Attribute chains stay dotted (``args.scale``); calls contribute
    their method receiver and argument roots but not the bare callee
    name (``FaultPlan.load(x)`` roots to ``x``, not ``FaultPlan``).
    """
    out: set[str] = set()

    def visit(n: ast.AST) -> None:
        dotted = _dotted(n)
        if dotted is not None:
            out.add(dotted)
            return
        if isinstance(n, ast.Call):
            if isinstance(n.func, ast.Attribute):
                visit(n.func.value)
            for arg in n.args:
                visit(arg)
            for kw in n.keywords:
                visit(kw.value)
            return
        for child in ast.iter_child_nodes(n):
            visit(child)

    visit(node)
    return {r for r in out if not r.split(".", 1)[0][:1].isupper()}


def _local_map(fn: ast.AST) -> dict[str, set[str]]:
    """Local name -> roots of everything ever assigned to it."""
    table: dict[str, set[str]] = {}
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            value_roots = _roots(node.value)
            for target in node.targets:
                names = (
                    [target]
                    if isinstance(target, ast.Name)
                    else list(target.elts)
                    if isinstance(target, (ast.Tuple, ast.List))
                    else []
                )
                for name in names:
                    if isinstance(name, ast.Name):
                        table.setdefault(name.id, set()).update(value_roots)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name):
                table.setdefault(node.target.id, set()).update(
                    _roots(node.value)
                )
    return table


def _expand(root: str, table: dict[str, set[str]], seen: set[str]) -> set[str]:
    """Expand a root through local assignments to terminal names."""
    head = root.split(".", 1)[0]
    if head not in table:
        return {root}
    if head in seen:
        return set()
    seen.add(head)
    out: set[str] = set()
    for sub in table[head]:
        out |= _expand(sub, table, seen)
    return out


def _expand_all(roots: set[str], table: dict[str, set[str]]) -> set[str]:
    out: set[str] = set()
    for root in roots:
        out |= _expand(root, table, set())
    return {r for r in out if r.split(".", 1)[0] not in _PLUMBING_HEADS}


def _covers(covered: set[str], root: str) -> bool:
    return any(
        c == root or c.startswith(root + ".") or root.startswith(c + ".")
        for c in covered
    )


@register_project_rule
class CheckpointKeyCompleteness(ProjectRule):
    id = "SPA010"
    name = "checkpoint-key-completeness"
    rationale = (
        "A job parameter missing from the checkpoint key lets two "
        "distinct jobs collide on one checkpoint chain and resume each "
        "other's state."
    )
    hint = (
        "add the parameter to the dict passed to checkpoint_job_key() "
        "(or to the spec's profile_params())"
    )

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        for module in sorted(project.index.modules):
            if not module.startswith("repro."):
                continue
            ctx = project.module_context(module)
            if ctx is None:
                continue
            for qualname, fn in _walk_functions(ctx.tree):
                yield from self._check_function(project, ctx, module, qualname, fn)

    def _check_function(
        self,
        project: ProjectContext,
        ctx: ModuleContext,
        module: str,
        qualname: str,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> Iterator[Finding]:
        key_calls = [
            node
            for node in ast.walk(fn)
            if isinstance(node, ast.Call)
            and (ctx.resolve_call(node) or "").rpartition(".")[2]
            == "checkpoint_job_key"
        ]
        if not key_calls:
            return
        table = _local_map(fn)
        covered: set[str] = set()
        for call in key_calls:
            for arg in call.args:
                covered |= self._coverage(project, arg)
        covered = _expand_all(covered, table)

        influence: set[str] = set()
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            leaf = (
                func.attr
                if isinstance(func, ast.Attribute)
                else func.id
                if isinstance(func, ast.Name)
                else ""
            )
            if leaf not in _PRODUCERS:
                continue
            raw: set[str] = set()
            if isinstance(func, ast.Attribute):
                raw |= _roots(func.value)
            for arg in node.args:
                raw |= _roots(arg)
            for kw in node.keywords:
                if kw.arg in _PLUMBING_KWARGS:
                    continue
                raw |= _roots(kw.value)
            influence |= _expand_all(raw, table)

        missing = sorted(r for r in influence if not _covers(covered, r))
        if missing:
            anchor = key_calls[0]
            yield self.finding(
                project,
                module=module,
                line=anchor.lineno,
                col=anchor.col_offset,
                message=(
                    "checkpoint job key omits parameters that influence "
                    "the profiled stream: " + ", ".join(missing)
                ),
                qualname=qualname,
            )

    def _coverage(self, project: ProjectContext, arg: ast.AST) -> set[str]:
        """Roots covered by one ``checkpoint_job_key`` argument."""
        # ``spec.profile_params()``-style key methods: cover the
        # receiver attributes the resolved method actually reads.
        if isinstance(arg, ast.Call) and isinstance(arg.func, ast.Attribute):
            receiver = _dotted(arg.func.value)
            infos = project.index.functions_named(arg.func.attr)
            if receiver is not None and infos:
                reads: set[str] = set()
                for info in infos:
                    reads |= {f"{receiver}.{attr}" for attr in info.self_read}
                if reads:
                    return reads
            return _roots(arg)
        if isinstance(arg, ast.Dict):
            out: set[str] = set()
            for value in arg.values:
                if value is not None:
                    out |= self._coverage(project, value)
            return out
        return _roots(arg)
