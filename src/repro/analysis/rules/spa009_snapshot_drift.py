"""SPA009: snapshot-state drift.

A class participating in the checkpoint protocol (it defines both
``snapshot()`` and ``restore()``, directly or through a base) carries
mutable state that the protocol never round-trips: an attribute is
mutated in place or bound to a mutable container by some method, but
``restore()`` never reinstates it.  A resumed instance then silently
continues from stale (usually empty) state — exactly the failure mode
a fresh-instance round-trip test cannot catch, because right after
construction the drifting attribute still holds its initial value.

Two shapes are flagged:

* ``snapshot()`` reads the attribute but ``restore()`` never assigns
  it — saved, never restored;
* neither method touches it — fully invisible to the protocol.

Two exemptions keep the rule honest:

* an attribute that ``restore()`` *does* assign, even when
  ``snapshot()`` never reads it — derived caches legitimately skip the
  payload and are rebuilt on restore;
* an attribute bound in ``__init__`` straight from a constructor
  parameter (``self._record = record``) and never rebound to a fresh
  container — an *injected collaborator* whose lifecycle belongs to
  the caller, not to the snapshot payload.

Scope is product code (``repro.*``); test doubles that stub the
protocol are not held to it.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.index import ClassInfo, FunctionInfo, ModuleIndex
from repro.analysis.project import (
    ProjectContext,
    ProjectRule,
    register_project_rule,
)


def _protocol_reach(
    project: ProjectContext,
    mi: ModuleIndex,
    cls: ClassInfo,
    fn: FunctionInfo,
    field: str,
) -> frozenset[str]:
    """Attributes ``fn`` touches (per ``field``), helpers one level deep."""
    out: set[str] = set(getattr(fn, field))
    for helper in fn.self_calls:
        info = project.index.method(mi, cls, helper)
        if info is not None:
            out.update(getattr(info, field))
    return frozenset(out)


@register_project_rule
class SnapshotStateDrift(ProjectRule):
    id = "SPA009"
    name = "snapshot-state-drift"
    rationale = (
        "Mutable state outside the snapshot()/restore() round-trip makes "
        "a resumed run silently diverge from an uninterrupted one."
    )
    hint = (
        "serialize the attribute in snapshot() and reassign it in "
        "restore(), or rebuild it explicitly in restore() if it is "
        "derived state"
    )

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        for module, mi in sorted(project.index.modules.items()):
            if not module.startswith("repro."):
                continue
            for cname in sorted(mi.classes):
                cls = mi.classes[cname]
                snap = project.index.method(mi, cls, "snapshot")
                rest = project.index.method(mi, cls, "restore")
                if snap is None or rest is None:
                    continue
                reads = _protocol_reach(project, mi, cls, snap, "self_read")
                restored = _protocol_reach(
                    project, mi, cls, rest, "self_assign"
                ) | _protocol_reach(project, mi, cls, rest, "self_mutate")

                # Mutable state over the whole base chain, keyed by the
                # method (and module) that first establishes it.
                state: dict[str, tuple[str, str, int]] = {}
                injected: set[str] = set()
                rebound: set[str] = set()
                for omi, ocls in project.index.base_chain(mi, cls):
                    for mname in sorted(ocls.methods):
                        if mname in ("snapshot", "restore"):
                            continue
                        fn = ocls.methods[mname]
                        if mname == "__init__":
                            injected.update(fn.self_param_assign)
                        rebound.update(fn.self_mutable_assign)
                        for table in (fn.self_mutable_assign, fn.self_mutate):
                            for attr, lineno in sorted(table.items()):
                                if attr.startswith("__"):
                                    continue
                                state.setdefault(
                                    attr, (omi.module, fn.qualname, lineno)
                                )

                for attr in sorted(state):
                    if attr in restored:
                        continue
                    if attr in injected and attr not in rebound:
                        # Bound straight from a constructor parameter and
                        # never replaced with a fresh container: an
                        # injected collaborator the caller owns.
                        continue
                    owner_module, qualname, lineno = state[attr]
                    if attr in reads:
                        detail = (
                            "snapshot() serializes it but restore() never "
                            "assigns it back"
                        )
                    else:
                        detail = "neither snapshot() nor restore() touches it"
                    yield self.finding(
                        project,
                        module=owner_module,
                        line=lineno,
                        message=(
                            f"mutable state 'self.{attr}' of {cname} drifts "
                            f"across snapshot/restore: {detail}"
                        ),
                        qualname=qualname,
                    )
