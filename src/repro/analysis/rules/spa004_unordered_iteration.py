"""SPA004: no unordered iteration feeding artifacts.

Python ``set`` iteration order depends on insertion history and hash
randomisation; ``dict`` order on insertion order.  When such an
iteration flows into an artifact — a cache-key hash, a serialized
manifest, a feature vector — two semantically identical runs produce
different bytes and the content-addressed store fragments (or worse,
parity tests compare arrays built in different orders).

Full data-flow tracking is out of scope for an AST lint, so the rule is
scoped by *context*: inside functions, classes or modules whose names
mark them as artifact-producing (``hash``, ``canonical``, ``manifest``,
``serial``, ``export``, ``feature``, ``fingerprint``, ``key_for``,
``json``, ``vector``), it flags ``for`` loops and comprehensions that
iterate directly over a set expression or a ``dict`` view
(``.keys()`` / ``.values()`` / ``.items()``) without an ordering
wrapper.  Comprehensions consumed by an order-insensitive reducer
(``sorted``, ``set``, ``sum``, ``min``, ``max``, ``any``, ``all``,
``Counter``) are not flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import ModuleContext, Rule, register_rule
from repro.analysis.findings import Finding

_SENSITIVE_MARKERS = (
    "hash",
    "canonical",
    "manifest",
    "serial",
    "export",
    "feature",
    "fingerprint",
    "key_for",
    "json",
    "vector",
)

_DICT_VIEWS = frozenset({"keys", "values", "items"})

_ORDER_INSENSITIVE_CONSUMERS = frozenset(
    {"sorted", "set", "frozenset", "sum", "min", "max", "any", "all", "len", "Counter"}
)

_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)


def _unordered_kind(node: ast.AST) -> str | None:
    """Describe ``node`` if it is a syntactically unordered iterable."""
    if isinstance(node, ast.Set) or isinstance(node, ast.SetComp):
        return "set literal"
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
            return f"{node.func.id}(...)"
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _DICT_VIEWS
            and not node.args
        ):
            return f".{node.func.attr}() view"
    return None


@register_rule
class UnorderedIterationRule(Rule):
    id = "SPA004"
    name = "unordered-iteration-into-artifacts"
    rationale = (
        "Set/dict iteration order is an accident of insertion and "
        "hashing; artifacts built from it are not byte-stable across "
        "runs."
    )
    hint = "wrap the iterable in sorted(...) with an explicit key"

    def _sensitive(self, ctx: ModuleContext, node: ast.AST) -> bool:
        basename = ctx.module.rpartition(".")[2].lower()
        # Test names (test_export, TestExportSimpoints, conftest) say
        # what they *test*, not that their own loops build artifacts.
        names = [
            n.lower()
            for n in ctx.enclosing_names(node)
            if not n.lower().startswith("test")
        ]
        if not (basename.startswith("test_") or basename == "conftest"):
            names.append(basename)
        return any(marker in name for marker in _SENSITIVE_MARKERS for name in names)

    def _consumed_unordered(self, ctx: ModuleContext, comp: ast.AST) -> bool:
        """True when a comprehension's result order is irrelevant."""
        if isinstance(comp, ast.SetComp):
            return True  # produces a set: order was never meaningful
        parent = ctx.parent(comp)
        if isinstance(parent, ast.Call) and comp in parent.args:
            dotted = ctx.resolve_call(parent) or ""
            name = dotted.rpartition(".")[2]
            if name in _ORDER_INSENSITIVE_CONSUMERS:
                return True
        return False

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ctx.walk():
            iterables: list[tuple[ast.AST, ast.AST]] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iterables.append((node, node.iter))
            elif isinstance(node, _COMPREHENSIONS):
                if self._consumed_unordered(ctx, node):
                    continue
                for gen in node.generators:
                    iterables.append((node, gen.iter))
            for owner, it in iterables:
                kind = _unordered_kind(it)
                if kind is None:
                    continue
                if not self._sensitive(ctx, owner):
                    continue
                where = ctx.enclosing_names(owner)
                scope = where[0] if where else ctx.module
                yield self.finding(
                    ctx,
                    it,
                    f"iteration over {kind} in artifact-sensitive scope "
                    f"{scope!r} has no stable order",
                )
