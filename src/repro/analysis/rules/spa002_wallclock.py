"""SPA002: no wall-clock reads inside the deterministic packages.

``repro.core``, ``repro.jvm``, ``repro.spark`` and ``repro.hadoop``
simulate time — every timestamp they handle is derived from instruction
counts and the seeded machine model.  A real clock read
(``time.time()``, ``datetime.now()``, ``perf_counter()``) in those
packages leaks host timing into simulated state, which is exactly the
nondeterminism the replay-parity tests cannot detect (it varies run to
run, not seed to seed).  Instrumentation modules are exempt: measuring
how long a *stage of this tool* took is their job (``repro.runtime``
is outside the scope entirely for the same reason).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import ModuleContext, Rule, register_rule
from repro.analysis.findings import Finding

DETERMINISTIC_PACKAGES = (
    "repro.core",
    "repro.jvm",
    "repro.spark",
    "repro.hadoop",
)

# Module basename substrings exempt from the rule (self-measurement).
_EXEMPT_MODULE_MARKERS = ("instrument",)

_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.clock_gettime",
        "time.clock_gettime_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


@register_rule
class WallClockRule(Rule):
    id = "SPA002"
    name = "wall-clock-in-deterministic-path"
    rationale = (
        "Host clock reads inside the simulated pipeline leak real time "
        "into simulated state; replay stops being bit-identical run to "
        "run."
    )
    hint = (
        "derive timestamps from instruction counts / the machine model, "
        "or move the measurement into repro.runtime.instrument"
    )

    def _in_scope(self, ctx: ModuleContext) -> bool:
        module = ctx.module
        if not any(
            module == pkg or module.startswith(pkg + ".")
            for pkg in DETERMINISTIC_PACKAGES
        ):
            return False
        basename = module.rpartition(".")[2]
        return not any(marker in basename for marker in _EXEMPT_MODULE_MARKERS)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not self._in_scope(ctx):
            return
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.resolve_call(node)
            if dotted in _CLOCK_CALLS:
                yield self.finding(
                    ctx,
                    node,
                    f"wall-clock read {dotted}() inside deterministic "
                    f"package {ctx.module}",
                )
