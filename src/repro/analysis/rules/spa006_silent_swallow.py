"""SPA006: no silently swallowed broad exceptions.

A robustness substrate lives or dies by its error discipline: every
degradation must be *explicit* — recorded in a
:class:`~repro.faults.report.FaultReport`, surfaced as a warning, or at
minimum narrowed to the exception it actually expects.  A bare
``except:``/``except Exception:`` whose body is just ``pass`` destroys
evidence: a fault fires, nothing records it, and the replay-parity
tests see a clean run that silently computed something else.

Narrow handlers (``except OSError: pass`` around a best-effort unlink)
are fine — the swallowed class documents the expectation.  A broad
swallow that really is intentional must say so with an inline
``# simprof: ignore[SPA006] -- reason`` annotation, which makes the
degradation site auditable.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import ModuleContext, Rule, register_rule
from repro.analysis.findings import Finding

#: Exception names broad enough that swallowing them hides real faults.
_BROAD_NAMES = frozenset(
    {"Exception", "BaseException", "builtins.Exception", "builtins.BaseException"}
)


def _is_broad(ctx: ModuleContext, handler: ast.ExceptHandler) -> bool:
    """True when the handler catches Exception/BaseException/everything."""
    if handler.type is None:  # bare ``except:``
        return True
    types: list[ast.expr]
    if isinstance(handler.type, ast.Tuple):
        types = list(handler.type.elts)
    else:
        types = [handler.type]
    return any((ctx.resolve(t) or "") in _BROAD_NAMES for t in types)


def _is_silent(handler: ast.ExceptHandler) -> bool:
    """True when the body does nothing (only ``pass``/``...``)."""
    for stmt in handler.body:
        if isinstance(stmt, ast.Pass):
            continue
        if (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value is Ellipsis
        ):
            continue
        return False
    return True


@register_rule
class SilentSwallowRule(Rule):
    id = "SPA006"
    name = "silent-broad-exception-swallow"
    rationale = (
        "A broad except clause with an empty body discards faults "
        "without recording them; degradation must be explicit "
        "(FaultReport entry, warning, or a narrowed exception type)."
    )
    hint = (
        "narrow the exception type, record the failure (FaultReport / "
        "warning / counter), or annotate the intentional degradation "
        "with `# simprof: ignore[SPA006] -- reason`"
    )

    def _in_scope(self, ctx: ModuleContext) -> bool:
        return ctx.module == "repro" or ctx.module.startswith("repro.")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not self._in_scope(ctx):
            return
        for node in ctx.walk():
            if not isinstance(node, ast.ExceptHandler):
                continue
            if _is_broad(ctx, node) and _is_silent(node):
                caught = (
                    "bare except"
                    if node.type is None
                    else f"except {ast.unparse(node.type)}"
                )
                yield self.finding(
                    ctx,
                    node,
                    f"{caught} silently swallowed (body is only pass) in "
                    f"{ctx.module}",
                )
