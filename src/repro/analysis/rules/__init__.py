"""Built-in rules; importing this package registers all of them."""

from repro.analysis.rules.spa001_global_rng import GlobalRngRule
from repro.analysis.rules.spa002_wallclock import WallClockRule
from repro.analysis.rules.spa003_seed_discipline import SeedDisciplineRule
from repro.analysis.rules.spa004_unordered_iteration import UnorderedIterationRule
from repro.analysis.rules.spa005_docstring_drift import DocstringDriftRule
from repro.analysis.rules.spa006_silent_swallow import SilentSwallowRule
from repro.analysis.rules.spa007_quadratic_distance import QuadraticDistanceRule
from repro.analysis.rules.spa008_columnar import ColumnarIterationRule

__all__ = [
    "GlobalRngRule",
    "WallClockRule",
    "SeedDisciplineRule",
    "UnorderedIterationRule",
    "DocstringDriftRule",
    "SilentSwallowRule",
    "QuadraticDistanceRule",
    "ColumnarIterationRule",
]
