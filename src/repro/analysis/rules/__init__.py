"""Built-in rules; importing this package registers all of them.

SPA001–SPA008 are per-module rules (:class:`~repro.analysis.base.Rule`);
SPA009–SPA013 are whole-program rules
(:class:`~repro.analysis.project.ProjectRule`) that run in pass 2 with
cross-module context.
"""

from repro.analysis.rules.spa001_global_rng import GlobalRngRule
from repro.analysis.rules.spa002_wallclock import WallClockRule
from repro.analysis.rules.spa003_seed_discipline import SeedDisciplineRule
from repro.analysis.rules.spa004_unordered_iteration import UnorderedIterationRule
from repro.analysis.rules.spa005_docstring_drift import DocstringDriftRule
from repro.analysis.rules.spa006_silent_swallow import SilentSwallowRule
from repro.analysis.rules.spa007_quadratic_distance import QuadraticDistanceRule
from repro.analysis.rules.spa008_columnar import ColumnarIterationRule
from repro.analysis.rules.spa009_snapshot_drift import SnapshotStateDrift
from repro.analysis.rules.spa010_checkpoint_key import CheckpointKeyCompleteness
from repro.analysis.rules.spa011_entropy_taint import EntropyTaint
from repro.analysis.rules.spa012_resource_lifecycle import SharedResourceLifecycle
from repro.analysis.rules.spa013_stage_inputs import UndeclaredStageInput

__all__ = [
    "GlobalRngRule",
    "WallClockRule",
    "SeedDisciplineRule",
    "UnorderedIterationRule",
    "DocstringDriftRule",
    "SilentSwallowRule",
    "QuadraticDistanceRule",
    "ColumnarIterationRule",
    "SnapshotStateDrift",
    "CheckpointKeyCompleteness",
    "EntropyTaint",
    "SharedResourceLifecycle",
    "UndeclaredStageInput",
]
