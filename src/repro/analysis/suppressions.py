"""Inline suppression comments: ``# simprof: ignore[RULE, ...]``.

A finding is suppressed when its line — or the immediately preceding
line, if that line is a comment — carries a marker naming its rule (or
naming no rule, which suppresses everything on that line).  Anything
after ``--`` is a free-form justification and is encouraged::

    t0 = time.perf_counter()  # simprof: ignore[SPA002] -- benchmark harness

Suppressions are deliberately line-scoped: there is no file- or
block-level escape hatch, so every grandfathered violation stays
visible next to the code it excuses (use the baseline file for bulk
grandfathering instead).
"""

from __future__ import annotations

import re

__all__ = ["SuppressionIndex", "parse_suppressions"]

_MARKER = re.compile(r"#\s*simprof:\s*ignore(?:\[([A-Za-z0-9_,\s]*)\])?")


class SuppressionIndex:
    """Per-line suppression lookup for one source file."""

    def __init__(self, by_line: dict[int, frozenset[str]]) -> None:
        self._by_line = by_line

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """True if ``rule_id`` is ignored at 1-based ``line``."""
        for candidate in (line, line - 1):
            rules = self._by_line.get(candidate)
            if rules is None:
                continue
            # A bare ``ignore`` (empty set) silences every rule, but a
            # marker on the *previous* line only applies when that line
            # is a standalone comment (tracked at parse time via the
            # sentinel below).
            if candidate == line - 1 and "\x00standalone" not in rules:
                continue
            if not (rules - {"\x00standalone"}) or rule_id in rules:
                return True
        return False

    def __len__(self) -> int:
        return len(self._by_line)


def parse_suppressions(lines: list[str]) -> SuppressionIndex:
    """Scan raw source lines for suppression markers."""
    by_line: dict[int, frozenset[str]] = {}
    for i, text in enumerate(lines, start=1):
        match = _MARKER.search(text)
        if not match:
            continue
        spec = match.group(1)
        rules = (
            frozenset(r.strip().upper() for r in spec.split(",") if r.strip())
            if spec
            else frozenset()
        )
        if text.lstrip().startswith("#"):
            rules |= {"\x00standalone"}
        by_line[i] = rules
    return SuppressionIndex(by_line)
