"""Inline suppression comments: ``# simprof: ignore[RULE, ...]``.

A finding is suppressed when its line — or the immediately preceding
line, if that line is a standalone comment — carries a marker naming its
rule (or naming no rule, which suppresses everything on that line).
Anything after ``--`` is a free-form justification and is encouraged::

    t0 = time.perf_counter()  # simprof: ignore[SPA002] -- benchmark harness

Markers are recognised only in genuine comments (the source is
tokenized), so a marker quoted inside a docstring or string literal is
documentation, not a suppression.  Each index also tracks which of its
suppressions actually matched a finding, feeding the checker's
unused-suppression report so stale ignores do not accumulate.

Suppressions are deliberately line-scoped: there is no file- or
block-level escape hatch, so every grandfathered violation stays
visible next to the code it excuses (use the baseline file for bulk
grandfathering instead).  Project-level (cross-module) findings are
suppressed the same way, at the line the finding anchors to.
"""

from __future__ import annotations

import io
import re
import tokenize

__all__ = ["SuppressionIndex", "parse_suppressions"]

_MARKER = re.compile(r"#\s*simprof:\s*ignore(?:\[([A-Za-z0-9_,\s-]*)\])?")
_STANDALONE = "\x00standalone"


class SuppressionIndex:
    """Per-line suppression lookup for one source file."""

    def __init__(self, by_line: dict[int, frozenset[str]]) -> None:
        self._by_line = by_line
        #: Marker lines that suppressed at least one finding this run.
        self.used: set[int] = set()

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """True if ``rule_id`` is ignored at 1-based ``line``."""
        for candidate in (line, line - 1):
            rules = self._by_line.get(candidate)
            if rules is None:
                continue
            # A bare ``ignore`` (empty set) silences every rule, but a
            # marker on the *previous* line only applies when that line
            # is a standalone comment (tracked at parse time via the
            # sentinel below).
            if candidate == line - 1 and _STANDALONE not in rules:
                continue
            if not (rules - {_STANDALONE}) or rule_id in rules:
                self.used.add(candidate)
                return True
        return False

    def entries(self) -> dict[int, tuple[str, ...]]:
        """Marker line -> sorted rule ids (empty tuple = bare ignore)."""
        return {
            line: tuple(sorted(rules - {_STANDALONE}))
            for line, rules in sorted(self._by_line.items())
        }

    def unused(self) -> list[tuple[int, tuple[str, ...]]]:
        """Markers that suppressed nothing, as (line, rules) pairs."""
        return [
            (line, rules)
            for line, rules in self.entries().items()
            if line not in self.used
        ]

    def mark_used(self, lines) -> None:
        """Record externally-observed usage (cached or project passes)."""
        self.used.update(int(line) for line in lines)

    def __len__(self) -> int:
        return len(self._by_line)


def _marker_rules(spec: str | None) -> frozenset[str]:
    if not spec:
        return frozenset()
    return frozenset(r.strip().upper() for r in spec.split(",") if r.strip())


def parse_suppressions(lines: list[str]) -> SuppressionIndex:
    """Scan source lines for suppression markers (comments only).

    Tokenizes the joined source so markers embedded in string literals
    are ignored; falls back to a raw line scan when the source does not
    tokenize (the AST parse already succeeded, so this is rare — e.g.
    fixture fragments with exotic line endings).
    """
    by_line: dict[int, frozenset[str]] = {}
    source = "\n".join(lines)
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        tokens = None
    if tokens is not None:
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _MARKER.search(tok.string)
            if not match:
                continue
            rules = _marker_rules(match.group(1))
            lineno = tok.start[0]
            if 1 <= lineno <= len(lines) and lines[lineno - 1].lstrip().startswith("#"):
                rules |= {_STANDALONE}
            by_line[lineno] = rules
        return SuppressionIndex(by_line)
    for i, text in enumerate(lines, start=1):
        match = _MARKER.search(text)
        if not match:
            continue
        rules = _marker_rules(match.group(1))
        if text.lstrip().startswith("#"):
            rules |= {_STANDALONE}
        by_line[i] = rules
    return SuppressionIndex(by_line)
