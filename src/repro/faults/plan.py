"""The fault plan: a serialisable, seed-deterministic set of knobs.

Determinism contract
--------------------
Every injection decision draws from its own freshly-derived generator::

    default_rng(SeedSequence([plan.seed, FAULTS_KEY, crc32(site), *coords]))

There is no shared fault RNG stream, so decisions are independent of
the *order* hook points fire in — two runs with the same plan make the
same calls and therefore inject the same faults, and adding a new hook
point never perturbs existing ones.  ``FAULTS_KEY`` is the CRC-32 of
the literal ``b"faults"`` (``SeedSequence`` entries must be
non-negative integers, so the spelled-out domain string is folded to
one).

A *null* plan (every rate zero) is treated everywhere as "no plan":
hook points short-circuit before deriving any RNG, so the output is
byte-identical to a run without fault injection at all.
"""

from __future__ import annotations

import dataclasses
import json
import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

__all__ = ["FAULTS_KEY", "FaultPlan", "site_rng"]

#: Integer domain tag for SeedSequence([seed, FAULTS_KEY, ...]) spawns.
FAULTS_KEY = zlib.crc32(b"faults")

_RATE_FIELDS = (
    "task_failure_rate",
    "straggler_rate",
    "gc_pause_rate",
    "counter_glitch_rate",
    "drop_rate",
    "duplicate_rate",
    "reorder_rate",
)


def site_rng(seed: int, site: str, *coords: int) -> np.random.Generator:
    """Fresh generator for one injection decision at one hook point."""
    folded = [c & 0x7FFFFFFF for c in coords]
    entropy = [seed & 0xFFFFFFFF, FAULTS_KEY, zlib.crc32(site.encode())]
    return np.random.default_rng(np.random.SeedSequence(entropy + folded))


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """Knobs for every fault class, plus the seed that replays them.

    Rates are per-opportunity probabilities: per task attempt for the
    cluster faults, per :class:`~repro.jvm.stream.SegmentBatch` for the
    stream faults, per trace segment for counter glitches.
    """

    seed: int = 0
    # Cluster faults (spark scheduler / hadoop runtime hook points).
    task_failure_rate: float = 0.0
    straggler_rate: float = 0.0
    straggler_slowdown: float = 1.5
    gc_pause_rate: float = 0.0
    gc_pause_inst: float = 10e6
    # Counter perturbations (repro.jvm.perf arithmetic).
    counter_glitch_rate: float = 0.0
    counter_glitch_scale: float = 0.25
    # Stream faults (SegmentBatch drop / duplicate / reorder).
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    reorder_rate: float = 0.0
    reorder_depth: int = 3

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate!r}")
        if self.straggler_slowdown < 1.0:
            raise ValueError("straggler_slowdown must be >= 1.0")
        if self.gc_pause_inst < 0 or self.counter_glitch_scale < 0:
            raise ValueError("magnitudes must be non-negative")
        if self.reorder_depth < 1:
            raise ValueError("reorder_depth must be >= 1")

    # -- activity predicates (hook points short-circuit on these) -----

    @property
    def cluster_active(self) -> bool:
        return (
            self.task_failure_rate > 0
            or self.straggler_rate > 0
            or self.gc_pause_rate > 0
        )

    @property
    def stream_active(self) -> bool:
        return (
            self.drop_rate > 0
            or self.duplicate_rate > 0
            or self.reorder_rate > 0
        )

    @property
    def perf_active(self) -> bool:
        return self.counter_glitch_rate > 0

    @property
    def is_null(self) -> bool:
        """True when the plan injects nothing at all."""
        return not (
            self.cluster_active or self.stream_active or self.perf_active
        )

    # -- serialisation (``simprof profile --faults plan.json``) -------

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        names = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - names
        if unknown:
            raise ValueError(
                f"unknown FaultPlan fields: {sorted(unknown)}"
            )
        return cls(**data)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json() + "\n", encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path) -> "FaultPlan":
        return cls.from_json(Path(path).read_text(encoding="utf-8"))

    @classmethod
    def uniform(cls, rate: float, *, seed: int = 0) -> "FaultPlan":
        """One rate across every fault class — the ext_faults sweep axis."""
        return cls(
            seed=seed,
            task_failure_rate=rate,
            straggler_rate=rate,
            gc_pause_rate=rate,
            drop_rate=rate,
            duplicate_rate=rate,
            reorder_rate=rate,
        )
