"""Cluster-level fault injection: task failures, stragglers, GC pauses.

The simulated Spark scheduler and Hadoop runtime consult a
:class:`ClusterFaultInjector` at their task-launch hook points.  Per
task attempt the injector draws one decision vector from a site RNG
keyed by ``(framework, stage, split)`` — independent of execution
order, so the same plan injects the same faults no matter how waves
are scheduled.

Recovery semantics (what keeps workload *results* unchanged):

* **task failure** — the substrate runs a *doomed attempt* first: it
  re-derives the partition (Spark recomputes lineage, Hadoop re-reads
  the input split) and burns real trace work, but commits nothing — no
  shuffle blocks, no output files, no counter merges.  The real
  attempt then runs exactly as it would have, so outputs are
  byte-identical to a fault-free run.
* **straggler** — extra stall instructions proportional to the task's
  own retired work are appended to the task's trace (slow node, not a
  wrong answer).
* **GC pause** — one long stop-the-world collection is appended to the
  task (perturbs the profile, never the data).

:func:`perturb_trace` is the batch-path counterpart for counter
glitches: it rewrites a materialised :class:`~repro.jvm.job.JobTrace`
through :func:`repro.jvm.perf.apply_counter_glitches`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.plan import FaultPlan, site_rng
from repro.faults.report import FaultReport
from repro.jvm.job import JobTrace
from repro.jvm.perf import apply_counter_glitches

__all__ = ["ClusterFaultInjector", "TaskFaults", "perturb_trace"]


@dataclass(frozen=True, slots=True)
class TaskFaults:
    """The fault decision vector for one task attempt.

    ``n_failures`` doomed attempts precede the real one;
    ``straggler_factor`` > 1 means the task takes that multiple of its
    own work in stall time; ``wasted_fraction`` is how far a doomed
    attempt got before dying (fraction of the task's compute cost).
    """

    n_failures: int = 0
    straggler_factor: float = 0.0
    gc_pause: bool = False
    wasted_fraction: float = 0.5

    @property
    def any(self) -> bool:
        return bool(self.n_failures or self.straggler_factor or self.gc_pause)


class ClusterFaultInjector:
    """Per-run fault oracle for one simulated cluster.

    Holds the plan, the framework tag (site-key prefix, so Spark and
    Hadoop decisions never alias), and the run's
    :class:`~repro.faults.report.FaultReport`.
    """

    def __init__(self, plan: FaultPlan, framework: str) -> None:
        self.plan = plan
        self.framework = framework
        self.report = FaultReport()

    def task_faults(self, stage_id: int, split: int) -> TaskFaults:
        """Decide the faults for task ``split`` of stage ``stage_id``."""
        plan = self.plan
        if not plan.cluster_active:
            return TaskFaults()
        rng = site_rng(plan.seed, f"{self.framework}.task", stage_id, split)
        u = rng.random(4)
        return TaskFaults(
            n_failures=1 if u[0] < plan.task_failure_rate else 0,
            straggler_factor=(
                plan.straggler_slowdown if u[1] < plan.straggler_rate else 0.0
            ),
            gc_pause=u[2] < plan.gc_pause_rate,
            wasted_fraction=0.25 + 0.5 * u[3],
        )


def perturb_trace(
    job: JobTrace, plan: FaultPlan
) -> tuple[JobTrace, FaultReport]:
    """Apply counter-glitch perturbations to a materialised trace.

    Returns a new :class:`JobTrace` (shared registry/tables, glitched
    thread traces) plus the report of what was perturbed;
    ``meta["fault_report"]`` on the copy carries the same report.  With
    glitching inactive the original job is returned untouched.
    """
    report = FaultReport()
    if not plan.perf_active:
        return job, report
    traces = []
    for t in job.traces:
        rng = site_rng(plan.seed, "perf.glitch", t.thread_id)
        glitched, n = apply_counter_glitches(
            t,
            rate=plan.counter_glitch_rate,
            scale=plan.counter_glitch_scale,
            rng=rng,
        )
        if n:
            report.record(
                "perf",
                "glitch",
                "absorbed",
                thread_id=t.thread_id,
                index=n,
                detail=f"{n} segments rescaled",
            )
        traces.append(glitched)
    out = JobTrace(
        framework=job.framework,
        workload=job.workload,
        input_name=job.input_name,
        registry=job.registry,
        stack_table=job.stack_table,
        machine=job.machine,
        traces=traces,
        stages=list(job.stages),
        meta=dict(job.meta),
    )
    FaultReport.merged_meta(out.meta, report)
    return out, report
