"""Deterministic fault injection with recovery semantics.

The fault model mirrors what SimProf would face on a real cluster:
executors straggle, tasks fail and are re-executed, GC pauses land in
the middle of a phase, hardware counters glitch, and the profiling
stream itself drops, duplicates, or reorders events.  Every fault is
drawn from a :class:`~repro.faults.plan.FaultPlan` seeded via
``SeedSequence([plan.seed, FAULTS_KEY, site, *coords])`` so an
identical plan replays bit-identically, and a null plan (all rates
zero) is a complete no-op — it consumes no randomness and leaves the
fault-free output byte-for-byte unchanged.

Layers:

``plan``
    :class:`FaultPlan` (the serialisable knob set) and ``site_rng``
    (the per-decision RNG derivation).
``report``
    :class:`FaultEvent` / :class:`FaultReport` — the audit trail every
    recovery path must leave behind.
``stream``
    Producer-side :func:`inject_stream_faults` and the consumer-side
    :class:`EventGuard` that sequences, dedupes, repairs, or degrades.
``inject``
    :class:`ClusterFaultInjector` (task failures / stragglers / GC
    pauses inside the simulated Spark + Hadoop clusters) and
    :func:`perturb_trace` (batch-trace counter glitches).
``chaos``
    :func:`kill_and_restore` — seeded kill-and-restore campaigns that
    kill checkpointing jobs at deterministic stream offsets and verify
    the resumed result byte-equals an uninterrupted run.
"""

from repro.faults.chaos import (
    ChaosAttempt,
    ChaosOutcome,
    ChaosPlan,
    kill_and_restore,
)
from repro.faults.inject import ClusterFaultInjector, TaskFaults, perturb_trace
from repro.faults.plan import FAULTS_KEY, FaultPlan, site_rng
from repro.faults.report import FaultEvent, FaultReport
from repro.faults.stream import EventGuard, ReplayBuffer, inject_stream_faults

__all__ = [
    "FAULTS_KEY",
    "ChaosAttempt",
    "ChaosOutcome",
    "ChaosPlan",
    "ClusterFaultInjector",
    "EventGuard",
    "FaultEvent",
    "FaultPlan",
    "FaultReport",
    "ReplayBuffer",
    "TaskFaults",
    "inject_stream_faults",
    "kill_and_restore",
    "perturb_trace",
    "site_rng",
]
