"""Stream-level faults and the recovery guard that absorbs them.

Producer side — :func:`inject_stream_faults` wraps a
:class:`~repro.jvm.stream.TraceStream` and, per sequenced
:class:`~repro.jvm.stream.SegmentBatch`, deterministically drops,
duplicates, or reorders it (decision RNG keyed by ``(thread, seq)``,
so the same plan replays bit-identically regardless of interleaving).
Every batch the producer ever emitted is retained in a bounded
:class:`ReplayBuffer` exposed as ``stream.replay`` — the stand-in for a
real agent's "re-request the missing packet" channel.

Consumer side — :class:`EventGuard` sits between any stream and its
consumer (:class:`~repro.core.profiler.StreamingProfiler`,
:meth:`~repro.jvm.job.JobTrace.from_stream`) and restores per-thread
batch order:

* duplicate (``seq < expected``): dropped, recorded as ``deduped``;
* out-of-order (``seq > expected``): held back until the gap fills,
  recorded as ``reordered``;
* corrupt (checksum mismatch): re-fetched from the replay buffer when
  one is attached (``replayed``), otherwise discarded (``degraded``);
* gap (hold-back window overflow, or end of stream): repaired from the
  replay buffer (``replayed``) or conceded (``degraded``).

Unsequenced batches (``seq == -1``) pass through untouched, so legacy
streams behave exactly as before.  When nothing anomalous happened the
guard's report stays empty and downstream metadata is byte-identical
to an unguarded run.

Everything here operates on the columnar batch payload: verification
is one :func:`~repro.jvm.segments.segment_checksum` CRC pass over the
packed ``batch.data`` buffer (bit-identical to the historical
per-segment pack loop for any content, so mixed old/new-format streams
verify through this one path), and batches are held back, replayed,
and re-emitted by reference — the guard never materialises per-segment
objects.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Iterator

import numpy as np

from repro.faults.plan import FaultPlan, site_rng
from repro.faults.report import FaultReport
from repro.jvm.stream import (
    JobEnd,
    SegmentBatch,
    TraceEvent,
    TraceStream,
    segment_checksum,
)

__all__ = ["EventGuard", "ReplayBuffer", "inject_stream_faults"]

_STREAM_SITE = "stream"


class ReplayBuffer:
    """Bounded per-thread window of recently emitted batch payloads.

    Models the retransmission buffer a real profiling agent keeps: a
    consumer that detects a gap or a corrupt payload can re-request a
    batch by ``(thread_id, seq)`` as long as it is still inside the
    window.  Bounded so the streaming memory guarantee survives.

    Entries are zero-copy columnar refs — the packed ``SEGMENT_DTYPE``
    array and its checksum, never a :class:`SegmentBatch` object copy —
    so buffering a batch costs two machine words, shares the producer's
    (possibly shared-memory) buffer, and never materialises the lazy
    per-segment object cache.  :meth:`fetch` rebuilds a fresh batch
    around the ref on demand.  Consumers that track commit progress
    call :meth:`release` to drop refs they can no longer request,
    mirroring the shm channel's one-event reclamation lag.
    """

    def __init__(self, window: int = 512) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        # thread → seq → (packed payload ref, checksum); seq-ascending
        # because producers emit (and therefore store) in seq order.
        self._batches: dict[int, OrderedDict[int, tuple[np.ndarray, int]]] = {}

    def store(self, batch: SegmentBatch) -> None:
        per_thread = self._batches.setdefault(batch.thread_id, OrderedDict())
        per_thread[batch.seq] = (batch.data, batch.checksum)
        while len(per_thread) > self.window:
            per_thread.popitem(last=False)

    def fetch(self, thread_id: int, seq: int) -> SegmentBatch | None:
        entry = self._batches.get(thread_id, {}).get(seq)
        if entry is None:
            return None
        data, checksum = entry
        return SegmentBatch(thread_id, data, seq=seq, checksum=checksum)

    def release(self, thread_id: int, upto_seq: int) -> int:
        """Drop refs with ``seq <= upto_seq``; returns how many.

        Called by the consumer once a sequence point is committed and
        past its reclamation lag — those payloads can never be
        re-requested, so holding the refs would only pin (possibly
        shared-memory) buffers.
        """
        per_thread = self._batches.get(thread_id)
        released = 0
        while per_thread:
            seq = next(iter(per_thread))
            if seq > upto_seq:
                break
            per_thread.popitem(last=False)
            released += 1
        return released

    def __len__(self) -> int:
        return sum(len(per_thread) for per_thread in self._batches.values())


def inject_stream_faults(
    stream: TraceStream, plan: FaultPlan, *, window: int = 512
) -> TraceStream:
    """Wrap ``stream`` with deterministic drop/duplicate/reorder faults.

    Returns a new :class:`TraceStream` whose ``replay`` attribute is
    the producer's :class:`ReplayBuffer` and whose ``fault_report``
    lists every injected fault.  A null plan returns the original
    stream object unchanged (true no-op).
    """
    if not plan.stream_active:
        return stream

    replay = ReplayBuffer(window)
    report = FaultReport()
    # True per-thread batch counts, filled as the wrapped stream is
    # consumed; the guard reads them at end of stream so even a dropped
    # *final* batch (no successor to reveal the gap) is detected.
    batch_counts: dict[int, int] = {}

    def events() -> Iterator[TraceEvent]:
        held: deque[list] = deque()  # [release_countdown, batch]

        def release_ready() -> Iterator[TraceEvent]:
            while held and held[0][0] <= 0:
                late = held.popleft()[1]
                yield late

        def tick() -> None:
            for slot in held:
                slot[0] -= 1

        for event in stream:
            if not isinstance(event, SegmentBatch) or event.seq < 0:
                if isinstance(event, JobEnd):
                    # Nothing may be held past the end of the run.
                    while held:
                        yield held.popleft()[1]
                yield event
                continue

            replay.store(event)
            batch_counts[event.thread_id] = event.seq + 1
            rng = site_rng(
                plan.seed, _STREAM_SITE, event.thread_id, event.seq
            )
            u_drop, u_dup, u_reorder = rng.random(3)
            if u_drop < plan.drop_rate:
                report.record(
                    _STREAM_SITE,
                    "drop",
                    "injected",
                    thread_id=event.thread_id,
                    index=event.seq,
                )
                continue
            tick()
            if u_reorder < plan.reorder_rate:
                depth = 1 + int(u_reorder / plan.reorder_rate * plan.reorder_depth)
                held.append([depth, event])
                report.record(
                    _STREAM_SITE,
                    "reorder",
                    "injected",
                    thread_id=event.thread_id,
                    index=event.seq,
                    detail=f"held {depth} batches",
                )
            else:
                yield event
                if u_dup < plan.duplicate_rate:
                    report.record(
                        _STREAM_SITE,
                        "duplicate",
                        "injected",
                        thread_id=event.thread_id,
                        index=event.seq,
                    )
                    yield event
            yield from release_ready()

    faulty = TraceStream(
        framework=stream.framework,
        workload=stream.workload,
        input_name=stream.input_name,
        registry=stream.registry,
        stack_table=stream.stack_table,
        machine=stream.machine,
        events=events(),
    )
    faulty.replay = replay
    faulty.fault_report = report
    faulty.batch_counts = batch_counts
    return faulty


class _ThreadState:
    __slots__ = ("expected", "pending")

    def __init__(self) -> None:
        self.expected = 0
        self.pending: dict[int, SegmentBatch] = {}


class EventGuard:
    """Sequence-checking, self-repairing view of a trace event stream.

    Iterate :meth:`events` instead of the raw stream — or, in push
    mode, construct with ``stream=None`` (or :meth:`bind` later) and
    feed events through :meth:`admit_event` / :meth:`finish`; batches
    come out deduplicated, in per-thread ``seq`` order,
    checksum-verified, with gaps repaired from ``stream.replay`` when
    available.  ``report`` holds the anomalies seen so far (empty on a
    clean stream).

    ``max_holdback`` bounds how many out-of-order batches per thread
    the guard buffers before declaring the missing one lost; it must
    exceed the producer's worst-case reorder depth (the injector's
    default is 3) for reordering to be absorbed losslessly.

    The guard is :class:`~repro.runtime.snapshot.Snapshotable`: the
    per-thread sequence numbers, held-back batches (as columnar
    payloads) and fault report round-trip through
    ``snapshot()``/``restore()``, so a checkpointed consumer resumes
    mid-repair bit-identically.
    """

    def __init__(self, stream=None, *, max_holdback: int = 64) -> None:
        if max_holdback <= 0:
            raise ValueError("max_holdback must be positive")
        self._stream = None
        self._replay: ReplayBuffer | None = None
        if stream is not None:
            self.bind(stream)
        self.max_holdback = max_holdback
        self.report = FaultReport()
        self._threads: dict[int, _ThreadState] = {}

    def bind(self, stream) -> "EventGuard":
        """Attach ``stream`` (its replay buffer and batch counts)."""
        self._stream = stream
        self._replay = getattr(stream, "replay", None)
        return self

    # -- verification ------------------------------------------------

    def _verified(self, batch: SegmentBatch) -> SegmentBatch | None:
        """Return a checksum-clean copy of ``batch`` or None if lost."""
        if segment_checksum(batch.data) == batch.checksum:
            return batch
        fresh = (
            self._replay.fetch(batch.thread_id, batch.seq)
            if self._replay is not None
            else None
        )
        if (
            fresh is not None
            and segment_checksum(fresh.data) == fresh.checksum
        ):
            self.report.record(
                _STREAM_SITE,
                "corrupt",
                "replayed",
                thread_id=batch.thread_id,
                index=batch.seq,
            )
            return fresh
        self.report.record(
            _STREAM_SITE,
            "corrupt",
            "degraded",
            thread_id=batch.thread_id,
            index=batch.seq,
            detail="checksum mismatch, no replay source",
        )
        return None

    def _fill_gap(self, thread_id: int) -> SegmentBatch | None:
        """Resolve the missing ``expected`` seq for ``thread_id``."""
        state = self._threads[thread_id]
        seq = state.expected
        state.expected += 1
        fresh = (
            self._replay.fetch(thread_id, seq)
            if self._replay is not None
            else None
        )
        if (
            fresh is not None
            and segment_checksum(fresh.data) == fresh.checksum
        ):
            self.report.record(
                _STREAM_SITE,
                "gap",
                "replayed",
                thread_id=thread_id,
                index=seq,
            )
            return fresh
        self.report.record(
            _STREAM_SITE,
            "gap",
            "degraded",
            thread_id=thread_id,
            index=seq,
            detail="batch lost, no replay source",
        )
        return None

    # -- event pump --------------------------------------------------

    def _admit(self, batch: SegmentBatch) -> Iterator[SegmentBatch]:
        state = self._threads.setdefault(batch.thread_id, _ThreadState())
        if batch.seq < state.expected or batch.seq in state.pending:
            self.report.record(
                _STREAM_SITE,
                "duplicate",
                "deduped",
                thread_id=batch.thread_id,
                index=batch.seq,
            )
            return
        if batch.seq > state.expected:
            state.pending[batch.seq] = batch
            while len(state.pending) > self.max_holdback:
                repaired = self._fill_gap(batch.thread_id)
                if repaired is not None:
                    yield repaired
                yield from self._drain(state, batch.thread_id)
            self._release_committed(batch.thread_id)
            return
        verified = self._verified(batch)
        state.expected += 1
        if verified is not None:
            yield verified
        yield from self._drain(state, batch.thread_id)
        self._release_committed(batch.thread_id)

    def _release_committed(self, thread_id: int) -> None:
        """Release replay refs this thread can never re-request.

        Everything below ``expected - 1`` is committed and past its
        one-event reclamation lag (the most recent commit stays
        fetchable, mirroring the shm channel's ``keep_last=1``); the
        replay buffer may drop those columnar refs so shared buffers
        unpin as the stream advances.
        """
        if self._replay is None:
            return
        state = self._threads.get(thread_id)
        if state is not None:
            self._replay.release(thread_id, state.expected - 2)

    def _drain(self, state: _ThreadState, thread_id: int) -> Iterator[SegmentBatch]:
        while state.expected in state.pending:
            late = state.pending.pop(state.expected)
            self.report.record(
                _STREAM_SITE,
                "reorder",
                "reordered",
                thread_id=thread_id,
                index=late.seq,
            )
            verified = self._verified(late)
            state.expected += 1
            if verified is not None:
                yield verified

    def _flush(self) -> Iterator[SegmentBatch]:
        """Resolve every outstanding hold-back and tail gap.

        Pending batches imply gaps before them; additionally, when the
        producer advertises true per-thread batch counts
        (``stream.batch_counts``, set by the fault injector), trailing
        dropped batches — which no successor ever reveals — are chased
        down too.
        """
        counts: dict[int, int] = getattr(self._stream, "batch_counts", None) or {}
        for thread_id in counts:
            self._threads.setdefault(thread_id, _ThreadState())
        for thread_id in sorted(self._threads):
            state = self._threads[thread_id]
            target = counts.get(thread_id, 0)
            while state.pending or state.expected < target:
                repaired = self._fill_gap(thread_id)
                if repaired is not None:
                    yield repaired
                yield from self._drain(state, thread_id)
            self._release_committed(thread_id)

    # -- push API ----------------------------------------------------

    def admit_event(self, event: TraceEvent) -> list[TraceEvent]:
        """Feed one raw event; returns the events it releases (0..n).

        A sequenced batch may release nothing (held back), itself, or
        itself plus previously held batches; a :class:`JobEnd` flushes
        every outstanding repair before passing through; everything
        else passes through unchanged.
        """
        if isinstance(event, SegmentBatch) and event.seq >= 0:
            return list(self._admit(event))
        if isinstance(event, JobEnd):
            out: list[TraceEvent] = list(self._flush())
            out.append(event)
            return out
        return [event]

    def finish(self) -> list[TraceEvent]:
        """End of stream: resolve every outstanding hold-back and gap."""
        return list(self._flush())

    def events(self) -> Iterator[TraceEvent]:
        if self._stream is None:
            raise ValueError("EventGuard is not bound to a stream")
        for event in self._stream:
            yield from self.admit_event(event)
        yield from self.finish()

    def __iter__(self) -> Iterator[TraceEvent]:
        return self.events()

    # -- snapshot protocol -------------------------------------------

    def snapshot(self) -> dict:
        """Capture sequence numbers, held-back payloads, and report."""
        return {
            "kind": "event-guard",
            "max_holdback": self.max_holdback,
            "threads": [
                [
                    thread_id,
                    state.expected,
                    [
                        [seq, batch.data, batch.checksum]
                        for seq, batch in sorted(state.pending.items())
                    ],
                ]
                for thread_id, state in self._threads.items()
            ],
            "report": self.report.to_dict(),
        }

    def restore(self, state: dict) -> None:
        """Rebuild guard state from :meth:`snapshot` output.

        The stream binding is untouched — a resumed session binds the
        guard to its freshly recreated stream, not the dead one.
        """
        if state.get("kind") != "event-guard":
            raise ValueError(f"not an event-guard snapshot: {state.get('kind')!r}")
        self.max_holdback = int(state["max_holdback"])
        self.report = FaultReport.from_dict(state["report"])
        self._threads = {}
        for thread_id, expected, pending in state["threads"]:
            thread_state = _ThreadState()
            thread_state.expected = int(expected)
            for seq, data, checksum in pending:
                thread_state.pending[int(seq)] = SegmentBatch(
                    int(thread_id), data, seq=int(seq), checksum=int(checksum)
                )
            self._threads[int(thread_id)] = thread_state
