"""The audit trail of injected faults and the recoveries they triggered.

Fault handling in this repo must never be silent (analysis rule SPA006
enforces this): each swallow-and-continue path records a
:class:`FaultEvent` describing what went wrong and how it was handled.
Reports ride in trace/profile metadata under ``meta["fault_report"]``
— and only when at least one event occurred, so fault-free output
remains byte-identical to a run without injection.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from dataclasses import dataclass

__all__ = ["FaultEvent", "FaultReport"]


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """One injected fault (or detected anomaly) and its resolution.

    ``site`` names the hook point (``spark.task``, ``hadoop.map``,
    ``stream``, ``perf``, ...); ``kind`` the fault class
    (``task_failure``, ``straggler``, ``gc_pause``, ``drop``,
    ``duplicate``, ``reorder``, ``corrupt``, ``gap``, ``glitch``);
    ``recovery`` what the consumer did about it (``reexecuted``,
    ``lineage_recompute``, ``absorbed``, ``deduped``, ``reordered``,
    ``replayed``, ``degraded``).
    """

    site: str
    kind: str
    recovery: str
    thread_id: int = -1
    stage_id: int = -1
    index: int = -1
    detail: str = ""

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "FaultEvent":
        return cls(**data)


class FaultReport:
    """Ordered collection of :class:`FaultEvent`, mergeable across layers."""

    def __init__(self, events: list[FaultEvent] | None = None) -> None:
        self.events: list[FaultEvent] = list(events or ())

    def record(
        self,
        site: str,
        kind: str,
        recovery: str,
        *,
        thread_id: int = -1,
        stage_id: int = -1,
        index: int = -1,
        detail: str = "",
    ) -> None:
        self.events.append(
            FaultEvent(
                site=site,
                kind=kind,
                recovery=recovery,
                thread_id=thread_id,
                stage_id=stage_id,
                index=index,
                detail=detail,
            )
        )

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def counts(self) -> dict[str, int]:
        """``{"kind/recovery": n}`` histogram, key-sorted for stability."""
        tally = Counter(f"{e.kind}/{e.recovery}" for e in self.events)
        return dict(sorted(tally.items()))

    def merge(self, other: "FaultReport") -> "FaultReport":
        self.events.extend(other.events)
        return self

    def to_dict(self) -> dict:
        return {
            "n_events": len(self.events),
            "counts": self.counts(),
            "events": [e.to_dict() for e in self.events],
        }

    @classmethod
    def from_dict(cls, data: dict | None) -> "FaultReport":
        if not data:
            return cls()
        return cls([FaultEvent.from_dict(e) for e in data.get("events", ())])

    @staticmethod
    def merged_meta(meta: dict, report: "FaultReport") -> None:
        """Fold ``report`` into ``meta["fault_report"]`` in place.

        No-op when the report is empty, so fault-free metadata stays
        untouched (the bit-identity contract for null plans).
        """
        if not report:
            return
        base = FaultReport.from_dict(meta.get("fault_report"))
        meta["fault_report"] = base.merge(report).to_dict()

    def summary(self) -> str:
        if not self.events:
            return "no faults"
        parts = [f"{k}×{n}" for k, n in self.counts().items()]
        return f"{len(self.events)} faults ({', '.join(parts)})"
