"""Kill-and-restore chaos: deterministic worker death, bit-exact resume.

The checkpoint layer (:mod:`repro.runtime.checkpoint`) promises that a
streaming job killed mid-flight resumes bit-identically from its latest
checkpoint.  This module *attacks* that promise the way the rest of
:mod:`repro.faults` attacks recovery paths — with seeded, replayable
violence:

1. run the job once uninterrupted (the reference result, no
   checkpointing) and count its stream events;
2. repeat ``plan.kills`` times: draw a kill offset from
   ``site_rng(seed, "chaos.kill", attempt)`` strictly after the
   position the latest checkpoint would resume from (so every cycle
   makes progress), run with checkpointing enabled, and die there via
   :class:`~repro.runtime.checkpoint.WorkerKilled` — exactly what a
   preempted spot instance looks like to the pipeline;
3. run a final attempt with no kill switch: it restores the latest
   checkpoint, fast-forwards, and completes.

The outcome is byte-compared against the reference —
:meth:`~repro.core.units.JobProfile.content_digest` for profiling
sessions, digest plus the full label sequence for online
classification.  Because every kill offset derives from the plan seed,
a chaos run is itself replayable.

The driver is generic over any push-mode session (``feed`` /
``finish`` / ``snapshot`` / ``restore`` / ``result``): pass factories
for the stream and the session so each attempt gets a pristine pair,
the same way a replacement worker would recreate them from the job
spec.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.faults.plan import site_rng
from repro.runtime.checkpoint import (
    CheckpointManager,
    CheckpointPolicy,
    WorkerKilled,
    drive_session,
)
from repro.runtime.store import ArtifactStore

__all__ = [
    "ChaosAttempt",
    "ChaosOutcome",
    "ChaosPlan",
    "kill_and_restore",
]

_KILL_SITE = "chaos.kill"


@dataclass(frozen=True, slots=True)
class ChaosPlan:
    """Knobs of one kill-and-restore campaign.

    ``kills`` is how many times the worker dies before the final,
    unharassed attempt; ``checkpoint_every`` the batch interval between
    snapshots (1 = checkpoint at every batch).  ``seed`` steers the
    kill offsets and nothing else — the job's own randomness comes from
    its profiler/workload seeds.
    """

    seed: int = 0
    kills: int = 2
    checkpoint_every: int = 1

    def __post_init__(self) -> None:
        if self.kills < 0:
            raise ValueError("kills must be >= 0")
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")


@dataclass(frozen=True, slots=True)
class ChaosAttempt:
    """One kill cycle: where the worker died, where it had resumed from."""

    attempt: int
    kill_position: int
    resumed_from: int
    killed: bool


@dataclass
class ChaosOutcome:
    """The verdict of one campaign."""

    n_events: int
    attempts: list[ChaosAttempt] = field(default_factory=list)
    reference: Any = None
    resumed: Any = None
    final_resumed_from: int = 0

    @staticmethod
    def _identity(result: Any) -> Any:
        # ProfilerSession.result() -> JobProfile;
        # ClassifySession.result() -> (JobProfile, labels).
        if isinstance(result, tuple):
            job, labels = result
            return (job.content_digest(), tuple(labels))
        return result.content_digest()

    @property
    def byte_identical(self) -> bool:
        """Resumed result byte-equals the uninterrupted reference."""
        return self._identity(self.reference) == self._identity(self.resumed)


def kill_and_restore(
    make_stream: Callable[[], Any],
    make_session: Callable[[Any], Any],
    store: ArtifactStore,
    job_key: str,
    plan: ChaosPlan,
) -> ChaosOutcome:
    """Run the seeded kill-and-restore campaign described above.

    ``make_stream`` recreates the (deterministic) trace stream and
    ``make_session`` builds a fresh push-mode session over it — called
    once per attempt, mimicking a replacement worker rebuilding state
    from the job spec.  Returns the :class:`ChaosOutcome`; the caller
    asserts :attr:`~ChaosOutcome.byte_identical`.
    """
    # Reference: uninterrupted, checkpointing off — the plain hot path.
    stream = make_stream()
    session = make_session(stream)
    n_events = 0
    for event in stream:
        n_events += 1
        session.feed(event)
    session.finish()
    outcome = ChaosOutcome(n_events=n_events, reference=session.result())

    manager = CheckpointManager(store, job_key)
    for attempt in range(plan.kills):
        latest = manager.latest()
        resumed_from = 0 if latest is None else latest[0]
        low = resumed_from + 1
        if low >= n_events:
            break  # checkpointed past the last event; nothing left to kill
        kill_at = int(site_rng(plan.seed, _KILL_SITE, attempt).integers(low, n_events))
        policy = CheckpointPolicy(
            manager,
            every=plan.checkpoint_every,
            resume=True,
            kill_after=kill_at,
        )
        stream = make_stream()
        session = make_session(stream)
        killed = False
        try:
            drive_session(session, stream, policy)
        except WorkerKilled:
            killed = True
        outcome.attempts.append(
            ChaosAttempt(
                attempt=attempt,
                kill_position=kill_at,
                resumed_from=resumed_from,
                killed=killed,
            )
        )

    latest = manager.latest()
    outcome.final_resumed_from = 0 if latest is None else latest[0]
    stream = make_stream()
    session = make_session(stream)
    drive_session(
        session,
        stream,
        CheckpointPolicy(manager, every=plan.checkpoint_every, resume=True),
    )
    outcome.resumed = session.result()
    return outcome
