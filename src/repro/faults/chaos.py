"""Kill-and-restore chaos: deterministic worker death, bit-exact resume.

The checkpoint layer (:mod:`repro.runtime.checkpoint`) promises that a
streaming job killed mid-flight resumes bit-identically from its latest
checkpoint.  This module *attacks* that promise the way the rest of
:mod:`repro.faults` attacks recovery paths — with seeded, replayable
violence:

1. run the job once uninterrupted (the reference result, no
   checkpointing) and count its stream events;
2. repeat ``plan.kills`` times: draw a kill offset from
   ``site_rng(seed, "chaos.kill", attempt)`` strictly after the
   position the latest checkpoint would resume from (so every cycle
   makes progress), run with checkpointing enabled, and die there via
   :class:`~repro.runtime.checkpoint.WorkerKilled` — exactly what a
   preempted spot instance looks like to the pipeline;
3. run a final attempt with no kill switch: it restores the latest
   checkpoint, fast-forwards, and completes.

The outcome is byte-compared against the reference —
:meth:`~repro.core.units.JobProfile.content_digest` for profiling
sessions, digest plus the full label sequence for online
classification.  Because every kill offset derives from the plan seed,
a chaos run is itself replayable.

The driver is generic over any push-mode session (``feed`` /
``finish`` / ``snapshot`` / ``restore`` / ``result``): pass factories
for the stream and the session so each attempt gets a pristine pair,
the same way a replacement worker would recreate them from the job
spec.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.faults.plan import site_rng
from repro.runtime.checkpoint import (
    CheckpointManager,
    CheckpointPolicy,
    WorkerKilled,
    drive_session,
)
from repro.runtime.store import ArtifactStore

__all__ = [
    "ChaosAttempt",
    "ChaosOutcome",
    "ChaosPlan",
    "FleetJobOutcome",
    "FleetOutcome",
    "FleetPlan",
    "fleet_wipe_and_restore",
    "kill_and_restore",
]

_KILL_SITE = "chaos.kill"
_FLEET_SITE = "chaos.fleet"


@dataclass(frozen=True, slots=True)
class ChaosPlan:
    """Knobs of one kill-and-restore campaign.

    ``kills`` is how many times the worker dies before the final,
    unharassed attempt; ``checkpoint_every`` the batch interval between
    snapshots (1 = checkpoint at every batch).  ``seed`` steers the
    kill offsets and nothing else — the job's own randomness comes from
    its profiler/workload seeds.
    """

    seed: int = 0
    kills: int = 2
    checkpoint_every: int = 1

    def __post_init__(self) -> None:
        if self.kills < 0:
            raise ValueError("kills must be >= 0")
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")


@dataclass(frozen=True, slots=True)
class ChaosAttempt:
    """One kill cycle: where the worker died, where it had resumed from."""

    attempt: int
    kill_position: int
    resumed_from: int
    killed: bool


@dataclass
class ChaosOutcome:
    """The verdict of one campaign."""

    n_events: int
    attempts: list[ChaosAttempt] = field(default_factory=list)
    reference: Any = None
    resumed: Any = None
    final_resumed_from: int = 0

    @staticmethod
    def _identity(result: Any) -> Any:
        # ProfilerSession.result() -> JobProfile;
        # ClassifySession.result() -> (JobProfile, labels).
        if isinstance(result, tuple):
            job, labels = result
            return (job.content_digest(), tuple(labels))
        return result.content_digest()

    @property
    def byte_identical(self) -> bool:
        """Resumed result byte-equals the uninterrupted reference."""
        return self._identity(self.reference) == self._identity(self.resumed)


def kill_and_restore(
    make_stream: Callable[[], Any],
    make_session: Callable[[Any], Any],
    store: ArtifactStore,
    job_key: str,
    plan: ChaosPlan,
) -> ChaosOutcome:
    """Run the seeded kill-and-restore campaign described above.

    ``make_stream`` recreates the (deterministic) trace stream and
    ``make_session`` builds a fresh push-mode session over it — called
    once per attempt, mimicking a replacement worker rebuilding state
    from the job spec.  Returns the :class:`ChaosOutcome`; the caller
    asserts :attr:`~ChaosOutcome.byte_identical`.
    """
    # Reference: uninterrupted, checkpointing off — the plain hot path.
    stream = make_stream()
    session = make_session(stream)
    n_events = 0
    for event in stream:
        n_events += 1
        session.feed(event)
    session.finish()
    outcome = ChaosOutcome(n_events=n_events, reference=session.result())

    manager = CheckpointManager(store, job_key)
    for attempt in range(plan.kills):
        latest = manager.latest()
        resumed_from = 0 if latest is None else latest[0]
        low = resumed_from + 1
        if low >= n_events:
            break  # checkpointed past the last event; nothing left to kill
        kill_at = int(site_rng(plan.seed, _KILL_SITE, attempt).integers(low, n_events))
        policy = CheckpointPolicy(
            manager,
            every=plan.checkpoint_every,
            resume=True,
            kill_after=kill_at,
        )
        stream = make_stream()
        session = make_session(stream)
        killed = False
        try:
            drive_session(session, stream, policy)
        except WorkerKilled:
            killed = True
        outcome.attempts.append(
            ChaosAttempt(
                attempt=attempt,
                kill_position=kill_at,
                resumed_from=resumed_from,
                killed=killed,
            )
        )

    latest = manager.latest()
    outcome.final_resumed_from = 0 if latest is None else latest[0]
    stream = make_stream()
    session = make_session(stream)
    drive_session(
        session,
        stream,
        CheckpointPolicy(manager, every=plan.checkpoint_every, resume=True),
    )
    outcome.resumed = session.result()
    return outcome


# -- fleet-wide disaster recovery ---------------------------------------------


class _CountingStream:
    """Pass-through iterator that counts the events it yields.

    Stream metadata (``workload``, ``framework``, …) proxies to the
    wrapped stream so the profiler sees an indistinguishable source.
    """

    def __init__(self, inner) -> None:
        self.inner = inner
        self.count = 0

    def __iter__(self):
        for event in self.inner:
            self.count += 1
            yield event

    def __getattr__(self, name: str):
        return getattr(self.inner, name)


@dataclass(frozen=True, slots=True)
class FleetPlan:
    """Knobs of one fleet-wide wipe-and-restore campaign.

    ``seed`` steers the per-job kill offsets (site ``"chaos.fleet"``,
    coordinate = job index) and nothing else.  ``restore_jobs`` is the
    parallelism of the final :func:`~repro.runtime.replicate.restore_fleet`
    (``None`` → ``SIMPROF_JOBS``/serial — byte-identical either way).
    """

    seed: int = 0
    checkpoint_every: int = 1
    restore_jobs: int | None = None

    def __post_init__(self) -> None:
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")


@dataclass(frozen=True, slots=True)
class FleetJobOutcome:
    """One job's fate across the kill → wipe → restore campaign.

    ``restored_digest`` is ``None`` when the job could not be restored
    at all — its journal entry or chain never reached the peer (the
    flaky-transport campaigns record this as explicit degradation, not
    silent loss).
    """

    label: str
    job_key: str
    n_events: int
    kill_position: int
    resumed_from: int
    reference_digest: str
    restored_digest: str | None

    @property
    def byte_identical(self) -> bool:
        return self.restored_digest == self.reference_digest


@dataclass
class FleetOutcome:
    """The verdict of one fleet campaign."""

    jobs: list[FleetJobOutcome] = field(default_factory=list)
    replication: Any = None  # ReplicationStatus at flush time
    wiped_files: int = 0
    pulled_entries: int = 0

    @property
    def missing(self) -> list[str]:
        """Labels of jobs the peer could not bring back."""
        return [j.label for j in self.jobs if j.restored_digest is None]

    @property
    def byte_identical(self) -> bool:
        """Every job restored and byte-equal to its reference."""
        return bool(self.jobs) and all(j.byte_identical for j in self.jobs)

    @property
    def accounted_for(self) -> bool:
        """No silent loss: every job either restored byte-identically or
        explicitly recorded as missing while replication reported
        degradation."""
        if self.byte_identical:
            return True
        return bool(self.missing) and bool(
            self.replication is not None and self.replication.degraded
        )


def fleet_wipe_and_restore(
    specs,
    store: ArtifactStore,
    peer,
    plan: FleetPlan,
    *,
    retry=None,
) -> FleetOutcome:
    """Kill a whole fleet mid-stream, wipe the local store, restore from peer.

    The disaster-recovery drill the replication plane exists for:

    1. **reference** — profile every spec uninterrupted (checkpointing
       off, no store writes) and count its stream events;
    2. **kill** — run every spec through the streaming checkpoint path
       with replication to ``peer`` attached, and kill each worker at a
       seeded offset (``site_rng(seed, "chaos.fleet", job_index)``);
       the chains and the inflight journal replicate as they are cut;
    3. **wipe** — destroy the local store completely
       (:meth:`~repro.runtime.store.ArtifactStore.wipe`): the preempted
       host's disk is gone;
    4. **restore** — pull the journal and chains back from the peer
       (:func:`~repro.runtime.replicate.pull_fleet`) and finish every
       job in parallel (:func:`~repro.runtime.replicate.restore_fleet`),
       byte-comparing each profile against its reference.

    ``peer`` may be a plain :class:`~repro.runtime.replicate.FilesystemPeer`
    or a :class:`~repro.runtime.replicate.FlakyPeer`; with a flaky
    transport the campaign must end in either verified replication or
    explicit recorded degradation (:attr:`FleetOutcome.accounted_for`)
    — never silent data loss.
    """
    from repro.core.pipeline import SimProf
    from repro.runtime.checkpoint import checkpoint_job_key
    from repro.runtime.replicate import (
        ReplicationPolicy,
        pull_fleet,
        restore_fleet,
    )
    from repro.runtime.runner import _compute_profile_stream, spec_stream

    specs = list(specs)
    outcome = FleetOutcome()

    # 1. References: uninterrupted, no checkpointing, nothing stored.
    references: list[tuple[str, int, str]] = []  # (job_key, n_events, digest)
    for spec in specs:
        counting = _CountingStream(spec_stream(spec))
        job = SimProf(spec.simprof).profile_stream(counting)
        references.append(
            (
                checkpoint_job_key(spec.profile_params()),
                counting.count,
                job.content_digest(),
            )
        )

    # 2. Kill every worker mid-stream, replication on.
    replication = ReplicationPolicy(peer, retry=retry)
    kills: list[int] = []
    try:
        for i, spec in enumerate(specs):
            n_events = references[i][1]
            kill_at = (
                int(site_rng(plan.seed, _FLEET_SITE, i).integers(1, n_events))
                if n_events > 1
                else 1
            )
            kills.append(kill_at)
            try:
                _compute_profile_stream(
                    spec,
                    store,
                    checkpoint_every=plan.checkpoint_every,
                    resume=True,
                    kill_after=kill_at,
                    replicate=replication,
                )
            except WorkerKilled:
                pass
        outcome.replication = replication.flush()
    finally:
        replication.close()

    # 3. The disk dies.
    outcome.wiped_files = store.wipe()

    # 4. The successor pulls the journal + chains and finishes the fleet.
    pulled = pull_fleet(peer, store, retry=retry)
    outcome.pulled_entries = len(pulled.moved)
    restored = {
        r.job_key: r for r in restore_fleet(store, jobs=plan.restore_jobs)
    }
    for i, spec in enumerate(specs):
        job_key, n_events, reference_digest = references[i]
        result = restored.get(job_key)
        outcome.jobs.append(
            FleetJobOutcome(
                label=spec.label,
                job_key=job_key,
                n_events=n_events,
                kill_position=kills[i],
                resumed_from=result.resumed_from if result else 0,
                reference_digest=reference_digest,
                restored_digest=result.digest if result else None,
            )
        )
    return outcome
