"""Executor-thread traces.

Framework executors do two things at once: they *really compute* (count
words, sort keys, propagate labels) and, for every batch of work, they
emit a :class:`TraceSegment` describing what the simulated hardware did
during that batch — the call stack that was live, the operation kind,
and the counter values from :class:`~repro.jvm.machine.HardwareModel`.

A :class:`ThreadTrace` is the full segment sequence of one executor
thread; the SimProf profiler consumes traces only through the
JVMTI/perf-like interfaces in :mod:`repro.jvm.jvmti` and
:mod:`repro.jvm.perf`, never through the segments directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.jvm.machine import AccessPattern, HardwareModel, OpKind
from repro.jvm.methods import CallStack, StackTable

__all__ = ["TraceSegment", "ThreadTrace", "TraceBuilder"]

# Stable integer coding of OpKind for the packed arrays.
OP_KIND_CODES: dict[OpKind, int] = {kind: i for i, kind in enumerate(OpKind)}
OP_KINDS_BY_CODE: tuple[OpKind, ...] = tuple(OpKind)


@dataclass(frozen=True, slots=True)
class TraceSegment:
    """One contiguous batch of work on one thread.

    ``stack_id`` refers to the job's :class:`~repro.jvm.methods.StackTable`.
    ``stage_id``/``task_id`` are framework metadata (−1 when outside any
    task) used by analysis code, not by SimProf itself.
    """

    stack_id: int
    op_kind: OpKind
    instructions: int
    cycles: int
    l1d_misses: int
    llc_misses: int
    stage_id: int = -1
    task_id: int = -1
    cold: bool = False

    @property
    def cpi(self) -> float:
        """Cycles per instruction of the segment."""
        return self.cycles / self.instructions if self.instructions else 0.0


@dataclass
class ThreadTrace:
    """The ordered segments of one executor thread.

    ``start_cycle`` anchors the trace on the global job timeline so
    short-lived Hadoop task threads can be merged per core in time
    order (Section III-A).
    """

    thread_id: int
    core_id: int
    segments: list[TraceSegment] = field(default_factory=list)
    start_cycle: int = 0
    # Totals cache: (epoch, n_segments, instructions, cycles).  Hot
    # profiler loops read the totals per unit, so re-summing the whole
    # segment list per access is O(trace) where O(1) suffices.  The key
    # includes an epoch bumped by clear_segments() because a streaming
    # flush can clear and repopulate to the same length.
    _totals_cache: tuple[int, int, int, int] | None = field(
        default=None, init=False, repr=False, compare=False
    )
    # Packed-array cache: ((epoch, n_segments), SEGMENT_DTYPE array).
    # Shared by to_structured()/to_arrays() so the replay streamer, the
    # snapshotter, and the counter reader pack each trace state once.
    _structured_cache: "tuple[tuple[int, int], np.ndarray] | None" = field(
        default=None, init=False, repr=False, compare=False
    )
    _epoch: int = field(default=0, init=False, repr=False, compare=False)

    def __len__(self) -> int:
        return len(self.segments)

    def _totals(self) -> tuple[int, int]:
        cache = self._totals_cache
        if (
            cache is not None
            and cache[0] == self._epoch
            and cache[1] == len(self.segments)
        ):
            return cache[2], cache[3]
        instructions = 0
        cycles = 0
        for s in self.segments:
            instructions += s.instructions
            cycles += s.cycles
        self._totals_cache = (
            self._epoch, len(self.segments), instructions, cycles
        )
        return instructions, cycles

    @property
    def total_instructions(self) -> int:
        """Instructions executed by the thread (cached)."""
        return self._totals()[0]

    @property
    def total_cycles(self) -> int:
        """Cycles consumed by the thread (cached)."""
        return self._totals()[1]

    def clear_segments(self) -> None:
        """Drop the segment list (streaming flush) and invalidate caches.

        Appending never needs invalidation (the cache key includes the
        length); clearing does, because a later refill could reach the
        same length with different segments.
        """
        self.segments.clear()
        self._structured_cache = None
        self._epoch += 1

    @property
    def end_cycle(self) -> int:
        """Global cycle at which the thread finished."""
        return self.start_cycle + self.total_cycles

    def to_structured(self) -> np.ndarray:
        """Pack the trace into one ``SEGMENT_DTYPE`` structured array.

        The columnar wire form of the trace
        (:data:`repro.jvm.segments.SEGMENT_DTYPE`): one row per segment,
        ``op_kind`` coded via ``OP_KIND_CODES``.  Cached under the same
        (epoch, length) key as the totals, so repeat packers (replay
        streaming, the snapshotter, the counter reader) pay the
        object-walk once per trace state.
        """
        from repro.jvm.segments import segments_to_array

        cache = self._structured_cache
        key = (self._epoch, len(self.segments))
        if cache is not None and cache[0] == key:
            return cache[1]
        data = segments_to_array(self.segments)
        data.setflags(write=False)
        self._structured_cache = (key, data)
        return data

    def drain_structured(self) -> np.ndarray:
        """Pack and clear in one step (the streaming-flush hot path).

        Returns the packed array of the current segments and empties the
        trace (bumping the epoch like :meth:`clear_segments`), so a
        substrate flush hands a columnar batch straight to the stream
        without leaving a second copy behind.
        """
        data = self.to_structured()
        self.clear_segments()
        return data

    def to_arrays(self) -> dict[str, np.ndarray]:
        """Pack the trace into parallel NumPy arrays.

        Keys: ``stack_id``, ``op_kind`` (coded via ``OP_KIND_CODES``),
        ``instructions``, ``cycles``, ``l1d_misses``, ``llc_misses``,
        ``stage_id``, ``task_id``.  Downstream consumers (the profiler,
        the counter reader) work exclusively on these arrays.  The
        values are column views of :meth:`to_structured`, so the two
        packers share one cache entry.
        """
        data = self.to_structured()
        return {
            name: data[name]
            for name in (
                "stack_id",
                "op_kind",
                "instructions",
                "cycles",
                "l1d_misses",
                "llc_misses",
                "stage_id",
                "task_id",
            )
        }

    @staticmethod
    def merged(traces: list["ThreadTrace"], thread_id: int) -> "ThreadTrace":
        """Concatenate per-task traces from one core in start-time order.

        This mimics the paper's Hadoop handling: executor threads die
        with their task, so the profiler stitches the threads that ran
        on the same core into one long pseudo-thread.
        """
        if not traces:
            raise ValueError("cannot merge an empty list of traces")
        cores = {t.core_id for t in traces}
        if len(cores) != 1:
            raise ValueError(f"traces span multiple cores: {sorted(cores)}")
        ordered = sorted(traces, key=lambda t: t.start_cycle)
        merged = ThreadTrace(
            thread_id=thread_id,
            core_id=ordered[0].core_id,
            start_cycle=ordered[0].start_cycle,
        )
        for t in ordered:
            merged.segments.extend(t.segments)
        return merged


class TraceBuilder:
    """Per-thread emission helper used by the framework executors.

    Wraps the hardware model with the thread-local state the model needs
    per call: the LLC contention currently in force and whether the last
    OS migration left the caches cold.  Executors call :meth:`emit` once
    per batch of records.
    """

    def __init__(
        self,
        stack_table: StackTable,
        hardware: HardwareModel,
        rng: np.random.Generator,
        thread_id: int,
        core_id: int,
        start_cycle: int = 0,
    ) -> None:
        self.stack_table = stack_table
        self.hardware = hardware
        self.rng = rng
        self.trace = ThreadTrace(
            thread_id=thread_id, core_id=core_id, start_cycle=start_cycle
        )
        self.contention: int = 1
        self._cold_next: bool = False
        self._migrations: int = 0
        self._retired: int = 0  # drives the JIT warm-up multiplier

    @property
    def migrations(self) -> int:
        """Number of OS migrations the thread has suffered."""
        return self._migrations

    @property
    def retired(self) -> int:
        """Instructions retired so far (final, post-scale).

        Monotone across the thread's lifetime; the delta across a task
        is the task's own work, which is what fault injection sizes
        straggler stalls against.
        """
        return self._retired

    def set_contention(self, n_threads: int) -> None:
        """Set how many threads currently share the LLC."""
        self.contention = max(1, int(n_threads))

    def emit(
        self,
        stack: CallStack,
        op_kind: OpKind,
        access: AccessPattern,
        instructions: float,
        *,
        stage_id: int = -1,
        task_id: int = -1,
    ) -> TraceSegment:
        """Cost one batch on the hardware model and append a segment.

        ``instructions`` is multiplied by the machine's
        ``instruction_scale`` (the per-workload calibration knob) before
        pricing.
        """
        cold = self._cold_next
        self._cold_next = False
        cost = self.hardware.cost(
            op_kind,
            access,
            instructions * self.hardware.config.instruction_scale,
            self.rng,
            contention=self.contention,
            cold=cold,
            retired_instructions=self._retired,
        )
        self._retired += cost.instructions
        seg = TraceSegment(
            stack_id=self.stack_table.intern(stack),
            op_kind=op_kind,
            instructions=cost.instructions,
            cycles=cost.cycles,
            l1d_misses=cost.l1d_misses,
            llc_misses=cost.llc_misses,
            stage_id=stage_id,
            task_id=task_id,
            cold=cold,
        )
        self.trace.segments.append(seg)
        # The OS may move the thread between batches; the next segment
        # then starts with cold private caches (Section III-B.1).
        if self.hardware.migration_occurs(self.rng):
            self._cold_next = True
            self._migrations += 1
        return seg

    def emit_chunked(
        self,
        stack: CallStack,
        op_kind: OpKind,
        access: AccessPattern,
        instructions: float,
        *,
        max_segment: float = 4e6,
        stage_id: int = -1,
        task_id: int = -1,
    ) -> int:
        """Emit a long operation as several bounded segments.

        Keeps individual segments well below the profiler's snapshot
        period so a single big operation (a top-level quicksort pass, a
        large block read) spans many snapshots instead of hiding inside
        one.  ``max_segment`` is in *final* (post-``instruction_scale``)
        instructions.  Returns the number of segments emitted.
        """
        if max_segment <= 0:
            raise ValueError("max_segment must be positive")
        scale = self.hardware.config.instruction_scale
        remaining = float(instructions) * scale
        n = 0
        while remaining > 0:
            chunk = min(remaining, max_segment)
            # emit() rescales, so hand it the unscaled chunk.
            self.emit(
                stack,
                op_kind,
                access,
                chunk / scale,
                stage_id=stage_id,
                task_id=task_id,
            )
            remaining -= chunk
            n += 1
        return n
