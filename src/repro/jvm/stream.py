"""The TraceStream protocol: incremental trace events.

A :class:`TraceStream` is the streaming counterpart of
:class:`~repro.jvm.job.JobTrace`: the same run record, delivered as an
ordered iterator of small events instead of one fully-materialised
object.  Substrates produce it while they execute; consumers (the
streaming profiler, or :meth:`JobTrace.from_stream`) see segments the
moment a task flushes them, long before the run finishes, so peak
memory is bounded by the in-flight window rather than the whole trace.

Event vocabulary:

* :class:`ThreadStart` — a (merged pseudo-)thread exists; carries the
  identity the profiler needs (thread id, core, start cycle).
* :class:`SegmentBatch` — a run of consecutive
  :class:`~repro.jvm.threads.TraceSegment` objects for one thread.
  Batches of one thread arrive in trace order; batches of different
  threads may interleave.
* :class:`StageEvent` — stage metadata, emitted when the framework
  records the stage.
* :class:`JobEnd` — the run finished; carries the job-level meta dict.

The substrates execute eagerly (an action *runs* the job), so turning
them into generators requires inversion of control:
:func:`pump_events` runs the workload on a worker thread and hands its
events to the consumer through a bounded queue — backpressure keeps the
producer from racing ahead of the consumer by more than the queue
depth, which is what makes the memory bound real.

Consumers on the classification side
(:meth:`~repro.core.phases.PhaseModel.classify_stream`,
``SimProf.classify_stream``) pair the stream's ``registry`` /
``stack_table`` with a :class:`~repro.core.features.UnitFeaturizer`,
whose per-unit scatter-add and reusable row buffer keep live
classification allocation-free per unit and row-for-row identical to
the batch path.
"""

from __future__ import annotations

import queue
import struct
import threading
import zlib
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Union

from repro.jvm.job import JobTrace, StageInfo
from repro.jvm.machine import MachineConfig
from repro.jvm.methods import MethodRegistry, StackTable
from repro.jvm.threads import OP_KIND_CODES, TraceSegment

__all__ = [
    "ThreadStart",
    "SegmentBatch",
    "StageEvent",
    "JobEnd",
    "TraceEvent",
    "TraceStream",
    "StreamClosed",
    "pump_events",
    "segment_checksum",
    "sequenced_batch",
    "trace_to_stream",
]

_SEGMENT_PACK = struct.Struct("<qqqqqqqq")


def segment_checksum(segments: tuple[TraceSegment, ...]) -> int:
    """CRC-32 over the integer fields of a segment batch payload.

    Deterministic across processes (unlike salted ``hash()``): packs
    each segment's identifying integers little-endian and folds them
    through :func:`zlib.crc32`.  Cheap enough to compute at emission
    and again at consumption, which is what lets the stream guard in
    :mod:`repro.faults.stream` detect corrupted payloads.
    """
    crc = 0
    for s in segments:
        crc = zlib.crc32(
            _SEGMENT_PACK.pack(
                s.stack_id,
                OP_KIND_CODES[s.op_kind],
                s.instructions,
                s.cycles,
                s.l1d_misses,
                s.llc_misses,
                s.stage_id,
                s.task_id,
            ),
            crc,
        )
    return crc


@dataclass(frozen=True, slots=True)
class ThreadStart:
    """A profiled (pseudo-)thread came into existence."""

    thread_id: int
    core_id: int
    start_cycle: int = 0


@dataclass(frozen=True, slots=True)
class SegmentBatch:
    """Consecutive trace segments of one thread, in emission order.

    ``seq`` is a per-thread sequence number (0, 1, 2, ... in emission
    order) and ``checksum`` the :func:`segment_checksum` of the
    payload; together they let consumers detect gaps, duplicates,
    reordering, and corruption.  ``seq == -1`` marks a legacy/unsequenced
    batch, which consumers pass through untouched.
    """

    thread_id: int
    segments: tuple[TraceSegment, ...]
    seq: int = -1
    checksum: int = 0


def sequenced_batch(
    thread_id: int, segments: tuple[TraceSegment, ...], seq: int
) -> SegmentBatch:
    """Build a :class:`SegmentBatch` with its checksum filled in."""
    return SegmentBatch(
        thread_id, segments, seq=seq, checksum=segment_checksum(segments)
    )


@dataclass(frozen=True, slots=True)
class StageEvent:
    """Stage metadata, emitted when the framework records the stage."""

    info: StageInfo


@dataclass(frozen=True, slots=True)
class JobEnd:
    """The run completed; carries the job-level metadata dict."""

    meta: dict[str, Any]


TraceEvent = Union[ThreadStart, SegmentBatch, StageEvent, JobEnd]


@dataclass
class TraceStream:
    """A job trace delivered as an event iterator.

    Carries the same shared context a :class:`JobTrace` does (registry,
    stack table, machine config) up front, because consumers need it
    before the first segment arrives.  Iterate the stream (or its
    ``events``) to drive the underlying run; a stream is single-shot.
    """

    framework: str
    workload: str
    input_name: str
    registry: MethodRegistry
    stack_table: StackTable
    machine: MachineConfig
    events: Iterator[TraceEvent]

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    @property
    def label(self) -> str:
        """Short label, mirroring :attr:`JobTrace.label`."""
        return f"{self.workload}_{self.framework}"


class StreamClosed(RuntimeError):
    """Raised inside a producer whose consumer stopped iterating."""


class _ProducerError:
    """Queue wrapper carrying an exception from the worker thread."""

    __slots__ = ("exc",)

    def __init__(self, exc: BaseException) -> None:
        self.exc = exc


_DONE = object()


def pump_events(
    producer: Callable[[Callable[[TraceEvent], None]], None],
    *,
    max_queue: int = 256,
) -> Iterator[TraceEvent]:
    """Run an eager producer on a worker thread, yield its events.

    ``producer`` is called with an ``emit(event)`` callable on a
    daemon thread; every emitted event is handed to the consuming
    iterator through a queue bounded at ``max_queue`` entries, so the
    producer blocks (backpressure) once the consumer falls behind.

    Exceptions in the producer propagate out of the iterator.  If the
    consumer abandons the iterator early (``break`` / ``close()``),
    the next ``emit`` in the producer raises :class:`StreamClosed`,
    unwinding the worker thread.
    """
    q: queue.Queue = queue.Queue(maxsize=max_queue)
    closed = threading.Event()

    def offer(item: Any) -> None:
        # Bounded put that re-checks the closed flag so an abandoned
        # producer never blocks forever on a full queue.
        while not closed.is_set():
            try:
                q.put(item, timeout=0.1)
                return
            except queue.Full:
                continue

    def emit(event: TraceEvent) -> None:
        if closed.is_set():
            raise StreamClosed("trace stream consumer stopped iterating")
        offer(event)
        if closed.is_set():
            raise StreamClosed("trace stream consumer stopped iterating")

    def work() -> None:
        try:
            producer(emit)
        except StreamClosed:
            return
        except BaseException as exc:
            offer(_ProducerError(exc))
            return
        offer(_DONE)

    worker = threading.Thread(target=work, name="trace-stream", daemon=True)
    worker.start()
    try:
        while True:
            item = q.get()
            if item is _DONE:
                return
            if isinstance(item, _ProducerError):
                raise item.exc
            yield item
    finally:
        closed.set()
        # Drain so a producer blocked on a full queue can observe the
        # closed flag and unwind.
        while worker.is_alive():
            try:
                q.get_nowait()
            except queue.Empty:
                worker.join(timeout=0.05)


def trace_to_stream(job: JobTrace, *, batch_size: int = 256) -> TraceStream:
    """Replay a materialised :class:`JobTrace` as a :class:`TraceStream`.

    The synthetic-substrate adapter: any trace built directly against
    :mod:`repro.jvm` (tests, synthetic generators) becomes a stream
    without a worker thread.  ``from_stream(trace_to_stream(job))``
    round-trips exactly.
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")

    def events() -> Iterator[TraceEvent]:
        for t in job.traces:
            yield ThreadStart(t.thread_id, t.core_id, t.start_cycle)
        for info in job.stages:
            yield StageEvent(info)
        for t in job.traces:
            for seq, i in enumerate(range(0, len(t.segments), batch_size)):
                yield sequenced_batch(
                    t.thread_id, tuple(t.segments[i : i + batch_size]), seq
                )
        yield JobEnd(dict(job.meta))

    return TraceStream(
        framework=job.framework,
        workload=job.workload,
        input_name=job.input_name,
        registry=job.registry,
        stack_table=job.stack_table,
        machine=job.machine,
        events=events(),
    )
