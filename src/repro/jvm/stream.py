"""The TraceStream protocol: incremental columnar trace events.

A :class:`TraceStream` is the streaming counterpart of
:class:`~repro.jvm.job.JobTrace`: the same run record, delivered as an
ordered iterator of small events instead of one fully-materialised
object.  Substrates produce it while they execute; consumers (the
streaming profiler, or :meth:`JobTrace.from_stream`) see segments the
moment a task flushes them, long before the run finishes, so peak
memory is bounded by the in-flight window rather than the whole trace.

Segment payloads are **columnar from birth to consumption**: a
:class:`SegmentBatch` carries one packed
:data:`~repro.jvm.segments.SEGMENT_DTYPE` structured array (``.data``),
not per-segment Python objects.  Substrates pack each flush into one
array, :func:`pump_events` moves the batch by reference through its
queue (one pointer per batch, however many segments it holds; see
:mod:`repro.jvm.shm` for the shared-memory variant when the consumer is
a worker process), the fault guard checksums the packed buffer in one
CRC pass, and the streaming profiler cuts sampling units from column
slices — no per-segment object is ever allocated on the hot path.  The
``.segments`` property materialises classic
:class:`~repro.jvm.threads.TraceSegment` tuples lazily for the
object-path consumers (``JobTrace.from_stream``, parity tests).

Event vocabulary:

* :class:`ThreadStart` — a (merged pseudo-)thread exists; carries the
  identity the profiler needs (thread id, core, start cycle).
* :class:`SegmentBatch` — a packed run of consecutive trace segments
  for one thread.  Batches of one thread arrive in trace order;
  batches of different threads may interleave.
* :class:`StageEvent` — stage metadata, emitted when the framework
  records the stage.
* :class:`JobEnd` — the run finished; carries the job-level meta dict.

The substrates execute eagerly (an action *runs* the job), so turning
them into generators requires inversion of control:
:func:`pump_events` runs the workload on a worker thread and hands its
events to the consumer through a bounded queue — backpressure keeps the
producer from racing ahead of the consumer by more than the queue
depth, which is what makes the memory bound real.

Consumers on the classification side
(:meth:`~repro.core.phases.PhaseModel.classify_stream`,
``SimProf.classify_stream``) pair the stream's ``registry`` /
``stack_table`` with a :class:`~repro.core.features.UnitFeaturizer`,
whose per-unit scatter-add and reusable row buffer keep live
classification allocation-free per unit and row-for-row identical to
the batch path.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Union

import numpy as np

from repro.jvm.job import JobTrace, StageInfo
from repro.jvm.machine import MachineConfig
from repro.jvm.methods import MethodRegistry, StackTable
from repro.jvm.segments import (
    SEGMENT_DTYPE,
    array_to_segments,
    segment_checksum,
    segments_to_array,
)
from repro.jvm.threads import TraceSegment

__all__ = [
    "ThreadStart",
    "SegmentBatch",
    "StageEvent",
    "JobEnd",
    "TraceEvent",
    "TraceStream",
    "StreamClosed",
    "pump_events",
    "segment_checksum",
    "sequenced_batch",
    "trace_to_stream",
]


@dataclass(frozen=True, slots=True)
class ThreadStart:
    """A profiled (pseudo-)thread came into existence."""

    thread_id: int
    core_id: int
    start_cycle: int = 0


class SegmentBatch:
    """Consecutive trace segments of one thread, packed columnar.

    ``data`` is one :data:`~repro.jvm.segments.SEGMENT_DTYPE` structured
    array — the batch's only payload.  Consumers read column slices
    (``batch.data["instructions"]``); the ``segments`` property
    materialises legacy :class:`~repro.jvm.threads.TraceSegment` tuples
    lazily (and caches them) for object-path consumers only.

    The constructor accepts either a packed array (adopted by
    reference — the zero-copy path substrates and the shared-memory
    channel use) or an iterable of :class:`TraceSegment` objects (the
    legacy path, converted once).

    ``seq`` is a per-thread sequence number (0, 1, 2, ... in emission
    order) and ``checksum`` the :func:`segment_checksum` of the packed
    payload; together they let consumers detect gaps, duplicates,
    reordering, and corruption.  ``seq == -1`` marks a
    legacy/unsequenced batch, which consumers pass through untouched.
    """

    __slots__ = ("thread_id", "data", "seq", "checksum", "_objects")

    def __init__(
        self,
        thread_id: int,
        segments: "np.ndarray | tuple[TraceSegment, ...] | list[TraceSegment]" = (),
        seq: int = -1,
        checksum: int = 0,
    ) -> None:
        self.thread_id = thread_id
        if isinstance(segments, np.ndarray):
            if segments.dtype != SEGMENT_DTYPE:
                raise TypeError(
                    f"expected a SEGMENT_DTYPE array, got {segments.dtype!r}"
                )
            self.data = segments
            self._objects: tuple[TraceSegment, ...] | None = None
        else:
            self._objects = tuple(segments)
            self.data = segments_to_array(self._objects)
        self.seq = seq
        self.checksum = checksum

    @property
    def segments(self) -> tuple[TraceSegment, ...]:
        """Lazy object-path view of the packed payload (cached)."""
        if self._objects is None:
            self._objects = array_to_segments(self.data)
        return self._objects

    def __len__(self) -> int:
        return len(self.data)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SegmentBatch):
            return NotImplemented
        return (
            self.thread_id == other.thread_id
            and self.seq == other.seq
            and self.checksum == other.checksum
            and np.array_equal(self.data, other.data)
        )

    def __repr__(self) -> str:
        return (
            f"SegmentBatch(thread_id={self.thread_id}, n={len(self.data)}, "
            f"seq={self.seq}, checksum={self.checksum})"
        )


def sequenced_batch(
    thread_id: int,
    segments: "np.ndarray | tuple[TraceSegment, ...]",
    seq: int,
) -> SegmentBatch:
    """Build a :class:`SegmentBatch` with its checksum filled in."""
    batch = SegmentBatch(thread_id, segments, seq=seq)
    batch.checksum = segment_checksum(batch.data)
    return batch


@dataclass(frozen=True, slots=True)
class StageEvent:
    """Stage metadata, emitted when the framework records the stage."""

    info: StageInfo


@dataclass(frozen=True, slots=True)
class JobEnd:
    """The run completed; carries the job-level metadata dict."""

    meta: dict[str, Any]


TraceEvent = Union[ThreadStart, SegmentBatch, StageEvent, JobEnd]


@dataclass
class TraceStream:
    """A job trace delivered as an event iterator.

    Carries the same shared context a :class:`JobTrace` does (registry,
    stack table, machine config) up front, because consumers need it
    before the first segment arrives.  Iterate the stream (or its
    ``events``) to drive the underlying run; a stream is single-shot.
    """

    framework: str
    workload: str
    input_name: str
    registry: MethodRegistry
    stack_table: StackTable
    machine: MachineConfig
    events: Iterator[TraceEvent]

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    @property
    def label(self) -> str:
        """Short label, mirroring :attr:`JobTrace.label`."""
        return f"{self.workload}_{self.framework}"


class StreamClosed(RuntimeError):
    """Raised inside a producer whose consumer stopped iterating."""


class _ProducerError:
    """Queue wrapper carrying an exception from the worker thread."""

    __slots__ = ("exc",)

    def __init__(self, exc: BaseException) -> None:
        self.exc = exc


_DONE = object()


def pump_events(
    producer: Callable[[Callable[[TraceEvent], None]], None],
    *,
    max_queue: int = 256,
) -> Iterator[TraceEvent]:
    """Run an eager producer on a worker thread, yield its events.

    ``producer`` is called with an ``emit(event)`` callable on a
    daemon thread; every emitted event is handed to the consuming
    iterator through a queue bounded at ``max_queue`` entries, so the
    producer blocks (backpressure) once the consumer falls behind.
    Events move by reference — a columnar :class:`SegmentBatch` costs
    one queue slot regardless of how many segments it packs.

    Exceptions in the producer propagate out of the iterator.  If the
    consumer abandons the iterator early (``break`` / ``close()``),
    the next ``emit`` in the producer raises :class:`StreamClosed`,
    unwinding the worker thread.
    """
    q: queue.Queue = queue.Queue(maxsize=max_queue)
    closed = threading.Event()

    def offer(item: Any) -> None:
        # Bounded put that re-checks the closed flag so an abandoned
        # producer never blocks forever on a full queue.
        while not closed.is_set():
            try:
                q.put(item, timeout=0.1)
                return
            except queue.Full:
                continue

    def emit(event: TraceEvent) -> None:
        if closed.is_set():
            raise StreamClosed("trace stream consumer stopped iterating")
        offer(event)
        if closed.is_set():
            raise StreamClosed("trace stream consumer stopped iterating")

    def work() -> None:
        try:
            producer(emit)
        except StreamClosed:
            return
        except BaseException as exc:
            offer(_ProducerError(exc))
            return
        offer(_DONE)

    worker = threading.Thread(target=work, name="trace-stream", daemon=True)
    worker.start()
    try:
        while True:
            item = q.get()
            if item is _DONE:
                return
            if isinstance(item, _ProducerError):
                raise item.exc
            yield item
    finally:
        closed.set()
        # Drain so a producer blocked on a full queue can observe the
        # closed flag and unwind.
        while worker.is_alive():
            try:
                q.get_nowait()
            except queue.Empty:
                worker.join(timeout=0.05)


def trace_to_stream(job: JobTrace, *, batch_size: int = 256) -> TraceStream:
    """Replay a materialised :class:`JobTrace` as a :class:`TraceStream`.

    The synthetic-substrate adapter: any trace built directly against
    :mod:`repro.jvm` (tests, synthetic generators) becomes a stream
    without a worker thread.  Each thread's segments are packed once
    (:meth:`~repro.jvm.threads.ThreadTrace.to_structured`) and batches
    are zero-copy slices of that packed array.
    ``from_stream(trace_to_stream(job))`` round-trips exactly.
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")

    def events() -> Iterator[TraceEvent]:
        for t in job.traces:
            yield ThreadStart(t.thread_id, t.core_id, t.start_cycle)
        for info in job.stages:
            yield StageEvent(info)
        for t in job.traces:
            data = t.to_structured()
            for seq, i in enumerate(range(0, len(data), batch_size)):
                yield sequenced_batch(
                    t.thread_id, data[i : i + batch_size], seq
                )
        yield JobEnd(dict(job.meta))

    return TraceStream(
        framework=job.framework,
        workload=job.workload,
        input_name=job.input_name,
        registry=job.registry,
        stack_table=job.stack_table,
        machine=job.machine,
        events=events(),
    )
