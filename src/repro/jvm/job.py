"""Job-level trace container shared by both framework simulators.

A :class:`JobTrace` is everything one workload run leaves behind: the
per-thread segment traces, the interned method/stack tables, stage
metadata, and the machine configuration the trace was priced against.
It is the boundary between the substrates (which produce it) and the
SimProf core (which consumes it only through the JVMTI/perf-style
interfaces).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.jvm.machine import MachineConfig
from repro.jvm.methods import MethodRegistry, StackTable
from repro.jvm.threads import ThreadTrace

__all__ = ["StageInfo", "JobTrace"]


@dataclass(frozen=True, slots=True)
class StageInfo:
    """Metadata for one execution stage of the job."""

    stage_id: int
    name: str
    n_tasks: int


@dataclass
class JobTrace:
    """The complete execution record of one workload run."""

    framework: str  # "spark" | "hadoop"
    workload: str
    input_name: str
    registry: MethodRegistry
    stack_table: StackTable
    machine: MachineConfig
    traces: list[ThreadTrace] = field(default_factory=list)
    stages: list[StageInfo] = field(default_factory=list)
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def label(self) -> str:
        """Short label, e.g. ``wc_sp`` style ``wordcount_spark``."""
        return f"{self.workload}_{self.framework}"

    @property
    def n_threads(self) -> int:
        """Number of (merged) executor threads in the trace."""
        return len(self.traces)

    @property
    def total_instructions(self) -> int:
        """Instructions across all threads."""
        return sum(t.total_instructions for t in self.traces)

    @property
    def total_cycles(self) -> int:
        """Cycles across all threads."""
        return sum(t.total_cycles for t in self.traces)

    def thread(self, thread_id: int = 0) -> ThreadTrace:
        """The trace of one executor thread (SimProf profiles one)."""
        for t in self.traces:
            if t.thread_id == thread_id:
                return t
        raise KeyError(f"no thread {thread_id} in job trace")

    def longest_thread(self) -> ThreadTrace:
        """The thread that retired the most instructions.

        SimProf profiles a single executor thread; the busiest one gives
        the best stage coverage, so profiling defaults to it.
        """
        if not self.traces:
            raise ValueError("job trace has no threads")
        return max(self.traces, key=lambda t: t.total_instructions)
