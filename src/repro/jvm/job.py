"""Job-level trace container shared by both framework simulators.

A :class:`JobTrace` is everything one workload run leaves behind: the
per-thread segment traces, the interned method/stack tables, stage
metadata, and the machine configuration the trace was priced against.
It is the boundary between the substrates (which produce it) and the
SimProf core (which consumes it only through the JVMTI/perf-style
interfaces).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.jvm.machine import MachineConfig
from repro.jvm.methods import MethodRegistry, StackTable
from repro.jvm.threads import ThreadTrace

__all__ = ["StageInfo", "JobTrace"]


@dataclass(frozen=True, slots=True)
class StageInfo:
    """Metadata for one execution stage of the job."""

    stage_id: int
    name: str
    n_tasks: int


@dataclass
class JobTrace:
    """The complete execution record of one workload run."""

    framework: str  # "spark" | "hadoop"
    workload: str
    input_name: str
    registry: MethodRegistry
    stack_table: StackTable
    machine: MachineConfig
    traces: list[ThreadTrace] = field(default_factory=list)
    stages: list[StageInfo] = field(default_factory=list)
    meta: dict[str, Any] = field(default_factory=dict)
    # id → trace index, keyed by the trace-list length so appends
    # invalidate it.  thread() sits in per-unit profiler loops, where a
    # linear scan per lookup multiplies out to O(units · threads).
    _thread_index: tuple[int, dict[int, ThreadTrace]] | None = field(
        default=None, init=False, repr=False, compare=False
    )

    @classmethod
    def from_stream(cls, stream: Any) -> "JobTrace":
        """Materialise a :class:`~repro.jvm.stream.TraceStream`.

        The adapter that keeps every batch caller working: consume the
        whole stream (driving the underlying run if it is live) and
        assemble the classic in-memory trace.  Thread order follows
        ``ThreadStart`` order, which each substrate emits to match its
        batch ``job_trace()``.

        Events pass through the :class:`~repro.faults.stream.EventGuard`
        first, so duplicated/reordered/corrupt segment batches are
        deduped, resequenced, or repaired; any anomaly lands in
        ``meta["fault_report"]``.  On a clean stream the guard is a
        pass-through and the result is byte-identical to before.
        """
        # Local import: repro.faults.stream depends on repro.jvm.stream.
        from repro.faults.report import FaultReport
        from repro.faults.stream import EventGuard
        from repro.jvm.stream import JobEnd, SegmentBatch, StageEvent, ThreadStart

        job = cls(
            framework=stream.framework,
            workload=stream.workload,
            input_name=stream.input_name,
            registry=stream.registry,
            stack_table=stream.stack_table,
            machine=stream.machine,
        )
        guard = EventGuard(stream)
        by_id: dict[int, ThreadTrace] = {}
        for event in guard.events():
            if isinstance(event, SegmentBatch):
                trace = by_id.get(event.thread_id)
                if trace is None:
                    raise ValueError(
                        f"segment batch for unknown thread {event.thread_id} "
                        "(no ThreadStart seen)"
                    )
                trace.segments.extend(event.segments)
            elif isinstance(event, ThreadStart):
                trace = ThreadTrace(
                    thread_id=event.thread_id,
                    core_id=event.core_id,
                    start_cycle=event.start_cycle,
                )
                by_id[event.thread_id] = trace
                job.traces.append(trace)
            elif isinstance(event, StageEvent):
                job.stages.append(event.info)
            elif isinstance(event, JobEnd):
                job.meta.update(event.meta)
        FaultReport.merged_meta(job.meta, guard.report)
        return job

    @property
    def label(self) -> str:
        """Short label, e.g. ``wc_sp`` style ``wordcount_spark``."""
        return f"{self.workload}_{self.framework}"

    @property
    def n_threads(self) -> int:
        """Number of (merged) executor threads in the trace."""
        return len(self.traces)

    @property
    def total_instructions(self) -> int:
        """Instructions across all threads (per-thread totals cached)."""
        return sum(t.total_instructions for t in self.traces)

    @property
    def total_cycles(self) -> int:
        """Cycles across all threads (per-thread totals cached)."""
        return sum(t.total_cycles for t in self.traces)

    def thread(self, thread_id: int = 0) -> ThreadTrace:
        """The trace of one executor thread (SimProf profiles one)."""
        index = self._thread_index
        if index is None or index[0] != len(self.traces):
            by_id: dict[int, ThreadTrace] = {}
            for t in self.traces:
                by_id.setdefault(t.thread_id, t)  # first wins, like the scan
            index = (len(self.traces), by_id)
            self._thread_index = index
        try:
            return index[1][thread_id]
        except KeyError:
            raise KeyError(f"no thread {thread_id} in job trace") from None

    def longest_thread(self) -> ThreadTrace:
        """The thread that retired the most instructions.

        SimProf profiles a single executor thread; the busiest one gives
        the best stage coverage, so profiling defaults to it.
        """
        if not self.traces:
            raise ValueError("job trace has no threads")
        return max(self.traces, key=lambda t: t.total_instructions)
