"""Zero-copy trace-event transport across a process boundary.

:func:`pump_events` moves columnar :class:`~repro.jvm.stream.SegmentBatch`
payloads by reference, which is free between threads but not between
processes — a naive ``multiprocessing`` queue would pickle every batch,
copying the packed buffer twice.  This module keeps the zero-copy
property across the boundary with ``multiprocessing.shared_memory``:

* :func:`send_stream` (producer process) iterates a
  :class:`~repro.jvm.stream.TraceStream`; each batch's packed
  :data:`~repro.jvm.segments.SEGMENT_DTYPE` buffer is written into its
  own shared-memory block and only a small picklable
  :class:`ShmBatchRef` (block name, row count, seq, checksum) crosses
  the queue.  Non-batch events (``ThreadStart``/``StageEvent``/
  ``JobEnd``) and the stream header are pickled as-is — they are tiny.
* :func:`recv_stream` (consumer process) rebuilds a ``TraceStream``
  whose batches wrap the shared blocks as zero-copy ndarray views; the
  checksum travels with the ref, so the consumer-side
  :class:`~repro.faults.stream.EventGuard` verifies the buffer
  end-to-end across the boundary.

Block lifecycle: the producer closes its mapping right after writing
(the block itself persists until unlinked).  The consumer unlinks each
block one event *after* yielding it — when the consumer asks for event
``k+1`` it has, by the stream contract, finished with batch ``k-1``'s
buffer (its loop variable still pins batch ``k``), so the one-event lag
makes eager reclamation safe and keeps shared memory bounded by the
in-flight window.  Consumers that retain a batch beyond the next event
must copy its ``data`` first (``EventGuard`` hold-back and replay
buffers only retain batches on faulty streams; route those through an
in-process pump instead).  When the iterator closes or is garbage
collected, its open blocks are reclaimed and any refs already sitting
in the queue are drained and unlinked best-effort.
"""

from __future__ import annotations

from collections import deque
from multiprocessing import shared_memory
from typing import Any, Iterator

import numpy as np

from repro.jvm.segments import SEGMENT_DTYPE
from repro.jvm.stream import JobEnd, SegmentBatch, TraceEvent, TraceStream

__all__ = [
    "ShmBatchRef",
    "ShmStreamHeader",
    "ShmStreamTrailer",
    "send_stream",
    "recv_stream",
]


class ShmBatchRef:
    """Picklable handle to a segment batch parked in shared memory."""

    __slots__ = ("name", "length", "thread_id", "seq", "checksum")

    def __init__(
        self, name: str, length: int, thread_id: int, seq: int, checksum: int
    ) -> None:
        self.name = name
        self.length = length
        self.thread_id = thread_id
        self.seq = seq
        self.checksum = checksum

    def __getstate__(self) -> tuple:
        return (self.name, self.length, self.thread_id, self.seq, self.checksum)

    def __setstate__(self, state: tuple) -> None:
        self.name, self.length, self.thread_id, self.seq, self.checksum = state


class ShmStreamHeader:
    """First queue message: the stream's shared context."""

    __slots__ = (
        "framework",
        "workload",
        "input_name",
        "registry",
        "stack_table",
        "machine",
    )

    def __init__(self, stream: TraceStream) -> None:
        self.framework = stream.framework
        self.workload = stream.workload
        self.input_name = stream.input_name
        self.registry = stream.registry
        self.stack_table = stream.stack_table
        self.machine = stream.machine


class ShmStreamTrailer:
    """Last data message: the stream's *completed* shared context.

    The header crosses the queue before the run starts, so when the
    producer lives in another process its pickled registry and stack
    table are frozen half-empty — both keep interning while the
    workload runs.  The trailer re-ships them once the run is done;
    :func:`recv_stream` patches its stream in place, so by the time the
    consumer's iteration finishes (when featurization first needs
    them) the context is complete.  In-process pumps share the live
    objects and the patch is a harmless no-op.
    """

    __slots__ = ("registry", "stack_table")

    def __init__(self, stream: TraceStream) -> None:
        self.registry = stream.registry
        self.stack_table = stream.stack_table

    def __getstate__(self) -> tuple:
        return (self.registry, self.stack_table)

    def __setstate__(self, state: tuple) -> None:
        self.registry, self.stack_table = state


class _ShmDone:
    """End-of-stream sentinel (pickles to a fresh but equal instance)."""

    __slots__ = ()


def send_stream(stream: TraceStream, queue: Any) -> None:
    """Ship ``stream`` over ``queue``, batches via shared memory.

    Blocks until the stream is exhausted; the paired consumer calls
    :func:`recv_stream` on the other end of the queue.  ``queue`` is
    any object with ``put`` (``multiprocessing.Queue`` or a duck-typed
    stand-in for tests).
    """
    queue.put(ShmStreamHeader(stream))
    trailer_sent = False
    for event in stream:
        # The trailer must precede JobEnd: consumers react to JobEnd
        # while still iterating (e.g. the EventGuard flushes its
        # repairs there) and need the completed context by then.
        if isinstance(event, JobEnd) and not trailer_sent:
            queue.put(ShmStreamTrailer(stream))
            trailer_sent = True
        if isinstance(event, SegmentBatch):
            data = event.data
            block = shared_memory.SharedMemory(
                create=True, size=max(1, data.nbytes)
            )
            try:
                if len(data):
                    view = np.ndarray(
                        len(data), dtype=SEGMENT_DTYPE, buffer=block.buf
                    )
                    view[:] = data
                    del view
                ref = ShmBatchRef(
                    block.name,
                    len(data),
                    event.thread_id,
                    event.seq,
                    event.checksum,
                )
            except BaseException:
                # The ref never reached the queue, so no consumer will
                # ever unlink this block — reclaim it here before the
                # error unwinds past us.
                block.close()
                block.unlink()
                raise
            # The block outlives the producer's mapping; the consumer
            # unlinks it once the batch has been consumed.
            block.close()
            queue.put(ref)
        else:
            queue.put(event)
    if not trailer_sent:
        queue.put(ShmStreamTrailer(stream))
    queue.put(_ShmDone())


def _shm_events(queue: Any) -> Iterator[TraceEvent]:
    # (name -> SharedMemory) of blocks the consumer may still be
    # reading; reclaimed with a one-event lag (see module docstring).
    open_blocks: deque[shared_memory.SharedMemory] = deque()

    def reclaim(keep_last: int) -> None:
        while len(open_blocks) > keep_last:
            block = open_blocks.popleft()
            try:
                block.close()
                block.unlink()
            except BufferError:  # consumer still holds a view; leave it
                open_blocks.append(block)
                return

    try:
        while True:
            item = queue.get()
            if isinstance(item, _ShmDone):
                return
            if isinstance(item, ShmBatchRef):
                block = shared_memory.SharedMemory(name=item.name)
                # Register the block *before* building views on it: if
                # the ndarray or batch construction raises, the closing
                # ``reclaim(0)`` below must already own the mapping.
                open_blocks.append(block)
                data: np.ndarray = np.ndarray(
                    item.length, dtype=SEGMENT_DTYPE, buffer=block.buf
                )
                data.setflags(write=False)
                batch = SegmentBatch(
                    item.thread_id,
                    data,
                    seq=item.seq,
                    checksum=item.checksum,
                )
                del data
                try:
                    yield batch
                finally:
                    # Drop our own reference before reclaiming — on an
                    # abandoned iterator (GeneratorExit) this frame
                    # would otherwise pin the current block through the
                    # closing reclaim.  Back from the consumer, it pins
                    # at most this batch, so older blocks are
                    # reclaimable.
                    del batch
                    reclaim(1)
            else:
                yield item
    finally:
        reclaim(0)
        _drain_pending(queue)


def _drain_pending(queue: Any) -> None:
    """Best-effort unlink of refs still queued when the consumer quits.

    An abandoned iterator leaves the blocks of never-received batches
    parked in shared memory; reclaim whatever has already arrived.  A
    producer still mid-``send_stream`` can race this (its later blocks
    are only reclaimed if the consumer drains again), which is why
    fault-prone streams belong on an in-process pump instead.
    """
    get_nowait = getattr(queue, "get_nowait", None)
    if get_nowait is None:
        return
    while True:
        try:
            item = get_nowait()
        except Exception:  # queue.Empty, or a duck-typed equivalent
            return
        if isinstance(item, _ShmDone):
            return
        if isinstance(item, ShmBatchRef):
            try:
                block = shared_memory.SharedMemory(name=item.name)
            except FileNotFoundError:
                continue
            block.close()
            block.unlink()


def recv_stream(queue: Any) -> TraceStream:
    """Rebuild the :class:`TraceStream` a paired :func:`send_stream` ships.

    Blocks until the header message arrives.  The returned stream's
    batches are zero-copy views of the producer's shared-memory blocks;
    iterate it exactly like an in-process stream.
    """
    header = queue.get()
    if not isinstance(header, ShmStreamHeader):
        raise ValueError(
            f"expected an ShmStreamHeader first, got {type(header).__name__}"
        )
    stream = TraceStream(
        framework=header.framework,
        workload=header.workload,
        input_name=header.input_name,
        registry=header.registry,
        stack_table=header.stack_table,
        machine=header.machine,
        events=iter(()),
    )

    def events() -> Iterator[TraceEvent]:
        for item in _shm_events(queue):
            if isinstance(item, ShmStreamTrailer):
                stream.registry = item.registry
                stream.stack_table = item.stack_table
                continue
            yield item

    stream.events = events()
    return stream
