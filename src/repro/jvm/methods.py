"""Methods, frames and call stacks of the simulated JVM.

Everything SimProf learns about *what code ran* comes through call
stacks, so this module is the vocabulary of the whole system.  Methods
and stacks are interned to small integers:

* a :class:`MethodRegistry` maps fully-qualified method names to dense
  method ids (the feature-vector dimensions of Section III-B), and
* a :class:`StackTable` maps whole stacks (tuples of method ids,
  root -> leaf) to dense stack ids so trace segments and snapshots carry
  a single integer instead of a frame list.

Interning keeps the profiler and the vectoriser pure array code: a
sampling unit is summarised by a histogram over stack ids, which is
scattered into a histogram over method ids with one ``np.add.at``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["MethodRef", "MethodRegistry", "CallStack", "StackTable"]


@dataclass(frozen=True, slots=True)
class MethodRef:
    """A resolved JVM method: ``class_name.method_name``.

    Equality and hashing are by value so a :class:`MethodRef` can be used
    as a dict key before it is interned.
    """

    class_name: str
    method_name: str

    @property
    def fqn(self) -> str:
        """Fully qualified name, e.g. ``org.apache.spark.rdd.RDD.map``."""
        return f"{self.class_name}.{self.method_name}"

    @property
    def simple_class(self) -> str:
        """Class name without the package prefix."""
        return self.class_name.rsplit(".", 1)[-1]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.fqn


class MethodRegistry:
    """Dense interning of :class:`MethodRef` objects to method ids.

    The registry is append-only: ids are assigned in first-seen order and
    never reused, so arrays indexed by method id stay valid as new
    methods appear.  A single registry is shared by every component of a
    simulated job (frameworks, workloads, the JVM runtime frames).
    """

    def __init__(self) -> None:
        self._refs: list[MethodRef] = []
        self._ids: dict[MethodRef, int] = {}

    def __len__(self) -> int:
        return len(self._refs)

    def __contains__(self, ref: MethodRef) -> bool:
        return ref in self._ids

    def intern(self, class_name: str, method_name: str) -> int:
        """Return the id for ``class_name.method_name``, interning it."""
        ref = MethodRef(class_name, method_name)
        return self.intern_ref(ref)

    def intern_ref(self, ref: MethodRef) -> int:
        """Return the id of ``ref``, assigning a fresh one if unseen."""
        mid = self._ids.get(ref)
        if mid is None:
            mid = len(self._refs)
            self._ids[ref] = mid
            self._refs.append(ref)
        return mid

    def lookup(self, method_id: int) -> MethodRef:
        """Resolve a method id back to its :class:`MethodRef`."""
        return self._refs[method_id]

    def id_of(self, ref: MethodRef) -> int:
        """Return the id of an already-interned method.

        Raises
        ------
        KeyError
            If ``ref`` was never interned.
        """
        return self._ids[ref]

    def fqn(self, method_id: int) -> str:
        """Fully qualified name for a method id."""
        return self._refs[method_id].fqn

    def all_refs(self) -> Sequence[MethodRef]:
        """All interned methods in id order (a read-only view)."""
        return tuple(self._refs)

    def find(self, substring: str) -> list[int]:
        """Method ids whose fully-qualified name contains ``substring``."""
        return [i for i, r in enumerate(self._refs) if substring in r.fqn]


@dataclass(frozen=True, slots=True)
class CallStack:
    """An immutable call stack, root frame first, leaf frame last.

    ``frames`` holds method ids relative to a :class:`MethodRegistry`.
    Stacks compare and hash by their frames only, which is what both the
    stack table and the snapshot machinery need.
    """

    frames: tuple[int, ...]

    def __len__(self) -> int:
        return len(self.frames)

    def __iter__(self) -> Iterator[int]:
        return iter(self.frames)

    @property
    def leaf(self) -> int:
        """Method id of the innermost (currently executing) frame."""
        return self.frames[-1]

    @property
    def root(self) -> int:
        """Method id of the outermost frame (thread entry point)."""
        return self.frames[0]

    def push(self, method_id: int) -> "CallStack":
        """Return a new stack with ``method_id`` pushed as the leaf."""
        return CallStack(self.frames + (method_id,))

    def push_all(self, method_ids: Iterable[int]) -> "CallStack":
        """Return a new stack with all of ``method_ids`` pushed in order."""
        return CallStack(self.frames + tuple(method_ids))

    def pop(self) -> "CallStack":
        """Return a new stack with the leaf frame removed."""
        if len(self.frames) <= 1:
            raise ValueError("cannot pop the root frame of a call stack")
        return CallStack(self.frames[:-1])

    def render(self, registry: MethodRegistry, indent: str = "  ") -> str:
        """Human-readable rendering (one frame per line, root first)."""
        return "\n".join(
            f"{indent * depth}{registry.fqn(mid)}"
            for depth, mid in enumerate(self.frames)
        )


@dataclass
class StackTable:
    """Dense interning of call stacks to stack ids.

    Keeps, per stack id, the frame tuple; exposes bulk conversion of
    stack-id histograms into method-id histograms for the vectoriser.
    """

    registry: MethodRegistry
    _stacks: list[CallStack] = field(default_factory=list)
    _ids: dict[tuple[int, ...], int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self._stacks)

    def intern(self, stack: CallStack) -> int:
        """Return the id for ``stack``, interning it if unseen."""
        sid = self._ids.get(stack.frames)
        if sid is None:
            sid = len(self._stacks)
            self._ids[stack.frames] = sid
            self._stacks.append(stack)
        return sid

    def lookup(self, stack_id: int) -> CallStack:
        """Resolve a stack id back to its :class:`CallStack`."""
        return self._stacks[stack_id]

    def frames_of(self, stack_id: int) -> tuple[int, ...]:
        """Frame tuple (method ids, root first) for a stack id."""
        return self._stacks[stack_id].frames

    def method_histogram(
        self, stack_ids: np.ndarray, counts: np.ndarray | None = None
    ) -> np.ndarray:
        """Histogram over *method ids* from a histogram over stack ids.

        Each occurrence of a stack contributes 1 to every method on it
        (Section III-B: "all methods appearing in the call stacks in one
        sampling unit need to be counted").

        Parameters
        ----------
        stack_ids:
            Stack ids observed (possibly with repeats) in one sampling
            unit, or unique ids if ``counts`` is given.
        counts:
            Optional multiplicity per entry of ``stack_ids``.

        Returns
        -------
        numpy.ndarray
            Float vector of length ``len(self.registry)``.
        """
        hist = np.zeros(len(self.registry), dtype=np.float64)
        stack_ids = np.asarray(stack_ids, dtype=np.intp)
        if counts is None:
            counts = np.ones(len(stack_ids), dtype=np.float64)
        else:
            counts = np.asarray(counts, dtype=np.float64)
        for sid, cnt in zip(stack_ids, counts):
            frames = self._stacks[sid].frames
            np.add.at(hist, np.fromiter(frames, dtype=np.intp), cnt)
        return hist

    def render(self, stack_id: int) -> str:
        """Human-readable rendering of a stack id."""
        return self._stacks[stack_id].render(self.registry)
