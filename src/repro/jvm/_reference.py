"""Pre-columnar reference implementations of the trace-plane wire code.

The per-segment Python loops the columnar trace plane replaced, kept —
per the ``_reference`` parity pattern — as oracles the parity tests
check the vectorised code against bit for bit:

* :func:`reference_segment_checksum` — the historical pack-and-fold
  CRC-32 loop over :class:`~repro.jvm.threads.TraceSegment` objects.
  Because CRC-32 chains over concatenation, the columnar
  :func:`repro.jvm.segments.segment_checksum` (one ``crc32`` over the
  packed buffer) must produce the identical value for identical batch
  content; the tests assert it does, which is the guarantee that lets
  old-format (object) and new-format (columnar) batches coexist in one
  stream and verify through one path.

Nothing here is exported from :mod:`repro.jvm`; production code must
not import this module.
"""

from __future__ import annotations

import struct
import zlib
from typing import Sequence

from repro.jvm.threads import OP_KIND_CODES, TraceSegment

__all__ = ["reference_segment_checksum"]

_SEGMENT_PACK = struct.Struct("<qqqqqqqq")


def reference_segment_checksum(segments: Sequence[TraceSegment]) -> int:
    """The pre-columnar per-segment pack loop (the parity oracle)."""
    crc = 0
    for s in segments:
        crc = zlib.crc32(
            _SEGMENT_PACK.pack(
                s.stack_id,
                OP_KIND_CODES[s.op_kind],
                s.instructions,
                s.cycles,
                s.l1d_misses,
                s.llc_misses,
                s.stage_id,
                s.task_id,
            ),
            crc,
        )
    return crc
