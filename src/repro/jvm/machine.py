"""Analytic hardware model of the simulated testbed.

The paper's testbed is an Intel i7-4820K (4 cores / 8 threads, 32 KB L1D
per core, 10 MB shared LLC) read through ``perf_event``.  Offline we
replace the silicon with an analytic model that turns an *operation
descriptor* — kind of work, number of records, per-record instruction
cost, and a memory :class:`AccessPattern` — into the counter values the
real machine would report:

``cycles = instructions * base_cpi
         + l1d_misses * l1_penalty
         + llc_misses * memory_penalty``

with miss counts derived from a working-set capacity model.  The model
deliberately reproduces the four sources of intra-phase heterogeneity
Section III-B.1 names:

* **data access pattern** — random accesses over a working set larger
  than the (contended) LLC miss; quicksort partitions and hash-map
  reduces therefore get size-dependent CPI,
* **OS scheduling** — a migrated thread pays a cold-cache window
  (elevated miss rates for the first segment on the new core),
* **phase interleaving** — co-scheduled threads share the LLC, so the
  effective capacity seen by one thread shrinks with contention,
* **executed code difference** — base CPI differs by operation kind.

All randomness flows through an explicit ``numpy.random.Generator``.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import NamedTuple

import numpy as np

__all__ = [
    "OpKind",
    "AccessPattern",
    "MachineConfig",
    "CostResult",
    "HardwareModel",
]

CACHE_LINE_BYTES = 64


class OpKind(enum.Enum):
    """Kind of work a trace segment performs.

    The first four values mirror the phase taxonomy of Figure 10
    (map / reduce / sort / IO); the rest are framework and managed-runtime
    overheads that appear in call stacks but rarely dominate a phase.
    """

    MAP = "map"
    REDUCE = "reduce"
    SORT = "sort"
    IO = "io"
    SHUFFLE = "shuffle"
    FRAMEWORK = "framework"
    GC = "gc"

    @property
    def is_phase_type(self) -> bool:
        """Whether this kind is one of the paper's four phase types."""
        return self in (OpKind.MAP, OpKind.REDUCE, OpKind.SORT, OpKind.IO)


@dataclass(frozen=True, slots=True)
class AccessPattern:
    """Memory behaviour of an operation.

    Parameters
    ----------
    kind:
        ``"sequential"`` (streaming scans, prefetch-friendly),
        ``"random"`` (hash probes, key lookups), or ``"pointer"``
        (dependent pointer chasing: GC, tree walks — random and
        unprefetchable).
    working_set_bytes:
        Bytes the operation touches repeatedly; capacity misses appear
        once this exceeds the effective cache size.
    accesses_per_instruction:
        Accesses *to this working set* per executed instruction.  Most
        memory operations of real code hit stack/hot locals and are not
        modelled; only the fraction that reaches the described data
        structure matters for misses.  Defaults by kind: 0.15 for a
        streaming scan, 0.02 for scattered probes, 0.03 for pointer
        chasing.
    """

    kind: str
    working_set_bytes: float
    accesses_per_instruction: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("sequential", "random", "pointer"):
            raise ValueError(f"unknown access-pattern kind: {self.kind!r}")
        if self.working_set_bytes < 0:
            raise ValueError("working_set_bytes must be non-negative")
        if self.accesses_per_instruction is None:
            default = {"sequential": 0.15, "random": 0.02, "pointer": 0.03}
            object.__setattr__(
                self, "accesses_per_instruction", default[self.kind]
            )
        if not 0.0 <= self.accesses_per_instruction <= 1.0:
            raise ValueError("accesses_per_instruction must be in [0, 1]")

    @staticmethod
    def sequential(working_set_bytes: float, api: float = 0.15) -> "AccessPattern":
        """Streaming access over ``working_set_bytes``."""
        return AccessPattern("sequential", working_set_bytes, api)

    @staticmethod
    def random(working_set_bytes: float, api: float = 0.02) -> "AccessPattern":
        """Scattered probes into a structure of ``working_set_bytes``."""
        return AccessPattern("random", working_set_bytes, api)

    @staticmethod
    def pointer(working_set_bytes: float, api: float = 0.03) -> "AccessPattern":
        """Dependent pointer chasing over ``working_set_bytes``."""
        return AccessPattern("pointer", working_set_bytes, api)


# Base CPI by operation kind: JVM map/filter code is branchy but cache
# friendly; sorts are compare/swap heavy; IO is dominated by copies and
# syscall-ish overhead (high CPI even before misses).
_BASE_CPI: dict[OpKind, float] = {
    OpKind.MAP: 0.55,
    OpKind.REDUCE: 0.65,
    OpKind.SORT: 0.80,
    OpKind.IO: 1.10,
    OpKind.SHUFFLE: 0.95,
    OpKind.FRAMEWORK: 0.70,
    OpKind.GC: 0.90,
}


@dataclass(frozen=True, slots=True)
class MachineConfig:
    """Parameters of the simulated machine (defaults: i7-4820K-like).

    ``instruction_scale`` uniformly multiplies every per-record
    instruction cost, letting experiments trade trace resolution against
    runtime without touching workload code.
    """

    cores: int = 4
    smt_per_core: int = 2
    clock_ghz: float = 3.7
    l1d_bytes: int = 32 * 1024
    llc_bytes: int = 10 * 1024 * 1024
    l1_miss_penalty: float = 12.0
    memory_penalty: float = 200.0
    prefetch_efficiency: float = 0.92
    migration_cold_factor: float = 3.0
    migration_probability: float = 0.004
    noise_sigma: float = 0.03
    instruction_scale: float = 1.0
    # Managed-runtime warm-up: early execution runs interpreted/C1 and
    # costs extra cycles, decaying exponentially as the JIT compiles the
    # hot paths.  Off by default (0.0) — the paper profiles long runs
    # where warm-up is negligible; enable to study start-up effects.
    jit_warmup_penalty: float = 0.0
    jit_warmup_scale: float = 2e9

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("need at least one core")
        if not 0.0 <= self.prefetch_efficiency < 1.0:
            raise ValueError("prefetch_efficiency must be in [0, 1)")
        if not 0.0 <= self.migration_probability <= 1.0:
            raise ValueError("migration_probability must be in [0, 1]")
        if self.noise_sigma < 0:
            raise ValueError("noise_sigma must be non-negative")
        if self.jit_warmup_penalty < 0:
            raise ValueError("jit_warmup_penalty must be non-negative")
        if self.jit_warmup_scale <= 0:
            raise ValueError("jit_warmup_scale must be positive")

    @property
    def hardware_threads(self) -> int:
        """Total SMT contexts on the socket."""
        return self.cores * self.smt_per_core

    @property
    def clock_hz(self) -> float:
        """Core clock in Hz (used to convert cycles to wall time)."""
        return self.clock_ghz * 1e9

    def seconds(self, cycles: float) -> float:
        """Wall-clock seconds for a cycle count on one core."""
        return cycles / self.clock_hz


class CostResult(NamedTuple):
    """Counters produced for one trace segment."""

    instructions: int
    cycles: int
    l1d_misses: int
    llc_misses: int

    @property
    def cpi(self) -> float:
        """Cycles per instruction of this segment."""
        return self.cycles / self.instructions if self.instructions else 0.0


@dataclass
class HardwareModel:
    """Turns operation descriptors into hardware-counter values.

    One model instance is shared by all executor threads of a job; it is
    stateless apart from its configuration, so threads can interleave
    calls freely.  Contention (how many threads share the LLC) and
    cold-cache migration flags are supplied per call by the scheduler.
    """

    config: MachineConfig = field(default_factory=MachineConfig)

    # -- miss-rate model -------------------------------------------------

    def _capacity_miss_fraction(self, working_set: float, cache: float) -> float:
        """Fraction of accesses that miss a cache of ``cache`` bytes.

        Uniform random access over a working set ``W`` hits with
        probability ``cache / W`` when ``W > cache`` (the resident
        fraction), so the miss fraction is ``1 - cache / W``; a working
        set that fits produces only a small conflict-miss floor.
        """
        if working_set <= cache:
            return 0.002  # conflict/coherence floor
        return 1.0 - cache / working_set

    def miss_rates(
        self,
        access: AccessPattern,
        *,
        contention: int = 1,
        cold: bool = False,
    ) -> tuple[float, float]:
        """(L1D, LLC) misses **per instruction** for an access pattern.

        ``contention`` is the number of threads sharing the LLC; the
        effective capacity seen by this thread is divided accordingly
        (the paper's *phase interleaving* effect).  ``cold`` applies the
        post-migration cold-cache multiplier.
        """
        cfg = self.config
        eff_llc = cfg.llc_bytes / max(1, contention)
        api = access.accesses_per_instruction

        if access.kind == "sequential":
            # One miss per cache line of fresh data; the L1 streams.
            l1_rate = api / (CACHE_LINE_BYTES / 8)
            if access.working_set_bytes > eff_llc:
                llc_rate = l1_rate  # streaming through memory
            else:
                llc_rate = l1_rate * 0.05
        else:  # random / pointer
            l1_frac = self._capacity_miss_fraction(
                access.working_set_bytes, cfg.l1d_bytes
            )
            llc_frac = self._capacity_miss_fraction(access.working_set_bytes, eff_llc)
            l1_rate = api * max(l1_frac, 0.01)
            llc_rate = api * l1_frac * llc_frac

        if cold:
            l1_rate = min(api, l1_rate * cfg.migration_cold_factor)
            llc_rate = min(l1_rate, llc_rate * cfg.migration_cold_factor)
        return l1_rate, llc_rate

    def _memory_penalty(self, access: AccessPattern) -> float:
        """Effective cycles per LLC miss, after prefetching.

        Hardware prefetchers hide most of the DRAM latency of streaming
        misses; random and especially dependent (pointer) misses pay the
        full round trip.
        """
        cfg = self.config
        if access.kind == "sequential":
            return cfg.memory_penalty * (1.0 - cfg.prefetch_efficiency)
        if access.kind == "pointer":
            return cfg.memory_penalty * 1.15  # dependent chains stall harder
        return cfg.memory_penalty

    # -- cost computation -------------------------------------------------

    def base_cpi(self, op_kind: OpKind) -> float:
        """Miss-free CPI of an operation kind."""
        return _BASE_CPI[op_kind]

    def jit_multiplier(self, retired_instructions: float) -> float:
        """Cycle multiplier from JIT warm-up at a point in the run."""
        cfg = self.config
        if cfg.jit_warmup_penalty <= 0:
            return 1.0
        return 1.0 + cfg.jit_warmup_penalty * math.exp(
            -retired_instructions / cfg.jit_warmup_scale
        )

    def cost(
        self,
        op_kind: OpKind,
        access: AccessPattern,
        instructions: float,
        rng: np.random.Generator,
        *,
        contention: int = 1,
        cold: bool = False,
        retired_instructions: float = 0.0,
    ) -> CostResult:
        """Counter values for a segment executing ``instructions``.

        Parameters
        ----------
        op_kind:
            What the code is doing (selects the base CPI).
        access:
            Memory behaviour of the segment.
        instructions:
            Final instruction count of the segment (``instruction_scale``
            is applied by the trace builder, before chunking).
        rng:
            Source of the multiplicative log-normal noise modelling
            micro-architectural jitter.
        contention:
            Threads sharing the LLC during this segment.
        cold:
            True for the first segment after an OS migration.
        retired_instructions:
            Instructions the thread retired before this segment (drives
            the JIT warm-up multiplier; ignored when warm-up is off).
        """
        cfg = self.config
        insts = max(1, int(round(instructions)))
        l1_rate, llc_rate = self.miss_rates(access, contention=contention, cold=cold)

        l1_misses = insts * l1_rate
        llc_misses = insts * llc_rate
        cycles = (
            insts * self.base_cpi(op_kind)
            + l1_misses * cfg.l1_miss_penalty
            + llc_misses * self._memory_penalty(access)
        )
        cycles *= self.jit_multiplier(retired_instructions)
        if cfg.noise_sigma > 0.0:
            cycles *= math.exp(rng.normal(0.0, cfg.noise_sigma))
        return CostResult(
            instructions=insts,
            cycles=max(1, int(round(cycles))),
            l1d_misses=int(round(l1_misses)),
            llc_misses=int(round(llc_misses)),
        )

    def migration_occurs(self, rng: np.random.Generator) -> bool:
        """Bernoulli draw: does the OS migrate the thread before the
        next segment?  Called by executors once per emitted segment."""
        return bool(rng.random() < self.config.migration_probability)
