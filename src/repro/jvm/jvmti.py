"""JVMTI-like call-stack snapshot interface.

The real SimProf polls ``GetAllStackTraces`` every ~10 M instructions.
:class:`StackSnapshotter` offers the same contract against a simulated
:class:`~repro.jvm.threads.ThreadTrace`: *"what stack was this thread
executing when its instruction counter read X?"* — and nothing more.
The profiler layered on top therefore cannot peek at segment boundaries
or counter values through this interface, exactly like the real tool.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.jvm.threads import ThreadTrace

__all__ = ["StackSnapshot", "StackSnapshotter"]


@dataclass(frozen=True, slots=True)
class StackSnapshot:
    """One polled stack: the thread's instruction offset and the live
    stack id at that instant."""

    instruction_offset: int
    stack_id: int


class StackSnapshotter:
    """Samples the live call stack of a thread at instruction offsets.

    Internally precomputes the cumulative instruction count per segment
    once, so each query is a vectorised ``searchsorted``.
    """

    def __init__(self, trace: ThreadTrace) -> None:
        arrays = trace.to_arrays()
        self._stack_ids = arrays["stack_id"]
        # _cum[i] = instructions completed after segment i; a snapshot at
        # offset x lands in the first segment whose _cum exceeds x.
        self._cum = np.cumsum(arrays["instructions"])
        self._total = int(self._cum[-1]) if len(self._cum) else 0

    @property
    def total_instructions(self) -> int:
        """Instructions retired by the thread over its lifetime."""
        return self._total

    def stack_at(self, instruction_offset: int) -> int:
        """Stack id live when the counter read ``instruction_offset``."""
        if not 0 <= instruction_offset < self._total:
            raise IndexError(
                f"offset {instruction_offset} outside [0, {self._total})"
            )
        idx = int(np.searchsorted(self._cum, instruction_offset, side="right"))
        return int(self._stack_ids[idx])

    def _poll_points(
        self, period: int, offset: int, jitter: float, rng: np.random.Generator | None
    ) -> np.ndarray:
        if period <= 0:
            raise ValueError("snapshot period must be positive")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        first = offset if offset > 0 else period
        if jitter == 0.0 or rng is None:
            return np.arange(first, self._total, period, dtype=np.int64)
        # Jittered polling: inter-poll gaps are period * U(1−j, 1+j),
        # like a real profiling timer that is not phase-locked to the
        # instruction counter.  The expected rate is unchanged.
        n_max = int(self._total // (period * (1.0 - jitter))) + 2
        gaps = period * rng.uniform(1.0 - jitter, 1.0 + jitter, size=n_max)
        points = first + np.concatenate([[0.0], np.cumsum(gaps[:-1])])
        return points[points < self._total].astype(np.int64)

    def snapshots(
        self,
        period: int,
        offset: int = 0,
        *,
        jitter: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> list[StackSnapshot]:
        """Poll the stack every ~``period`` instructions.

        Parameters
        ----------
        period:
            Mean instructions between polls (the paper uses 10 M).
        offset:
            Instruction offset of the first poll (defaults to one full
            period in, matching a timer that starts with the thread).
        jitter:
            Relative jitter of the inter-poll gap (0 = phase-locked).
        rng:
            Required when ``jitter`` > 0.
        """
        points = self._poll_points(period, offset, jitter, rng)
        if len(points) == 0:
            return []
        idx = np.searchsorted(self._cum, points, side="right")
        ids = self._stack_ids[idx]
        return [
            StackSnapshot(int(p), int(s)) for p, s in zip(points, ids)
        ]

    def snapshot_arrays(
        self,
        period: int,
        offset: int = 0,
        *,
        jitter: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Array form of :meth:`snapshots`: (offsets, stack_ids)."""
        points = self._poll_points(period, offset, jitter, rng)
        if len(points) == 0:
            return points, points.copy()
        idx = np.searchsorted(self._cum, points, side="right")
        return points, self._stack_ids[idx].astype(np.int64)
