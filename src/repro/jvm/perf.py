"""perf_event-like hardware-counter interface.

The real SimProf programs ``perf_event`` to report cycles and cache
misses per instruction window.  :class:`PerfCounterReader` provides that
contract over a simulated trace: counter totals for any instruction
interval ``[a, b)`` of a thread.

Within a trace segment counters accrue linearly with instructions (our
hardware model prices a whole batch at a uniform rate), so cumulative
counters can be interpolated exactly at any instruction offset; windows
that straddle segment boundaries are therefore split precisely rather
than rounded to segments.
"""

from __future__ import annotations

import dataclasses
from typing import NamedTuple

import numpy as np

from repro.jvm.threads import ThreadTrace

__all__ = ["CounterWindow", "PerfCounterReader", "apply_counter_glitches"]


class CounterWindow(NamedTuple):
    """Hardware-counter totals over one instruction window."""

    instructions: float
    cycles: float
    l1d_misses: float
    llc_misses: float

    @property
    def cpi(self) -> float:
        """Cycles per instruction over the window."""
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def ipc(self) -> float:
        """Instructions per cycle over the window."""
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def llc_mpki(self) -> float:
        """LLC misses per kilo-instruction."""
        if not self.instructions:
            return 0.0
        return 1000.0 * self.llc_misses / self.instructions


def apply_counter_glitches(
    trace: ThreadTrace,
    *,
    rate: float,
    scale: float,
    rng: np.random.Generator,
) -> tuple[ThreadTrace, int]:
    """Perturb a thread's counter readings, modelling perf multiplexing.

    Real ``perf_event`` sessions occasionally deliver windows whose
    cycle/miss counts are off (counter multiplexing, PMI skid).  Each
    segment is independently glitched with probability ``rate``: its
    ``cycles``, ``l1d_misses`` and ``llc_misses`` are rescaled by a
    factor drawn uniformly from ``[1 - scale, 1 + scale]`` (clamped to
    stay non-negative).  Instruction counts are never touched — the
    instruction clock is ground truth, only derived counters glitch.

    Returns a new :class:`ThreadTrace` plus the number of glitched
    segments; the input trace is left untouched.  With ``rate == 0``
    the original trace object is returned unchanged.
    """
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"rate must be in [0, 1], got {rate!r}")
    if rate == 0.0 or not trace.segments:
        return trace, 0
    n = len(trace.segments)
    hits = rng.random(n) < rate
    factors = 1.0 + scale * (2.0 * rng.random(n) - 1.0)
    segments = list(trace.segments)
    glitched = 0
    for i in np.nonzero(hits)[0]:
        s = segments[i]
        f = max(0.0, float(factors[i]))
        segments[i] = dataclasses.replace(
            s,
            cycles=max(0, int(round(s.cycles * f))),
            l1d_misses=max(0, int(round(s.l1d_misses * f))),
            llc_misses=max(0, int(round(s.llc_misses * f))),
        )
        glitched += 1
    out = ThreadTrace(
        thread_id=trace.thread_id,
        core_id=trace.core_id,
        segments=segments,
        start_cycle=trace.start_cycle,
    )
    return out, glitched


class PerfCounterReader:
    """Reads counter totals for instruction windows of one thread."""

    def __init__(self, trace: ThreadTrace) -> None:
        arrays = trace.to_arrays()
        insts = arrays["instructions"].astype(np.float64)
        zero = np.zeros(1)
        self._cum_i = np.concatenate([zero, np.cumsum(insts)])
        self._cum_c = np.concatenate(
            [zero, np.cumsum(arrays["cycles"].astype(np.float64))]
        )
        self._cum_l1 = np.concatenate(
            [zero, np.cumsum(arrays["l1d_misses"].astype(np.float64))]
        )
        self._cum_llc = np.concatenate(
            [zero, np.cumsum(arrays["llc_misses"].astype(np.float64))]
        )
        self._total = float(self._cum_i[-1])

    @property
    def total_instructions(self) -> float:
        """Instructions retired by the thread."""
        return self._total

    @property
    def total_cycles(self) -> float:
        """Cycles consumed by the thread."""
        return float(self._cum_c[-1])

    def _interp(self, cum: np.ndarray, x: np.ndarray) -> np.ndarray:
        return np.interp(x, self._cum_i, cum)

    def read(self, start: float, stop: float) -> CounterWindow:
        """Counter totals over instruction interval ``[start, stop)``."""
        if not 0 <= start <= stop <= self._total:
            raise ValueError(
                f"window [{start}, {stop}) outside [0, {self._total}]"
            )
        pts = np.array([start, stop], dtype=np.float64)
        c = self._interp(self._cum_c, pts)
        l1 = self._interp(self._cum_l1, pts)
        llc = self._interp(self._cum_llc, pts)
        return CounterWindow(
            instructions=stop - start,
            cycles=float(c[1] - c[0]),
            l1d_misses=float(l1[1] - l1[0]),
            llc_misses=float(llc[1] - llc[0]),
        )

    def read_windows(self, boundaries: np.ndarray) -> list[CounterWindow]:
        """Counter totals for consecutive windows between ``boundaries``.

        ``boundaries`` must be non-decreasing instruction offsets; window
        i covers ``[boundaries[i], boundaries[i+1])``.  Interpolation is
        batched so the cost is one pass regardless of window count.
        """
        b = np.asarray(boundaries, dtype=np.float64)
        if len(b) < 2:
            return []
        if np.any(np.diff(b) < 0):
            raise ValueError("boundaries must be non-decreasing")
        if b[0] < 0 or b[-1] > self._total:
            raise ValueError("boundaries outside the trace")
        c = np.diff(self._interp(self._cum_c, b))
        l1 = np.diff(self._interp(self._cum_l1, b))
        llc = np.diff(self._interp(self._cum_llc, b))
        insts = np.diff(b)
        return [
            CounterWindow(float(i_), float(c_), float(l1_), float(llc_))
            for i_, c_, l1_, llc_ in zip(insts, c, l1, llc)
        ]

    def time_of_instruction(self, offset: float, clock_hz: float) -> float:
        """Wall-clock seconds (thread-local) at an instruction offset."""
        cyc = float(self._interp(self._cum_c, np.array([offset]))[0])
        return cyc / clock_hz

    def instruction_at_time(self, seconds: float, clock_hz: float) -> float:
        """Instruction offset reached after ``seconds`` of thread time."""
        target_cycles = seconds * clock_hz
        return float(np.interp(target_cycles, self._cum_c, self._cum_i))
