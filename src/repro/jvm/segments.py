"""The packed columnar segment format of the trace plane.

Everything that moves trace segments between layers — substrate flush,
the stream pump, the shared-memory channel, the fault guard, the
streaming profiler — moves them as one packed NumPy structured array
per batch instead of per-segment Python objects.  :data:`SEGMENT_DTYPE`
is the wire format: the eight little-endian ``<i8`` identity/counter
fields the batch checksum covers (the same eight the historical
``struct`` pack used), plus a ninth ``cold`` column so a columnar round
trip loses nothing a :class:`~repro.jvm.threads.TraceSegment` carries.

Consumers operate on column slices (``arr["instructions"]``,
``arr["stack_id"]``) and never materialise per-segment objects on the
hot path; :func:`array_to_segments` exists as the one sanctioned
adapter back to the object world (``JobTrace.from_stream``, parity
tests, legacy callers).

:func:`segment_checksum` folds the packed bytes of the eight checksum
fields through a single :func:`zlib.crc32` call.  Because CRC-32 over a
concatenation equals CRC-32 chained over its parts, the value is
bit-identical to the historical per-segment pack-and-fold loop (kept in
:mod:`repro.jvm._reference` as the parity oracle), so old and new
format batches verify interchangeably in a mixed stream.
"""

from __future__ import annotations

import zlib
from typing import Iterable, Sequence, Union

import numpy as np

from repro.jvm.threads import OP_KIND_CODES, OP_KINDS_BY_CODE, TraceSegment

__all__ = [
    "SEGMENT_DTYPE",
    "SEGMENT_FIELDS",
    "CHECKSUM_FIELDS",
    "empty_segment_array",
    "segments_to_array",
    "array_to_segments",
    "segment_checksum",
]

#: The columnar wire format.  Field order of the first eight entries is
#: load-bearing: it matches the historical ``struct.Struct("<qqqqqqqq")``
#: pack, which is what keeps :func:`segment_checksum` values identical
#: across the object-path and columnar-path encoders.
SEGMENT_DTYPE = np.dtype(
    [
        ("stack_id", "<i8"),
        ("op_kind", "<i8"),
        ("instructions", "<i8"),
        ("cycles", "<i8"),
        ("l1d_misses", "<i8"),
        ("llc_misses", "<i8"),
        ("stage_id", "<i8"),
        ("task_id", "<i8"),
        ("cold", "<i8"),
    ]
)

SEGMENT_FIELDS: tuple[str, ...] = tuple(SEGMENT_DTYPE.names)

#: The fields the batch checksum covers (everything but ``cold``, which
#: is profiling metadata the historical pack never included).
CHECKSUM_FIELDS: tuple[str, ...] = SEGMENT_FIELDS[:8]

_N_FIELDS = len(SEGMENT_FIELDS)
_N_CHECKSUM = len(CHECKSUM_FIELDS)


def empty_segment_array() -> np.ndarray:
    """A zero-length packed segment array."""
    return np.empty(0, dtype=SEGMENT_DTYPE)


def segments_to_array(segments: Iterable[TraceSegment]) -> np.ndarray:
    """Pack :class:`TraceSegment` objects into one structured array.

    The object-world → columnar adapter used at substrate flush and by
    the legacy :class:`~repro.jvm.stream.SegmentBatch` constructor;
    one row per segment, ``op_kind`` coded via ``OP_KIND_CODES``.
    """
    rows = [
        (
            s.stack_id,
            OP_KIND_CODES[s.op_kind],
            s.instructions,
            s.cycles,
            s.l1d_misses,
            s.llc_misses,
            s.stage_id,
            s.task_id,
            s.cold,
        )
        for s in segments
    ]
    if not rows:
        return empty_segment_array()
    return np.array(rows, dtype=SEGMENT_DTYPE)


def array_to_segments(data: np.ndarray) -> tuple[TraceSegment, ...]:
    """Materialise packed rows back into :class:`TraceSegment` objects.

    The one sanctioned columnar → object adapter: only the batch-trace
    assembler (``JobTrace.from_stream``), parity tests, and legacy
    consumers pay this cost — hot-path consumers stay on column slices.
    """
    return tuple(
        TraceSegment(
            stack_id=int(row["stack_id"]),
            op_kind=OP_KINDS_BY_CODE[int(row["op_kind"])],
            instructions=int(row["instructions"]),
            cycles=int(row["cycles"]),
            l1d_misses=int(row["l1d_misses"]),
            llc_misses=int(row["llc_misses"]),
            stage_id=int(row["stage_id"]),
            task_id=int(row["task_id"]),
            cold=bool(row["cold"]),
        )
        for row in data  # simprof: ignore[SPA008] -- the one sanctioned adapter
    )


def segment_checksum(
    segments: Union[np.ndarray, Sequence[TraceSegment]],
) -> int:
    """CRC-32 over the packed checksum fields of a segment batch.

    Accepts either a packed :data:`SEGMENT_DTYPE` array or a legacy
    sequence of :class:`TraceSegment` objects (converted first), and
    folds the little-endian bytes of the eight :data:`CHECKSUM_FIELDS`
    through one :func:`zlib.crc32` call.  Deterministic across
    processes (unlike salted ``hash()``), cheap enough to compute at
    emission and again at consumption, and bit-identical to the
    historical per-segment pack loop
    (:func:`repro.jvm._reference.reference_segment_checksum`) for any
    batch content — which is what lets mixed old/new-format streams
    share one verification path.
    """
    if not isinstance(segments, np.ndarray):
        segments = segments_to_array(segments)
    elif segments.dtype != SEGMENT_DTYPE:
        raise TypeError(
            f"expected a SEGMENT_DTYPE array, got dtype {segments.dtype!r}"
        )
    n = len(segments)
    if n == 0:
        return 0
    flat = np.ascontiguousarray(segments).view(np.int64).reshape(n, _N_FIELDS)
    return zlib.crc32(np.ascontiguousarray(flat[:, :_N_CHECKSUM]).tobytes())
