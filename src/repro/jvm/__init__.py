"""Simulated JVM substrate.

The real SimProf attaches to a JVM through JVMTI (call-stack snapshots)
and to the kernel through ``perf_event`` (hardware counters).  Offline we
reproduce that bridge with a simulated JVM:

* :mod:`repro.jvm.methods` — method registry, frames and call stacks,
  interned to integer ids so feature vectorisation is array work.
* :mod:`repro.jvm.threads` — executor threads emit *trace segments*
  (call stack + instructions + cycles + cache misses) as the framework
  simulators execute real computation.
* :mod:`repro.jvm.machine` — the analytic hardware model that converts
  operation descriptors into counter values (base CPI + miss penalties
  from a working-set cache model, LLC sharing, OS-migration cold starts).
* :mod:`repro.jvm.jvmti` / :mod:`repro.jvm.perf` — the JVMTI-like
  snapshot interface and the perf_event-like counter reader that
  SimProf's thread profiler consumes; they see only what the real
  interfaces would expose (stacks at sampled instants, counters per
  window), never the underlying segments.
* :mod:`repro.jvm.segments` / :mod:`repro.jvm.stream` /
  :mod:`repro.jvm.shm` — the columnar trace plane: the packed
  ``SEGMENT_DTYPE`` wire format, the incremental event stream that
  moves batches by reference, and the shared-memory transport that
  keeps batches zero-copy across a process boundary.
"""

from repro.jvm.methods import CallStack, MethodRef, MethodRegistry, StackTable
from repro.jvm.machine import (
    AccessPattern,
    HardwareModel,
    MachineConfig,
    OpKind,
)
from repro.jvm.threads import ThreadTrace, TraceBuilder, TraceSegment
from repro.jvm.jvmti import StackSnapshot, StackSnapshotter
from repro.jvm.perf import CounterWindow, PerfCounterReader
from repro.jvm.job import JobTrace, StageInfo
from repro.jvm.segments import SEGMENT_DTYPE, segment_checksum
from repro.jvm.stream import (
    JobEnd,
    SegmentBatch,
    StageEvent,
    StreamClosed,
    ThreadStart,
    TraceStream,
    pump_events,
    trace_to_stream,
)
from repro.jvm.shm import recv_stream, send_stream

__all__ = [
    "AccessPattern",
    "CallStack",
    "CounterWindow",
    "HardwareModel",
    "JobEnd",
    "JobTrace",
    "MachineConfig",
    "MethodRef",
    "MethodRegistry",
    "OpKind",
    "PerfCounterReader",
    "SEGMENT_DTYPE",
    "SegmentBatch",
    "StackSnapshot",
    "StackSnapshotter",
    "StackTable",
    "StageEvent",
    "StageInfo",
    "StreamClosed",
    "ThreadStart",
    "ThreadTrace",
    "TraceBuilder",
    "TraceSegment",
    "TraceStream",
    "pump_events",
    "recv_stream",
    "segment_checksum",
    "send_stream",
    "trace_to_stream",
]
