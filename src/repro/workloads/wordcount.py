"""WordCount: the canonical micro-benchmark (Figures 14 and 15).

Spark: ``textFile → flatMap(split) → map((w,1)) → reduceByKey(+) →
saveAsTextFile`` — with map-side combine, so the reduce work happens in
stage 1 inside ``Aggregator.combineValuesByKey`` (the paper's Figure 14
observation).

Hadoop: TokenizerMapper → IntSumReducer combiner (map-side reduce,
run during each sort-and-spill) → IntSumReducer — producing the three
Figure 15 phases: map, combine, sort.
"""

from __future__ import annotations

from typing import Any

from repro.datagen.text import TextSpec, synthesize_text
from repro.hadoop.api import Context, Mapper, Reducer
from repro.hadoop.job import HadoopJobConf
from repro.hadoop.runtime import HadoopCluster
from repro.spark.context import SparkContext
from repro.workloads.base import Workload, WorkloadInput

__all__ = ["WordCount", "TokenizerMapper", "IntSumReducer"]

BASE_LINES = 48_000
# A 10 G corpus has a six-figure vocabulary; at our scale this makes the
# combiner maps grow through the (contended) LLC, reproducing the
# data-dependent reduce behaviour the paper analyses.
VOCAB = 150_000
WORDS_PER_LINE = 12.0


class TokenizerMapper(Mapper):
    """Hadoop's classic WordCount mapper."""

    frames = (
        ("org.apache.hadoop.mapreduce.Mapper", "run"),
        ("org.apache.hadoop.examples.WordCount$TokenizerMapper", "map"),
        ("java.util.StringTokenizer", "nextToken"),
    )
    inst_per_record = 300_000.0  # per input line: tokenize + emit pairs

    def map(self, key: Any, value: str, context: Context) -> None:
        for word in value.split():
            context.write(word, 1)


class IntSumReducer(Reducer):
    """Sums counts; used as both combiner and reducer."""

    frames = (
        ("org.apache.hadoop.mapreduce.Reducer", "run"),
        ("org.apache.hadoop.examples.WordCount$IntSumReducer", "reduce"),
    )
    inst_per_record = 60_000.0  # per value merged

    def reduce(self, key: Any, values: Any, context: Context) -> None:
        context.write(key, sum(values))


class WordCount(Workload):
    """Count word occurrences in a synthetic Zipf corpus."""

    name = "wordcount"
    abbrev = "wc"
    workload_type = "Microbench"
    paper_input = "10G text"
    spark_inst_scale = 4.0
    hadoop_inst_scale = 6.0

    def prepare_input(self, fs: Any, inp: WorkloadInput) -> dict[str, Any]:
        n_lines = max(1000, int(BASE_LINES * inp.scale))
        spec = TextSpec(
            n_lines=n_lines,
            vocab_size=VOCAB,
            words_per_line=WORDS_PER_LINE,
            zipf_s=float(inp.params.get("zipf_s", 1.02)),
        )
        lines = synthesize_text(spec, inp.seed)
        # One wave of big tasks: large per-task combiner maps / spill
        # buffers, like the paper's 128 MB-split deployment.
        fs.write("/in/wordcount", lines, block_records=max(500, n_lines // 8))
        return {"path": "/in/wordcount", "n_lines": n_lines}

    def run_spark(self, ctx: SparkContext, meta: dict[str, Any]) -> None:
        counts = (
            ctx.text_file(meta["path"])
            .flat_map(
                lambda line: line.split(),
                "org.apache.spark.examples.WordCount$$anonfun$1.apply",
                inst_per_record=300_000.0,
            )
            .map(
                lambda w: (w, 1),
                "org.apache.spark.examples.WordCount$$anonfun$2.apply",
                inst_per_record=90_000.0,
            )
            .reduce_by_key(lambda a, b: a + b)
        )
        counts.save_as_text_file("/out/wordcount")

    def run_hadoop(self, cluster: HadoopCluster, meta: dict[str, Any]) -> None:
        conf = HadoopJobConf(
            name="wordcount",
            mapper=TokenizerMapper(),
            combiner=IntSumReducer(),
            reducer=IntSumReducer(),
            # Fewer reducers -> larger per-partition spill sorts, like
            # the paper's tuned deployment (bigger buffers, fewer files).
            n_reduces=2,
            sort_buffer_bytes=float(meta["n_lines"]) * 120.0,
        )
        cluster.run_job(conf, meta["path"], "/out/wordcount")
