"""Table I workloads: six benchmarks, each on Spark and Hadoop."""

from repro.workloads.base import Workload, WorkloadInput
from repro.workloads.registry import (
    WORKLOADS,
    all_labels,
    get_workload,
    label_of,
    run_workload,
    run_workload_stream,
)
from repro.workloads.worker import (
    resolve_transport,
    shm_available,
    stream_in_worker,
)

__all__ = [
    "WORKLOADS",
    "Workload",
    "WorkloadInput",
    "all_labels",
    "get_workload",
    "label_of",
    "resolve_transport",
    "run_workload",
    "run_workload_stream",
    "shm_available",
    "stream_in_worker",
]
