"""Table I workloads: six benchmarks, each on Spark and Hadoop."""

from repro.workloads.base import Workload, WorkloadInput
from repro.workloads.registry import (
    WORKLOADS,
    all_labels,
    get_workload,
    label_of,
    run_workload,
    run_workload_stream,
)

__all__ = [
    "WORKLOADS",
    "Workload",
    "WorkloadInput",
    "all_labels",
    "get_workload",
    "label_of",
    "run_workload",
    "run_workload_stream",
]
