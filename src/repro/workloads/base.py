"""Workload abstraction.

A workload (Table I row) knows how to synthesise its input, run on the
Spark simulator, and run on the Hadoop simulator.  ``scale`` multiplies
the default input volume: 1.0 is calibrated so the profiled executor
thread retires a few hundred 100 M-instruction sampling units (the same
order as the paper's setup) while a run completes offline in seconds.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any

from repro.datagen.seeds import GraphInput
from repro.hadoop.runtime import HadoopCluster
from repro.jvm.job import JobTrace
from repro.spark.context import SparkContext

__all__ = ["WorkloadInput", "Workload"]


@dataclass(frozen=True, slots=True)
class WorkloadInput:
    """Input selector for a workload run.

    ``scale`` stretches/shrinks the default volume; ``graph`` picks a
    Table II input for the graph workloads (defaults to the training
    input); ``seed`` drives the data synthesiser.
    """

    name: str = "default"
    scale: float = 1.0
    seed: int = 0
    graph: GraphInput | None = None
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError("scale must be positive")


class Workload(abc.ABC):
    """One benchmark: input synthesis + a Spark and a Hadoop dataflow."""

    #: full name, e.g. ``"wordcount"``
    name: str = ""
    #: paper abbreviation, e.g. ``"wc"``
    abbrev: str = ""
    #: Table I type column
    workload_type: str = ""
    #: Table I input-size column (the paper's full-scale input)
    paper_input: str = ""
    #: whether this workload consumes a Table II graph input
    is_graph: bool = False
    #: per-workload calibration of ``MachineConfig.instruction_scale``:
    #: chosen so the profiled executor thread of a scale-1.0 run retires
    #: on the order of a thousand 100 M-instruction sampling units (the
    #: job must span far more than the 10-second SECOND baseline window)
    spark_inst_scale: float = 1.0
    hadoop_inst_scale: float = 1.0
    #: per-workload overrides of SparkConfig / HadoopClusterConfig
    #: fields (e.g. an IO-bound workload raising the per-byte IO cost)
    spark_config_overrides: dict[str, Any] = {}
    hadoop_config_overrides: dict[str, Any] = {}
    #: per-workload overrides of HadoopJobConf cost fields, applied by
    #: the workload's own run_hadoop via ``self.hadoop_job_overrides``
    hadoop_job_overrides: dict[str, Any] = {}

    @abc.abstractmethod
    def prepare_input(self, fs: Any, inp: WorkloadInput) -> dict[str, Any]:
        """Synthesise the input onto ``fs``; returns input metadata."""

    @abc.abstractmethod
    def run_spark(self, ctx: SparkContext, meta: dict[str, Any]) -> None:
        """Execute the Spark dataflow (jobs run eagerly on actions)."""

    @abc.abstractmethod
    def run_hadoop(self, cluster: HadoopCluster, meta: dict[str, Any]) -> None:
        """Execute the Hadoop job chain."""

    # -- common entry point -------------------------------------------------

    def _spark_config(self, inp: WorkloadInput, spark_config: Any) -> Any:
        """The Spark config for a run (default: calibrated per workload)."""
        if spark_config is not None:
            return spark_config
        from dataclasses import replace

        from repro.jvm.machine import MachineConfig
        from repro.spark.context import SparkConfig

        machine = replace(MachineConfig(), instruction_scale=self.spark_inst_scale)
        return SparkConfig(
            seed=inp.seed, machine=machine, **self.spark_config_overrides
        )

    def _hadoop_config(self, inp: WorkloadInput, hadoop_config: Any) -> Any:
        """The Hadoop config for a run (default: calibrated per workload)."""
        if hadoop_config is not None:
            return hadoop_config
        from dataclasses import replace

        from repro.hadoop.runtime import HadoopClusterConfig
        from repro.jvm.machine import MachineConfig

        machine = replace(MachineConfig(), instruction_scale=self.hadoop_inst_scale)
        return HadoopClusterConfig(
            seed=inp.seed, machine=machine, **self.hadoop_config_overrides
        )

    def execute(
        self,
        framework: str,
        inp: WorkloadInput,
        *,
        spark_config: Any = None,
        hadoop_config: Any = None,
        faults: Any = None,
    ) -> JobTrace:
        """Run on the chosen framework and return the job trace.

        ``faults`` takes a :class:`~repro.faults.plan.FaultPlan`; the
        substrate injects its cluster faults (task failures, stragglers,
        GC pauses) deterministically.  ``None`` or a null plan leaves
        the run byte-identical to before.
        """
        if framework == "spark":
            ctx = SparkContext(self._spark_config(inp, spark_config), faults=faults)
            meta = self.prepare_input(ctx.fs, inp)
            self.run_spark(ctx, meta)
            return ctx.job_trace(self.name, input_name=inp.name)
        if framework == "hadoop":
            cluster = HadoopCluster(
                self._hadoop_config(inp, hadoop_config), faults=faults
            )
            meta = self.prepare_input(cluster.fs, inp)
            self.run_hadoop(cluster, meta)
            return cluster.job_trace(self.name, input_name=inp.name)
        raise ValueError(f"unknown framework {framework!r} (spark|hadoop)")

    def execute_stream(
        self,
        framework: str,
        inp: WorkloadInput,
        *,
        spark_config: Any = None,
        hadoop_config: Any = None,
        faults: Any = None,
    ) -> Any:
        """Run on the chosen framework, streaming the trace live.

        Returns a :class:`~repro.jvm.stream.TraceStream` whose events
        are produced while the workload executes on a worker thread —
        consuming the stream drives the run.  Segments are dropped
        after emission, so the substrate's ``job_trace()`` is empty
        afterwards; materialise with
        :meth:`~repro.jvm.job.JobTrace.from_stream` when the full trace
        is needed.

        With a :class:`~repro.faults.plan.FaultPlan` in ``faults``, the
        substrate injects cluster faults and the returned stream is
        additionally wrapped with the plan's drop/duplicate/reorder
        faults (plus the replay buffer consumers repair from).
        """
        if framework == "spark":
            ctx = SparkContext(self._spark_config(inp, spark_config), faults=faults)
            meta = self.prepare_input(ctx.fs, inp)
            stream = ctx.stream_trace(
                lambda: self.run_spark(ctx, meta), self.name, input_name=inp.name
            )
        elif framework == "hadoop":
            cluster = HadoopCluster(
                self._hadoop_config(inp, hadoop_config), faults=faults
            )
            meta = self.prepare_input(cluster.fs, inp)
            stream = cluster.stream_trace(
                lambda: self.run_hadoop(cluster, meta),
                self.name,
                input_name=inp.name,
            )
        else:
            raise ValueError(f"unknown framework {framework!r} (spark|hadoop)")
        if faults is not None:
            from repro.faults.stream import inject_stream_faults

            stream = inject_stream_faults(stream, faults)
        return stream
