"""Grep: select lines matching a regular expression.

Map-only on both frameworks (the paper's grep_sp forms a single phase —
Figure 9).  The regex engine really runs, so the per-line compute is
data dependent (match early-out vs full scan).
"""

from __future__ import annotations

import re
from typing import Any

from repro.datagen.text import TextSpec, synthesize_text
from repro.hadoop.api import Context, Mapper
from repro.hadoop.job import HadoopJobConf
from repro.hadoop.runtime import HadoopCluster
from repro.spark.context import SparkContext
from repro.workloads.base import Workload, WorkloadInput

__all__ = ["Grep", "GrepMapper", "DEFAULT_PATTERN"]

BASE_LINES = 64_000
# Matches a couple of hot Zipf-rank word shapes: realistic selectivity.
DEFAULT_PATTERN = r"[a-z]*(ab|qu|zz)[a-z]{2,}"


class GrepMapper(Mapper):
    """Hadoop grep: emit matching lines."""

    frames = (
        ("org.apache.hadoop.mapreduce.Mapper", "run"),
        ("org.apache.hadoop.examples.Grep$RegexMapper", "map"),
        ("java.util.regex.Matcher", "find"),
    )
    inst_per_record = 140_000.0  # regex scan over the line (grep is IO-bound)

    def __init__(self, pattern: str = DEFAULT_PATTERN) -> None:
        self._regex = re.compile(pattern)

    def map(self, key: Any, value: str, context: Context) -> None:
        if self._regex.search(value):
            context.write(key, value)


class Grep(Workload):
    """Filter a synthetic corpus by a regular expression."""

    name = "grep"
    abbrev = "grep"
    workload_type = "Microbench"
    paper_input = "10G text"
    spark_inst_scale = 30.0
    hadoop_inst_scale = 30.0
    # grep does little per-record compute; its time goes to scanning the
    # input, so the IO path dominates (continuously mixed with the
    # regex work -- the single-phase behaviour of Figure 9).
    spark_config_overrides = {"io_read_inst_per_byte": 1300.0}
    hadoop_config_overrides = {}
    hadoop_job_overrides = {}

    def prepare_input(self, fs: Any, inp: WorkloadInput) -> dict[str, Any]:
        n_lines = max(1000, int(BASE_LINES * inp.scale))
        spec = TextSpec(n_lines=n_lines, vocab_size=20_000, zipf_s=1.05)
        lines = synthesize_text(spec, inp.seed)
        fs.write("/in/grep", lines, block_records=max(500, n_lines // 16))
        pattern = str(inp.params.get("pattern", DEFAULT_PATTERN))
        return {"path": "/in/grep", "n_lines": n_lines, "pattern": pattern}

    def run_spark(self, ctx: SparkContext, meta: dict[str, Any]) -> None:
        regex = re.compile(meta["pattern"])
        (
            ctx.text_file(meta["path"])
            .filter(
                lambda line: regex.search(line) is not None,
                "org.apache.spark.examples.Grep$$anonfun$1.apply",
                inst_per_record=140_000.0,
            )
            .save_as_text_file("/out/grep")
        )

    def run_hadoop(self, cluster: HadoopCluster, meta: dict[str, Any]) -> None:
        conf = HadoopJobConf(
            name="grep",
            mapper=GrepMapper(meta["pattern"]),
            reducer=None,  # map-only job
            n_reduces=0,
            **self.hadoop_job_overrides,
        )
        cluster.run_job(conf, meta["path"], "/out/grep")
