"""Sort: order text records by key.

Spark: ``textFile → map(extract key) → sortByKey → saveAsTextFile``
(range partition + per-partition sort).  Hadoop: the framework sort
does all the work — identity mapper, no combiner, identity reducer —
which is why the paper's sort_hp phase mix is dominated by sort and IO.
"""

from __future__ import annotations

from typing import Any

from repro.datagen.text import TextSpec, synthesize_text
from repro.hadoop.api import Context, Mapper, Reducer
from repro.hadoop.job import HadoopJobConf
from repro.hadoop.runtime import HadoopCluster
from repro.spark.context import SparkContext
from repro.workloads.base import Workload, WorkloadInput

__all__ = ["Sort", "SortKeyMapper", "IdentityReducer"]

BASE_LINES = 52_000


def extract_key(line: str) -> tuple[str, str]:
    """Key-value split: the first token keys the record."""
    first, _, _rest = line.partition(" ")
    return (first, line)


class SortKeyMapper(Mapper):
    """Emits ``(first token, line)`` so the framework sort orders lines."""

    frames = (
        ("org.apache.hadoop.mapreduce.Mapper", "run"),
        ("org.apache.hadoop.examples.Sort$SortMapper", "map"),
    )
    inst_per_record = 160_000.0

    def map(self, key: Any, value: str, context: Context) -> None:
        k, v = extract_key(value)
        context.write(k, v)


class IdentityReducer(Reducer):
    """Passes sorted records through to the output."""

    frames = (
        ("org.apache.hadoop.mapreduce.Reducer", "run"),
        ("org.apache.hadoop.examples.Sort$SortReducer", "reduce"),
    )
    inst_per_record = 70_000.0

    def reduce(self, key: Any, values: Any, context: Context) -> None:
        for v in values:
            context.write(key, v)


class Sort(Workload):
    """Globally sort synthetic text lines by their first token."""

    name = "sort"
    abbrev = "sort"
    workload_type = "Microbench"
    paper_input = "10G text"
    spark_inst_scale = 35.0
    hadoop_inst_scale = 35.0

    def prepare_input(self, fs: Any, inp: WorkloadInput) -> dict[str, Any]:
        n_lines = max(1000, int(BASE_LINES * inp.scale))
        spec = TextSpec(
            n_lines=n_lines,
            vocab_size=30_000,
            zipf_s=float(inp.params.get("zipf_s", 1.0)),
            shuffle_ranks=bool(inp.params.get("shuffle_ranks", True)),
        )
        lines = synthesize_text(spec, inp.seed)
        fs.write("/in/sort", lines, block_records=max(500, n_lines // 16))
        return {"path": "/in/sort", "n_lines": n_lines}

    def run_spark(self, ctx: SparkContext, meta: dict[str, Any]) -> None:
        (
            ctx.text_file(meta["path"])
            .map(
                extract_key,
                "org.apache.spark.examples.Sort$$anonfun$1.apply",
                inst_per_record=160_000.0,
            )
            .sort_by_key()
            .map_values(lambda line: line, inst_per_record=40_000.0)
            .save_as_text_file("/out/sort")
        )

    def run_hadoop(self, cluster: HadoopCluster, meta: dict[str, Any]) -> None:
        conf = HadoopJobConf(
            name="sort",
            mapper=SortKeyMapper(),
            combiner=None,  # nothing to combine: keys are unique-ish lines
            reducer=IdentityReducer(),
            n_reduces=cluster.config.n_slots,
            sort_buffer_bytes=float(meta["n_lines"]) * 40.0,
        )
        cluster.run_job(conf, meta["path"], "/out/sort")
