"""Run a workload in a worker process, streaming its trace back.

``simprof profile --stream --worker`` (and any embedder that wants the
workload's compute off the consumer's core) produces the trace in a
child process and consumes it in the parent.  Two transports move the
events across the boundary:

* **shm** — :mod:`repro.jvm.shm`: each ``SegmentBatch``'s packed
  columnar buffer is parked in ``multiprocessing.shared_memory`` and
  only a tiny ref crosses the queue; the consumer gets zero-copy
  ndarray views.
* **queued** — the portable fallback for platforms without usable
  ``shared_memory`` (and for fault-injected streams, whose hold-back
  retention breaks shm's one-event reclamation lag): batches cross the
  queue as picklable ``(thread_id, data, seq, checksum)`` tuples and
  are rebuilt on the consumer side.  One copy per batch, but no shared
  state to reclaim.

``transport="auto"`` picks shm exactly when :func:`shm_available`
reports a working implementation *and* the fault plan injects no
stream faults; the choice is surfaced on the returned stream's
``transport`` attribute.  Either way the consumer sees a normal
:class:`~repro.jvm.stream.TraceStream` — same events, same checksums,
bit-identical profiling results — and the child is joined when the
stream is exhausted or closed.
"""

from __future__ import annotations

import multiprocessing as mp
from dataclasses import asdict
from typing import Any, Iterator

from repro.jvm.stream import JobEnd, SegmentBatch, TraceEvent, TraceStream

__all__ = [
    "shm_available",
    "resolve_transport",
    "stream_in_worker",
    "send_stream_queued",
    "recv_stream_queued",
]


def shm_available() -> bool:
    """True when ``multiprocessing.shared_memory`` actually works here.

    Importing is not enough: platforms without a usable ``/dev/shm``
    (or with it mounted unwritable) fail at allocation time, so probe
    with a one-byte block.
    """
    try:
        from multiprocessing import shared_memory
    except ImportError:
        return False
    try:
        block = shared_memory.SharedMemory(create=True, size=1)
    except OSError:
        return False
    block.close()
    block.unlink()
    return True


def resolve_transport(transport: str, *, faults: Any = None) -> str:
    """Resolve ``auto`` to a concrete transport for this platform/plan."""
    if transport not in ("auto", "shm", "queued"):
        raise ValueError(
            f"transport must be 'auto', 'shm' or 'queued', got {transport!r}"
        )
    if transport != "auto":
        return transport
    stream_faults = faults is not None and getattr(faults, "stream_active", False)
    return "shm" if shm_available() and not stream_faults else "queued"


# -- queued transport (portable fallback) -------------------------------------


class _QueuedHeader:
    """First queue message: the stream's shared context (pickled whole).

    ``replay_window`` is the producer-side replay buffer's window when
    the stream carries one (fault-injected streams), else ``None``.
    """

    __slots__ = (
        "framework",
        "workload",
        "input_name",
        "registry",
        "stack_table",
        "machine",
        "replay_window",
    )

    def __init__(self, stream: TraceStream) -> None:
        self.framework = stream.framework
        self.workload = stream.workload
        self.input_name = stream.input_name
        self.registry = stream.registry
        self.stack_table = stream.stack_table
        self.machine = stream.machine
        replay = getattr(stream, "replay", None)
        self.replay_window = replay.window if replay is not None else None

    def __getstate__(self) -> tuple:
        return tuple(getattr(self, name) for name in self.__slots__)

    def __setstate__(self, state: tuple) -> None:
        for name, value in zip(self.__slots__, state):
            setattr(self, name, value)


class _QueuedDone:
    """End-of-stream sentinel."""

    __slots__ = ()


def send_stream_queued(stream: TraceStream, queue: Any) -> None:
    """Ship ``stream`` over ``queue`` with plain pickling.

    Segment batches cross as ``("batch", thread_id, data, seq,
    checksum)`` tuples — the packed columnar buffer is pickled (one
    copy), everything else travels as-is.  Mirroring the shm
    transport's trailer, the completed registry and stack table are
    re-shipped after the last event: the header's copies were pickled
    before the run interned anything.
    """
    queue.put(_QueuedHeader(stream))
    # A fault-injected stream repairs gaps from its producer-side
    # replay buffer (``stream.replay``), which the consumer process
    # cannot share.  Mirror every store across the queue, in stream
    # order, so the consumer-side EventGuard sees an identical
    # retransmission window and repairs bit-identically.
    replay = getattr(stream, "replay", None)
    pending: list[tuple] = []
    if replay is not None:
        inner_store = replay.store

        def mirrored_store(batch: SegmentBatch) -> None:
            inner_store(batch)
            pending.append(
                ("replay", batch.thread_id, batch.data, batch.seq, batch.checksum)
            )

        replay.store = mirrored_store  # type: ignore[method-assign]
    def trailer() -> tuple:
        return (
            "trailer",
            stream.registry,
            stream.stack_table,
            getattr(stream, "batch_counts", None),
            getattr(stream, "fault_report", None),
        )

    trailer_sent = False
    for event in stream:
        for item in pending:
            queue.put(item)
        pending.clear()
        if isinstance(event, SegmentBatch):
            queue.put(
                ("batch", event.thread_id, event.data, event.seq, event.checksum)
            )
        else:
            # The trailer must precede JobEnd: consumers react to
            # JobEnd while still iterating (the EventGuard flushes its
            # tail-gap repairs there) and need the completed context —
            # registry, stack table, true batch counts — by then.
            if isinstance(event, JobEnd) and not trailer_sent:
                queue.put(trailer())
                trailer_sent = True
            queue.put(event)
    for item in pending:
        queue.put(item)
    if not trailer_sent:
        queue.put(trailer())
    queue.put(_QueuedDone())


def recv_stream_queued(queue: Any) -> TraceStream:
    """Rebuild the stream a paired :func:`send_stream_queued` ships."""
    header = queue.get()
    if not isinstance(header, _QueuedHeader):
        raise ValueError(
            f"expected a queued stream header first, got {type(header).__name__}"
        )
    stream = TraceStream(
        framework=header.framework,
        workload=header.workload,
        input_name=header.input_name,
        registry=header.registry,
        stack_table=header.stack_table,
        machine=header.machine,
        events=iter(()),
    )
    replay = None
    counts: dict[int, int] | None = None
    if header.replay_window is not None:
        from repro.faults.stream import ReplayBuffer

        replay = ReplayBuffer(header.replay_window)
        stream.replay = replay
        # Live dict, same object the guard later reads off the stream;
        # the trailer fills it in place before end of stream.
        counts = {}
        stream.batch_counts = counts

    def events() -> Iterator[TraceEvent]:
        while True:
            item = queue.get()
            if isinstance(item, _QueuedDone):
                return
            if isinstance(item, tuple) and item and item[0] == "batch":
                _, thread_id, data, seq, checksum = item
                yield SegmentBatch(thread_id, data, seq=seq, checksum=checksum)
            elif isinstance(item, tuple) and item and item[0] == "replay":
                _, thread_id, data, seq, checksum = item
                replay.store(
                    SegmentBatch(thread_id, data, seq=seq, checksum=checksum)
                )
            elif isinstance(item, tuple) and item and item[0] == "trailer":
                stream.registry = item[1]
                stream.stack_table = item[2]
                if item[3] is not None and counts is not None:
                    counts.update(item[3])
                if item[4] is not None:
                    stream.fault_report = item[4]
            else:
                yield item

    stream.events = events()
    return stream


# -- the worker ---------------------------------------------------------------


def _worker_main(payload: dict[str, Any], queue: Any) -> None:
    """Child entry point: run the workload, ship its stream back."""
    from repro.datagen.seeds import GRAPH_INPUTS
    from repro.workloads.registry import run_workload_stream

    faults = None
    if payload["faults"] is not None:
        from repro.faults import FaultPlan

        faults = FaultPlan(**payload["faults"])
    stream = run_workload_stream(
        payload["workload"],
        payload["framework"],
        scale=payload["scale"],
        seed=payload["seed"],
        graph=GRAPH_INPUTS[payload["graph_name"]]
        if payload["graph_name"]
        else None,
        input_name=payload["input_name"],
        params=payload["params"],
        faults=faults,
    )
    if payload["transport"] == "shm":
        from repro.jvm.shm import send_stream

        send_stream(stream, queue)
    else:
        send_stream_queued(stream, queue)


def stream_in_worker(
    workload: str,
    framework: str,
    *,
    scale: float = 1.0,
    seed: int = 0,
    graph_name: str | None = None,
    input_name: str | None = None,
    params: dict[str, Any] | None = None,
    faults: Any = None,
    transport: str = "auto",
) -> TraceStream:
    """Streaming twin of ``run_workload_stream`` with the run off-process.

    Spawns a child that executes the workload and sends its trace over
    the resolved transport; returns the consumer-side
    :class:`~repro.jvm.stream.TraceStream` (its ``transport`` attribute
    names the transport in effect).  The child is joined when the
    stream is exhausted or closed; graph inputs are passed by name so
    only small, picklable payloads cross process creation.
    """
    resolved = resolve_transport(transport, faults=faults)
    payload = {
        "workload": workload,
        "framework": framework,
        "scale": scale,
        "seed": seed,
        "graph_name": graph_name,
        "input_name": input_name or graph_name or "default",
        "params": dict(params) if params else None,
        "faults": asdict(faults) if faults is not None else None,
        "transport": resolved,
    }
    queue: Any = mp.Queue()
    proc = mp.Process(target=_worker_main, args=(payload, queue), daemon=True)
    proc.start()
    if resolved == "shm":
        from repro.jvm.shm import recv_stream

        inner = recv_stream(queue)
    else:
        inner = recv_stream_queued(queue)

    def events() -> Iterator[TraceEvent]:
        try:
            yield from inner
            # The transport patched the inner stream's context from its
            # trailer; re-sync the wrapper before consumers featurize.
            stream.registry = inner.registry
            stream.stack_table = inner.stack_table
            report = getattr(inner, "fault_report", None)
            if report is not None:
                stream.fault_report = report
        finally:
            proc.join(timeout=30)
            if proc.is_alive():  # wedged child; don't hang the consumer
                proc.terminate()
                proc.join()

    stream = TraceStream(
        framework=inner.framework,
        workload=inner.workload,
        input_name=inner.input_name,
        registry=inner.registry,
        stack_table=inner.stack_table,
        machine=inner.machine,
        events=events(),
    )
    inner_replay = getattr(inner, "replay", None)
    if inner_replay is not None:  # guards bind replay off the outer stream
        stream.replay = inner_replay
    inner_counts = getattr(inner, "batch_counts", None)
    if inner_counts is not None:  # live dict shared with the transport
        stream.batch_counts = inner_counts
    stream.transport = resolved
    return stream
