"""NaiveBayes training on a labelled Zipf corpus.

Computes the sufficient statistics of a multinomial naive-Bayes text
classifier: per-(class, word) counts and per-class document counts —
two aggregation passes.  Spark runs them as two jobs on the same input
(feature counts via ``reduceByKey``, priors via ``reduceByKey`` on the
labels); Hadoop runs the feature-count job with a combiner, then a
second, smaller prior job.
"""

from __future__ import annotations

from typing import Any

from repro.datagen.text import TextSpec, synthesize_labeled_text
from repro.hadoop.api import Context, Mapper, Reducer
from repro.hadoop.job import HadoopJobConf
from repro.hadoop.runtime import HadoopCluster
from repro.spark.context import SparkContext
from repro.workloads.base import Workload, WorkloadInput
from repro.workloads.wordcount import IntSumReducer

__all__ = ["NaiveBayes", "FeatureCountMapper", "PriorCountMapper"]

BASE_LINES = 40_000
N_CLASSES = 12


def parse_labeled(line: str) -> tuple[str, list[str]]:
    """Split a ``"label\\tword word ..."`` line."""
    label, _, text = line.partition("\t")
    return label, text.split()


class FeatureCountMapper(Mapper):
    """Emits ``((label, word), 1)`` for every token."""

    frames = (
        ("org.apache.hadoop.mapreduce.Mapper", "run"),
        ("org.apache.mahout.classifier.naivebayes.training.IndexInstancesMapper", "map"),
        ("org.apache.mahout.vectorizer.DocumentProcessor", "tokenize"),
    )
    inst_per_record = 380_000.0  # tokenization + feature hashing per line

    def map(self, key: Any, value: str, context: Context) -> None:
        label, words = parse_labeled(value)
        for w in words:
            context.write(f"{label}:{w}", 1)


class PriorCountMapper(Mapper):
    """Emits ``(label, 1)`` per document for the class priors."""

    frames = (
        ("org.apache.hadoop.mapreduce.Mapper", "run"),
        ("org.apache.mahout.classifier.naivebayes.training.WeightsMapper", "map"),
    )
    inst_per_record = 130_000.0

    def map(self, key: Any, value: str, context: Context) -> None:
        label, _, _ = value.partition("\t")
        context.write(label, 1)


class NaiveBayes(Workload):
    """Train naive-Bayes statistics over a labelled corpus."""

    name = "bayes"
    abbrev = "bayes"
    workload_type = "Machine Learning"
    paper_input = "10G text"
    spark_inst_scale = 4.0
    hadoop_inst_scale = 6.0

    def prepare_input(self, fs: Any, inp: WorkloadInput) -> dict[str, Any]:
        n_lines = max(1000, int(BASE_LINES * inp.scale))
        spec = TextSpec(n_lines=n_lines, vocab_size=16_000, zipf_s=1.05)
        lines = synthesize_labeled_text(spec, N_CLASSES, inp.seed)
        fs.write("/in/bayes", lines, block_records=max(500, n_lines // 16))
        return {"path": "/in/bayes", "n_lines": n_lines}

    def run_spark(self, ctx: SparkContext, meta: dict[str, Any]) -> None:
        data = ctx.text_file(meta["path"])
        features = (
            data.flat_map(
                lambda line: [
                    (f"{lbl}:{w}", 1)
                    for lbl, ws in (parse_labeled(line),)
                    for w in ws
                ],
                "org.apache.spark.mllib.classification.NaiveBayes$$anonfun$1.apply",
                inst_per_record=380_000.0,
            )
            .reduce_by_key(lambda a, b: a + b)
        )
        features.save_as_text_file("/out/bayes/features")
        priors = (
            data.map(
                lambda line: (line.partition("\t")[0], 1),
                "org.apache.spark.mllib.classification.NaiveBayes$$anonfun$2.apply",
                inst_per_record=130_000.0,
            )
            .reduce_by_key(lambda a, b: a + b)
        )
        priors.save_as_text_file("/out/bayes/priors")

    def run_hadoop(self, cluster: HadoopCluster, meta: dict[str, Any]) -> None:
        features = HadoopJobConf(
            name="bayes-features",
            mapper=FeatureCountMapper(),
            combiner=IntSumReducer(),
            reducer=IntSumReducer(),
            n_reduces=cluster.config.n_slots,
            sort_buffer_bytes=float(meta["n_lines"]) * 16.0,
        )
        cluster.run_job(features, meta["path"], "/out/bayes/features")
        priors = HadoopJobConf(
            name="bayes-priors",
            mapper=PriorCountMapper(),
            combiner=IntSumReducer(),
            reducer=IntSumReducer(),
            n_reduces=max(1, cluster.config.n_slots // 4),
        )
        cluster.run_job(priors, meta["path"], "/out/bayes/priors")
