"""GraphX-style graph processing on the Spark simulator.

Models how GraphX executes vertex programs: edges live in partitioned
``EdgePartition`` chunks (NumPy arrays); each Pregel superstep runs

1. ``aggregateMessages`` — an edge scan over the *active* edge set that
   gathers source-vertex attributes and emits per-destination messages
   (one Spark job stage; message volume decays with the frontier),
2. a shuffle grouping message chunks by destination vertex partition,
3. ``aggregateUsingIndex`` — the reduce that combines messages per
   vertex (the paper's canonical high-CPI-variance, input-sensitive
   phase in cc_sp), and
4. ``innerJoin`` — applying the aggregated values to the vertex state
   and computing the new frontier.

The numerical work is genuine (NumPy gathers/scatters over real
Kronecker edges), so message volume, frontier decay, and the
working-set sizes that drive CPI all depend on the input topology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.hdfs.filesystem import estimate_record_bytes
from repro.jvm.machine import AccessPattern, OpKind
from repro.spark.context import SparkContext
from repro.spark.ops import CustomOp
from repro.spark.rdd import RDD

__all__ = ["EdgeChunk", "GraphXGraph", "pregel_step"]

CHUNK_EDGES = 8192
# Heap bytes per vertex attribute entry (boxed value + index slot).
VERTEX_ENTRY_BYTES = 48


@dataclass(frozen=True)
class EdgeChunk:
    """A contiguous chunk of one edge partition."""

    src: np.ndarray
    dst: np.ndarray

    @property
    def n_edges(self) -> int:
        """Edges in the chunk."""
        return len(self.src)


def _chunk_edges(edges: np.ndarray, n_partitions: int) -> list[list[EdgeChunk]]:
    """Partition edges by ``src % n_partitions`` and chop into chunks."""
    part = edges[:, 0] % n_partitions
    out: list[list[EdgeChunk]] = []
    for p in range(n_partitions):
        sub = edges[part == p]
        chunks = [
            EdgeChunk(
                src=np.ascontiguousarray(sub[i : i + CHUNK_EDGES, 0]),
                dst=np.ascontiguousarray(sub[i : i + CHUNK_EDGES, 1]),
            )
            for i in range(0, len(sub), CHUNK_EDGES)
        ]
        out.append(chunks or [EdgeChunk(np.empty(0, np.int64), np.empty(0, np.int64))])
    return out


class GraphXGraph:
    """Driver-side handle on a partitioned graph.

    Vertex attributes are held as dense NumPy arrays on the driver (the
    simulator's stand-in for GraphX's co-partitioned ``VertexRDD``);
    edges are an RDD of ``(partition_id, EdgeChunk)`` records.
    """

    def __init__(
        self,
        ctx: SparkContext,
        edges: np.ndarray,
        n_vertices: int,
        n_partitions: int | None = None,
        *,
        load_inst_per_edge: float = 30_000.0,
    ) -> None:
        self.ctx = ctx
        self.n_vertices = n_vertices
        self.n_partitions = n_partitions or ctx.config.default_parallelism
        self._chunked = _chunk_edges(edges, self.n_partitions)
        self.out_degree = np.bincount(edges[:, 0], minlength=n_vertices).astype(
            np.float64
        )

        # Flat record list: (pid, chunk); partition assignment is by pid.
        records = [
            (p, chunk) for p, chunks in enumerate(self._chunked) for chunk in chunks
        ]
        base = ctx.parallelize(records, self.n_partitions)
        # The Figure 11 "phase 1" operation: sequential conversion of
        # the input into GraphX's internal edge representation.
        self.edges: RDD = base.custom_op(
            CustomOp(
                name="mapPartitionsWithIndex",
                frames=(
                    ("org.apache.spark.rdd.RDD", "mapPartitionsWithIndex"),
                    ("org.apache.spark.graphx.impl.EdgePartitionBuilder", "add"),
                    ("org.apache.spark.graphx.GraphLoader$$anonfun$1", "apply"),
                ),
                op_kind=OpKind.MAP,
                batch_fn=lambda batch, _state: batch,
                inst_fn=lambda batch: sum(
                    c.n_edges for _p, c in batch
                ) * load_inst_per_edge,
                access_fn=lambda batch, _state: AccessPattern.sequential(
                    max(1.0, sum(estimate_record_bytes(c.src) * 2 for _p, c in batch))
                ),
            )
        )


def pregel_step(
    graph: GraphXGraph,
    values: np.ndarray,
    active: np.ndarray,
    *,
    gather: Callable[[np.ndarray, np.ndarray], np.ndarray],
    reduce_ufunc: Any,
    reduce_identity: float,
    frames_tag: str,
    gather_inst_per_edge: float = 60_000.0,
    aggregate_inst_per_msg: float = 45_000.0,
    join_inst_per_vertex: float = 55_000.0,
    ship_inst_per_vertex: float = 40_000.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Run one superstep; returns ``(aggregated, received_mask)``.

    ``gather(src_ids, src_values) -> messages`` computes one message per
    active edge; ``reduce_ufunc`` (e.g. ``np.minimum``/``np.add``)
    combines messages per destination.  ``aggregated`` has
    ``reduce_identity`` where a vertex received nothing.

    As in GraphX, a superstep spans several Spark jobs: the
    aggregate-messages job (edge scan → shuffle → aggregateUsingIndex),
    the vertex-update job (``innerJoin``), and the replication job
    (``shipVertexAttributes``) that sends updated attributes back to
    the edge partitions.
    """
    ctx = graph.ctx
    n_parts = graph.n_partitions
    vertex_bytes = graph.n_vertices * VERTEX_ENTRY_BYTES / n_parts

    def aggregate_messages(
        batch: list[tuple[int, EdgeChunk]], _state: Any
    ) -> list[tuple[int, tuple[np.ndarray, np.ndarray]]]:
        out = []
        for _pid, chunk in batch:
            if chunk.n_edges == 0:
                continue
            mask = active[chunk.src]
            if not mask.any():
                continue
            src = chunk.src[mask]
            dst = chunk.dst[mask]
            msgs = gather(src, values[src])
            dst_pid = dst % n_parts
            for p in np.unique(dst_pid):
                sel = dst_pid == p
                out.append((int(p), (dst[sel], msgs[sel])))
        return out

    def gather_access(batch: list[Any], _state: Any) -> AccessPattern:
        # Gathering src attributes touches the resident vertex span of
        # the *distinct* sources in the chunk: skewed graphs concentrate
        # on hubs (small span), flat graphs touch everything.
        spans = 0.0
        for _pid, chunk in batch:
            if chunk.n_edges:
                act = chunk.src[active[chunk.src]]
                if len(act):
                    spans += len(np.unique(act)) * VERTEX_ENTRY_BYTES
        return AccessPattern.random(max(1.0, spans))

    def gather_inst(batch: list[Any]) -> float:
        total = sum(
            int(active[c.src].sum()) for _p, c in batch if c.n_edges
        )
        scan = sum(c.n_edges for _p, c in batch)
        return total * gather_inst_per_edge + scan * 2_000.0

    msgs = graph.edges.custom_op(
        CustomOp(
            name="aggregateMessages",
            frames=(
                ("org.apache.spark.graphx.impl.GraphImpl", "aggregateMessages"),
                (
                    "org.apache.spark.graphx.impl.EdgePartition",
                    "aggregateMessagesEdgeScan",
                ),
                (f"org.apache.spark.graphx.lib.{frames_tag}$$anonfun$sendMessage", "apply"),
            ),
            op_kind=OpKind.MAP,
            batch_fn=aggregate_messages,
            inst_fn=gather_inst,
            access_fn=gather_access,
        )
    )
    grouped = msgs.group_by_key(n_parts)

    def aggregate_using_index(
        batch: list[tuple[int, list[tuple[np.ndarray, np.ndarray]]]], _state: Any
    ) -> list[tuple[int, tuple[np.ndarray, np.ndarray]]]:
        out = []
        for pid, chunks in batch:
            agg = np.full(graph.n_vertices, reduce_identity, dtype=np.float64)
            hit = np.zeros(graph.n_vertices, dtype=bool)
            for dst, vals in chunks:
                reduce_ufunc.at(agg, dst, vals)
                hit[dst] = True
            ids = np.nonzero(hit)[0]
            out.append((pid, (ids, agg[ids])))
        return out

    def aggregate_inst(batch: list[Any]) -> float:
        n_msgs = sum(len(d) for _pid, chunks in batch for d, _v in chunks)
        return n_msgs * aggregate_inst_per_msg

    def aggregate_access(batch: list[Any], _state: Any) -> AccessPattern:
        # Scattering into the per-partition vertex index: working set is
        # the local index plus the incoming message buffers.
        msg_bytes = sum(
            d.nbytes + v.nbytes for _pid, chunks in batch for d, v in chunks
        )
        return AccessPattern.random(max(1.0, vertex_bytes + msg_bytes))

    updates = grouped.custom_op(
        CustomOp(
            name="aggregateUsingIndex",
            frames=(
                ("org.apache.spark.graphx.impl.VertexRDDImpl", "aggregateUsingIndex"),
                (
                    "org.apache.spark.graphx.impl.ShippableVertexPartition",
                    "aggregateUsingIndex",
                ),
            ),
            op_kind=OpKind.REDUCE,
            batch_fn=aggregate_using_index,
            inst_fn=aggregate_inst,
            access_fn=aggregate_access,
        )
    )

    # Job 1: aggregate-messages job ends here; collect the aggregated
    # per-partition updates on the driver.
    update_chunks = updates.collect()

    # Job 2: innerJoin — apply the aggregated values to the vertex state.
    def inner_join(
        batch: list[tuple[int, tuple[np.ndarray, np.ndarray]]], _state: Any
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        return [pair for _pid, pair in batch]

    joined_chunks = (
        ctx.parallelize(update_chunks, n_parts)
        .custom_op(
            CustomOp(
                name="innerJoin",
                frames=(
                    ("org.apache.spark.graphx.impl.VertexRDDImpl", "innerJoin"),
                    (
                        "org.apache.spark.graphx.impl.VertexPartitionBaseOps",
                        "innerJoin",
                    ),
                ),
                op_kind=OpKind.REDUCE,
                batch_fn=inner_join,
                inst_fn=lambda batch: sum(
                    len(pair[0]) for _pid, pair in batch
                ) * join_inst_per_vertex,
                access_fn=lambda batch, _state: AccessPattern.random(
                    max(1.0, vertex_bytes)
                ),
            )
        )
        .collect()
    )

    aggregated = np.full(graph.n_vertices, reduce_identity, dtype=np.float64)
    received = np.zeros(graph.n_vertices, dtype=bool)
    for ids, vals in joined_chunks:
        reduce_ufunc.at(aggregated, ids, vals)
        received[ids] = True

    # Job 3: shipVertexAttributes — replicate the updated attributes to
    # the edge partitions for the next superstep.
    updated_ids = np.nonzero(received)[0]
    if len(updated_ids):
        ship_records = [
            (p, updated_ids[updated_ids % n_parts == p]) for p in range(n_parts)
        ]
        (
            ctx.parallelize(ship_records, n_parts)
            .custom_op(
                CustomOp(
                    name="shipVertexAttributes",
                    frames=(
                        (
                            "org.apache.spark.graphx.impl.RoutingTablePartition",
                            "foreachWithinEdgePartition",
                        ),
                        (
                            "org.apache.spark.graphx.impl.ShippableVertexPartition",
                            "shipVertexAttributes",
                        ),
                    ),
                    op_kind=OpKind.SHUFFLE,
                    batch_fn=lambda batch, _state: batch,
                    inst_fn=lambda batch: sum(
                        len(ids) for _p, ids in batch
                    ) * ship_inst_per_vertex,
                    access_fn=lambda batch, _state: AccessPattern.sequential(
                        max(
                            1.0,
                            sum(len(ids) for _p, ids in batch)
                            * VERTEX_ENTRY_BYTES,
                        )
                    ),
                )
            )
            .count()
        )
    return aggregated, received
