"""Shared helpers for the graph workloads (cc, rank).

The Hadoop implementations iterate over *adjacency-list text files*
(the classic formulation: each line carries a vertex, its state, and
its neighbor list; every iteration is a full MapReduce job whose output
feeds the next).  These helpers build and parse that representation
from a Kronecker edge array.
"""

from __future__ import annotations

import numpy as np

from repro.datagen.seeds import GraphInput, TRAINING_INPUT
from repro.workloads.base import WorkloadInput

__all__ = [
    "resolve_graph",
    "symmetrize",
    "adjacency_lists",
    "adjacency_lines",
    "parse_adjacency_line",
]

# Hadoop runs at a reduced Kronecker scale: its record-at-a-time API
# costs one Python call per record, so the same unit-count target is
# reached with a smaller graph and higher per-record instruction cost.
HADOOP_SCALE_DELTA = -2
# Spark/GraphX processes edge partitions as arrays, so it affords a 4x
# larger graph — big enough that vertex indices and message buffers
# stress the contended LLC (the paper's high-variance aggregate phases).
SPARK_SCALE_DELTA = 2


def resolve_graph(
    inp: WorkloadInput, *, scale_delta: int = 0
) -> tuple[GraphInput, np.ndarray, int]:
    """Materialise the edge list for a workload input.

    Returns ``(graph_input, edges, n_vertices)``; defaults to the
    Table II training input (Google).
    """
    graph = inp.graph or TRAINING_INPUT
    extra = int(np.round(np.log2(max(inp.scale, 1e-9)))) if inp.scale != 1.0 else 0
    edges = graph.edges(seed=inp.seed, scale_delta=scale_delta + extra)
    n_vertices = 1 << max(1, graph.spec.scale + scale_delta + extra)
    return graph, edges, n_vertices


def symmetrize(edges: np.ndarray) -> np.ndarray:
    """Undirected view: every edge in both directions, deduplicated."""
    both = np.vstack([edges, edges[:, ::-1]])
    return np.unique(both, axis=0)


def adjacency_lists(edges: np.ndarray, n_vertices: int) -> list[np.ndarray]:
    """Per-vertex neighbor arrays from an edge list."""
    order = np.argsort(edges[:, 0], kind="stable")
    src_sorted = edges[order, 0]
    dst_sorted = edges[order, 1]
    starts = np.searchsorted(src_sorted, np.arange(n_vertices), side="left")
    stops = np.searchsorted(src_sorted, np.arange(n_vertices), side="right")
    return [dst_sorted[a:b] for a, b in zip(starts, stops)]


def adjacency_lines(
    edges: np.ndarray, n_vertices: int, initial_state: list[str] | str
) -> list[str]:
    """Adjacency text lines ``"node<TAB>state<TAB>n1,n2,..."``.

    ``initial_state`` is either one string for all vertices or a list
    with one string per vertex.
    """
    adj = adjacency_lists(edges, n_vertices)
    if isinstance(initial_state, str):
        states = [initial_state] * n_vertices
    else:
        states = initial_state
    return [
        f"{v}\t{states[v]}\t{','.join(map(str, adj[v]))}"
        for v in range(n_vertices)
    ]


def parse_adjacency_line(line: str) -> tuple[int, str, list[int]]:
    """Inverse of :func:`adjacency_lines` for one line."""
    node_s, state, neigh = line.split("\t", 2)
    neighbors = [int(x) for x in neigh.split(",")] if neigh else []
    return int(node_s), state, neighbors
