"""PageRank.

Spark: GraphX-style supersteps over the directed edge partitions —
every iteration each vertex sends ``rank / out_degree`` along its out
edges (``aggregateMessages``), contributions are summed per destination
(``aggregateUsingIndex``), and ranks update as ``0.15 + 0.85 * sum``.
All vertices stay active, but the rank *values* keep moving, which is
what differentiates rank_sp's phase behaviour from cc_sp's shrinking
frontier.

Hadoop: the classic adjacency-list iteration (one MapReduce job per
superstep, state carried through HDFS text files).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.hadoop.api import Context, Mapper, Reducer
from repro.hadoop.job import HadoopJobConf
from repro.hadoop.runtime import HadoopCluster
from repro.spark.context import SparkContext
from repro.workloads.base import Workload, WorkloadInput
from repro.workloads.graph_common import (
    HADOOP_SCALE_DELTA,
    SPARK_SCALE_DELTA,
    adjacency_lines,
    parse_adjacency_line,
    resolve_graph,
)
from repro.workloads.graphx import GraphXGraph, pregel_step

__all__ = ["PageRank", "PageRankMapper", "PageRankReducer"]

ITERATIONS = 10
HADOOP_ITERATIONS = 6
DAMPING = 0.85


class PageRankMapper(Mapper):
    """Distributes the vertex rank over its out-neighbors."""

    frames = (
        ("org.apache.hadoop.mapreduce.Mapper", "run"),
        ("pegasus.PageRankNaive$MapStage1", "map"),
    )
    inst_per_record = 230_000.0

    def map(self, key: Any, value: str, context: Context) -> None:
        node, state, neighbors = parse_adjacency_line(value)
        context.write(node, f"S\t{state}\t{','.join(map(str, neighbors))}")
        if neighbors:
            share = float(state) / len(neighbors)
            for nbr in neighbors:
                context.write(nbr, share)


class PageRankReducer(Reducer):
    """Sums contributions and applies the damping update."""

    frames = (
        ("org.apache.hadoop.mapreduce.Reducer", "run"),
        ("pegasus.PageRankNaive$RedStage1", "reduce"),
    )
    inst_per_record = 140_000.0

    def reduce(self, key: Any, values: Any, context: Context) -> None:
        neighbors = ""
        seen_state = False
        total = 0.0
        for v in values:
            if isinstance(v, str) and v.startswith("S\t"):
                _tag, _state, neighbors = v.split("\t", 2)
                seen_state = True
            else:
                total += float(v)
        if not seen_state:
            return
        new_rank = (1.0 - DAMPING) + DAMPING * total
        context.write(key, f"{new_rank:.6f}\t{neighbors}")


class PageRank(Workload):
    """Iterative PageRank over a Kronecker graph."""

    name = "rank"
    abbrev = "rank"
    workload_type = "Graph Analytics"
    paper_input = "2^24 nodes"
    is_graph = True
    spark_inst_scale = 2.0
    hadoop_inst_scale = 4.0

    def prepare_input(self, fs: Any, inp: WorkloadInput) -> dict[str, Any]:
        graph, edges, n = resolve_graph(inp, scale_delta=SPARK_SCALE_DELTA)
        _g, h_edges, h_n = resolve_graph(inp, scale_delta=HADOOP_SCALE_DELTA)
        lines = adjacency_lines(h_edges, h_n, "1.0")
        fs.write("/in/rank/iter0", lines, block_records=max(256, h_n // 8))
        return {
            "graph": graph.name,
            "edges": edges,
            "n_vertices": n,
            "hadoop_path": "/in/rank/iter0",
            "hadoop_n_vertices": h_n,
        }

    # -- Spark ----------------------------------------------------------------

    def run_spark(self, ctx: SparkContext, meta: dict[str, Any]) -> None:
        n = meta["n_vertices"]
        graph = GraphXGraph(ctx, meta["edges"], n)
        ranks = np.ones(n, dtype=np.float64)
        active = np.ones(n, dtype=bool)
        outdeg = np.maximum(graph.out_degree, 1.0)
        for _it in range(ITERATIONS):
            sums, _received = pregel_step(
                graph,
                ranks,
                active,
                gather=lambda src, vals: vals / outdeg[src],
                reduce_ufunc=np.add,
                reduce_identity=0.0,
                frames_tag="PageRank",
            )
            ranks = (1.0 - DAMPING) + DAMPING * sums
        records = [(int(v), float(f"{r:.6f}")) for v, r in enumerate(ranks)]
        (
            ctx.parallelize(records)
            .map_values(lambda r: r, inst_per_record=30_000.0)
            .save_as_text_file("/out/rank")
        )

    # -- Hadoop ---------------------------------------------------------------

    def run_hadoop(self, cluster: HadoopCluster, meta: dict[str, Any]) -> None:
        path = meta["hadoop_path"]
        for it in range(HADOOP_ITERATIONS):
            out = f"/out/rank/iter{it + 1}"
            conf = HadoopJobConf(
                name=f"rank-iter{it + 1}",
                mapper=PageRankMapper(),
                combiner=None,
                reducer=PageRankReducer(),
                n_reduces=cluster.config.n_slots,
                sort_buffer_bytes=2e6,
            )
            cluster.run_job(conf, path, out)
            merged: list[str] = []
            for part in cluster.fs.ls(f"{out}/*"):
                merged.extend(cluster.fs.read_all(part))
            cluster.fs.write(
                f"/in/rank/iter{it + 1}",
                merged,
                block_records=max(256, len(merged) // 8),
            )
            path = f"/in/rank/iter{it + 1}"
