"""Workload registry (Table I) and the one-call runner."""

from __future__ import annotations

from typing import Any

from repro.jvm.job import JobTrace
from repro.workloads.base import Workload, WorkloadInput
from repro.workloads.bayes import NaiveBayes
from repro.workloads.connected_components import ConnectedComponents
from repro.workloads.grep import Grep
from repro.workloads.pagerank import PageRank
from repro.workloads.sort import Sort
from repro.workloads.wordcount import WordCount

__all__ = [
    "WORKLOADS",
    "get_workload",
    "label_of",
    "all_labels",
    "run_workload",
    "run_workload_stream",
]

#: Table I, keyed by abbreviation.
WORKLOADS: dict[str, type[Workload]] = {
    cls.abbrev: cls
    for cls in (Sort, WordCount, Grep, NaiveBayes, ConnectedComponents, PageRank)
}

_FRAMEWORK_SUFFIX = {"hadoop": "hp", "spark": "sp"}


def get_workload(name: str) -> Workload:
    """Instantiate a workload by abbreviation or full name."""
    key = name.lower()
    if key in WORKLOADS:
        return WORKLOADS[key]()
    for cls in WORKLOADS.values():
        if cls.name == key:
            return cls()
    raise KeyError(f"unknown workload {name!r}; available: {sorted(WORKLOADS)}")


def label_of(workload: str, framework: str) -> str:
    """Paper-style label, e.g. ``wc_hp`` / ``cc_sp``."""
    w = get_workload(workload)
    return f"{w.abbrev}_{_FRAMEWORK_SUFFIX[framework]}"


def all_labels() -> list[str]:
    """The twelve evaluated configurations, Hadoop first (as in Fig. 7)."""
    out = []
    for fw in ("hadoop", "spark"):
        for abbrev in WORKLOADS:
            out.append(f"{abbrev}_{_FRAMEWORK_SUFFIX[fw]}")
    return out


def run_workload(
    name: str,
    framework: str,
    *,
    scale: float = 1.0,
    seed: int = 0,
    input_name: str = "default",
    graph: Any = None,
    params: dict[str, Any] | None = None,
    spark_config: Any = None,
    hadoop_config: Any = None,
    faults: Any = None,
) -> JobTrace:
    """Synthesise the input, run the workload, return the job trace.

    Parameters
    ----------
    name:
        Workload abbreviation or full name (Table I).
    framework:
        ``"spark"`` or ``"hadoop"``.
    scale:
        Input volume multiplier (1.0 = calibrated default).
    seed:
        Drives input synthesis and all simulator randomness.
    graph:
        Optional :class:`~repro.datagen.seeds.GraphInput` for the graph
        workloads (defaults to the Table II training input).
    params:
        Workload-specific input knobs (e.g. ``zipf_s`` for text).
    faults:
        Optional :class:`~repro.faults.plan.FaultPlan`; cluster faults
        are injected deterministically, recoveries leave the job
        results unchanged, and ``meta["fault_report"]`` records what
        happened.
    """
    workload = get_workload(name)
    inp = WorkloadInput(
        name=input_name,
        scale=scale,
        seed=seed,
        graph=graph,
        params=params or {},
    )
    return workload.execute(
        framework,
        inp,
        spark_config=spark_config,
        hadoop_config=hadoop_config,
        faults=faults,
    )


def run_workload_stream(
    name: str,
    framework: str,
    *,
    scale: float = 1.0,
    seed: int = 0,
    input_name: str = "default",
    graph: Any = None,
    params: dict[str, Any] | None = None,
    spark_config: Any = None,
    hadoop_config: Any = None,
    faults: Any = None,
) -> Any:
    """Streaming twin of :func:`run_workload`.

    Same parameters, but the run executes lazily: the returned
    :class:`~repro.jvm.stream.TraceStream` produces trace events while
    the workload runs on a worker thread, and segments are not retained
    after emission.  Feed it to ``SimProf.analyze_stream`` (bit-identical
    to the batch path under the same seed) or materialise it with
    ``JobTrace.from_stream``.  A :class:`~repro.faults.plan.FaultPlan`
    in ``faults`` additionally wraps the stream with its
    drop/duplicate/reorder faults.
    """
    workload = get_workload(name)
    inp = WorkloadInput(
        name=input_name,
        scale=scale,
        seed=seed,
        graph=graph,
        params=params or {},
    )
    return workload.execute_stream(
        framework,
        inp,
        spark_config=spark_config,
        hadoop_config=hadoop_config,
        faults=faults,
    )
