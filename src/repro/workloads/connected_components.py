"""Connected Components.

Spark: GraphX-style Pregel label propagation with a shrinking active
frontier — each superstep, vertices whose label improved broadcast it
(``aggregateMessages``), neighbors take the minimum
(``aggregateUsingIndex``).  Message volume decays as components merge,
so the per-phase CPI is time-varying and topology-dependent: exactly
why cc_sp's aggregate phase is the paper's flagship input-sensitive
phase (Section IV-E).

Hadoop: the classic iterative adjacency-list MapReduce — each job's
mapper forwards the vertex's label to its neighbors, the reducer takes
the minimum, and the updated adjacency file feeds the next job.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.hadoop.api import Context, Mapper, Reducer
from repro.hadoop.job import HadoopJobConf
from repro.hadoop.runtime import HadoopCluster
from repro.spark.context import SparkContext
from repro.workloads.base import Workload, WorkloadInput
from repro.workloads.graph_common import (
    HADOOP_SCALE_DELTA,
    SPARK_SCALE_DELTA,
    adjacency_lines,
    parse_adjacency_line,
    resolve_graph,
    symmetrize,
)
from repro.workloads.graphx import GraphXGraph, pregel_step

__all__ = ["ConnectedComponents", "CCMapper", "CCReducer"]

MAX_ITERATIONS = 20
HADOOP_MAX_ITERATIONS = 10


class CCMapper(Mapper):
    """Forwards the vertex label along every incident edge."""

    frames = (
        ("org.apache.hadoop.mapreduce.Mapper", "run"),
        ("pegasus.ConCmpt$MapStage1", "map"),
    )
    inst_per_record = 210_000.0

    def map(self, key: Any, value: str, context: Context) -> None:
        node, state, neighbors = parse_adjacency_line(value)
        context.write(node, f"S\t{state}\t{','.join(map(str, neighbors))}")
        label = int(state)
        for nbr in neighbors:
            context.write(nbr, label)


class CCReducer(Reducer):
    """Takes the minimum of the own and received labels."""

    frames = (
        ("org.apache.hadoop.mapreduce.Reducer", "run"),
        ("pegasus.ConCmpt$RedStage1", "reduce"),
    )
    inst_per_record = 130_000.0

    def reduce(self, key: Any, values: Any, context: Context) -> None:
        own_label: int | None = None
        neighbors = ""
        best: int | None = None
        for v in values:
            if isinstance(v, str) and v.startswith("S\t"):
                _tag, state, neighbors = v.split("\t", 2)
                own_label = int(state)
            else:
                lbl = int(v)
                if best is None or lbl < best:
                    best = lbl
        if own_label is None:
            # Vertex only appears as a neighbor (no adjacency line):
            # nothing to update.
            return
        new_label = own_label if best is None else min(own_label, best)
        context.write(key, f"{new_label}\t{neighbors}")


class ConnectedComponents(Workload):
    """Label every vertex with the smallest id in its component."""

    name = "cc"
    abbrev = "cc"
    workload_type = "Graph Analytics"
    paper_input = "2^24 nodes"
    is_graph = True
    spark_inst_scale = 3.0
    hadoop_inst_scale = 2.0

    def prepare_input(self, fs: Any, inp: WorkloadInput) -> dict[str, Any]:
        # Spark consumes the raw edge array; Hadoop reads adjacency text
        # at a reduced scale (see graph_common.HADOOP_SCALE_DELTA).
        graph, edges, n = resolve_graph(inp, scale_delta=SPARK_SCALE_DELTA)
        _g, h_edges, h_n = resolve_graph(inp, scale_delta=HADOOP_SCALE_DELTA)
        h_sym = symmetrize(h_edges)
        lines = adjacency_lines(
            h_sym, h_n, [str(v) for v in range(h_n)]
        )
        fs.write("/in/cc/iter0", lines, block_records=max(256, h_n // 8))
        return {
            "graph": graph.name,
            "edges": symmetrize(edges),
            "n_vertices": n,
            "hadoop_path": "/in/cc/iter0",
            "hadoop_n_vertices": h_n,
        }

    # -- Spark ----------------------------------------------------------------

    def run_spark(self, ctx: SparkContext, meta: dict[str, Any]) -> None:
        n = meta["n_vertices"]
        graph = GraphXGraph(ctx, meta["edges"], n)
        labels = np.arange(n, dtype=np.float64)
        active = np.ones(n, dtype=bool)
        for _it in range(MAX_ITERATIONS):
            agg, received = pregel_step(
                graph,
                labels,
                active,
                gather=lambda src, vals: vals,
                reduce_ufunc=np.minimum,
                reduce_identity=np.inf,
                frames_tag="ConnectedComponents",
            )
            improved = received & (agg < labels)
            if not improved.any():
                break
            labels[improved] = agg[improved]
            active = improved
        self._save_labels(ctx, labels)

    @staticmethod
    def _save_labels(ctx: SparkContext, labels: np.ndarray) -> None:
        records = [(int(v), int(l)) for v, l in enumerate(labels)]
        (
            ctx.parallelize(records)
            .map_values(lambda l: l, inst_per_record=30_000.0)
            .save_as_text_file("/out/cc")
        )

    # -- Hadoop ---------------------------------------------------------------

    def run_hadoop(self, cluster: HadoopCluster, meta: dict[str, Any]) -> None:
        path = meta["hadoop_path"]
        prev_labels: dict[int, int] | None = None
        for it in range(HADOOP_MAX_ITERATIONS):
            out = f"/out/cc/iter{it + 1}"
            conf = HadoopJobConf(
                name=f"cc-iter{it + 1}",
                mapper=CCMapper(),
                combiner=None,
                reducer=CCReducer(),
                n_reduces=cluster.config.n_slots,
                sort_buffer_bytes=2e6,
            )
            cluster.run_job(conf, path, out)
            # Driver-side convergence check on the (small) label column.
            labels: dict[int, int] = {}
            merged: list[str] = []
            for part in cluster.fs.ls(f"{out}/*"):
                merged.extend(cluster.fs.read_all(part))
            for line in merged:
                node, state, _n = parse_adjacency_line(line)
                labels[node] = int(state)
            cluster.fs.write(
                f"/in/cc/iter{it + 1}",
                merged,
                block_records=max(256, len(merged) // 8),
            )
            path = f"/in/cc/iter{it + 1}"
            if prev_labels == labels:
                break
            prev_labels = labels
