"""SimProf reproduction: a sampling framework for data analytic workloads.

Reproduces Huang et al., *SimProf: A Sampling Framework for Data
Analytic Workloads* (IPDPS 2017), end to end on simulated substrates:

* :mod:`repro.jvm` — simulated JVM, call stacks, hardware model, and
  the JVMTI / perf_event-style profiling interfaces;
* :mod:`repro.spark` / :mod:`repro.hadoop` — framework simulators that
  really execute the dataflows while emitting hardware traces;
* :mod:`repro.hdfs`, :mod:`repro.datagen` — storage and input synthesis
  (Zipf text, Kronecker graphs fitted to Table II seed families);
* :mod:`repro.workloads` — the six Table I benchmarks on both
  frameworks;
* :mod:`repro.core` — SimProf itself: thread profiling, phase
  formation, stratified phase sampling, and the input-sensitivity test;
* :mod:`repro.experiments` — drivers regenerating every table/figure.

Quickstart::

    from repro import SimProf
    from repro.workloads import run_workload

    trace = run_workload("wc", "spark")
    result = SimProf().analyze(trace, n_points=20)
    print(result.simulation_points, result.sampling_error())

Or streaming — the trace is profiled while the workload runs and is
never materialised (bit-identical result under the same seed)::

    from repro.workloads import run_workload_stream

    stream = run_workload_stream("wc", "spark")
    result = SimProf().analyze_stream(stream, n_points=20)
"""

from repro.core.pipeline import SimProf, SimProfConfig, SimProfResult
from repro.core.profiler import ProfilerConfig, SimProfProfiler, StreamingProfiler
from repro.core.units import JobProfile, SamplingUnit, ThreadProfile
from repro.jvm.stream import TraceStream

__version__ = "1.0.0"

__all__ = [
    "JobProfile",
    "ProfilerConfig",
    "SamplingUnit",
    "SimProf",
    "SimProfConfig",
    "SimProfProfiler",
    "SimProfResult",
    "StreamingProfiler",
    "ThreadProfile",
    "TraceStream",
    "__version__",
]
