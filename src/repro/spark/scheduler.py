"""DAG scheduler: run stages in dependency order, tasks in waves.

Tasks of a stage are dealt to the executor pool in waves of at most
``n_executors`` tasks.  Every task in a wave shares the LLC with the
rest of the wave, so the contention passed to the hardware model equals
the wave size — a full wave squeezes each thread's effective cache, a
ragged final wave does not, which is one of the organic sources of
intra-phase CPI variation (the paper's *phase interleaving*).
"""

from __future__ import annotations

from functools import partial
from functools import reduce as _functools_reduce
from typing import Any, Callable

from repro.jvm.job import StageInfo
from repro.spark.dag import Stage, build_stages
from repro.spark.rdd import RDD

__all__ = ["DAGScheduler"]


class DAGScheduler:
    """Drives a job: builds stages, fits partitioners, runs tasks."""

    def __init__(self, ctx: Any) -> None:
        self.ctx = ctx
        self._next_task_id = 0

    # -- public actions -----------------------------------------------------

    def run_collect(self, final_rdd: RDD) -> list[Any]:
        """``collect()``: gather all records on the driver."""

        def action(records: list[Any], _stack: Any, _sid: int, _tid: int) -> list[Any]:
            return records

        parts = self._run_job(final_rdd, action)
        out: list[Any] = []
        for p in parts:
            out.extend(p)
        return out

    def run_count(self, final_rdd: RDD) -> int:
        """``count()``: number of records."""

        def action(records: list[Any], _stack: Any, _sid: int, _tid: int) -> int:
            return len(records)

        return sum(self._run_job(final_rdd, action))

    def run_reduce(self, final_rdd: RDD, fn: Callable[[Any, Any], Any]) -> Any:
        """``reduce(fn)``: per-partition folds, then a driver fold."""

        def action(records: list[Any], _stack: Any, _sid: int, _tid: int) -> Any:
            return _functools_reduce(fn, records) if records else None

        partials = [p for p in self._run_job(final_rdd, action) if p is not None]
        if not partials:
            raise ValueError("reduce of an empty RDD")
        return _functools_reduce(fn, partials)

    def run_save_text(self, final_rdd: RDD, path: str) -> None:
        """``saveAsTextFile(path)``: write one part-file per task."""
        self._run_job(final_rdd, None, save_path=path)

    # -- job execution ---------------------------------------------------------

    def _run_job(
        self,
        final_rdd: RDD,
        action: Callable[..., Any] | None,
        save_path: str | None = None,
    ) -> list[Any]:
        stages = build_stages(final_rdd)
        for stage in stages:
            self.ctx.record_stage(
                StageInfo(
                    stage_id=stage.stage_id, name=stage.name, n_tasks=stage.num_tasks()
                )
            )
            if stage.is_result:
                return self._run_result_stage(stage, action, save_path)
            self._run_shuffle_stage(stage)
        raise AssertionError("job had no result stage")

    def _fit_partitioner_if_needed(self, stage: Stage) -> None:
        """Fit a RangePartitioner by sampling the stage's map output.

        Spark runs a separate sampling job for ``sortByKey``; we sample
        partition 0 with a silent executor so the sampling pass does not
        pollute the profile.
        """
        dep = stage.shuffle_dep
        if dep is None or dep.partitioner is not None:
            return
        sampler = self.ctx.make_silent_executor()
        task_stack = self.ctx.frames.task_stack(shuffle_map=True)
        sample_keys: list[Any] = []
        n_parts = stage.rdd.num_partitions()
        for split in range(min(2, n_parts)):
            records = sampler.compute(stage.rdd, split, task_stack, -1, -1)
            sample_keys.extend(k for k, _v in records[:20000])
        dep.fit_range_partitioner(sample_keys)

    def _waves(self, n_tasks: int) -> list[list[int]]:
        n_exec = len(self.ctx.executors)
        return [
            list(range(start, min(start + n_exec, n_tasks)))
            for start in range(0, n_tasks, n_exec)
        ]

    def _launch_task(
        self,
        executor: Any,
        stage: Stage,
        split: int,
        task_id: int,
        contention: int,
        run: Callable[[], Any],
    ) -> Any:
        """Run one task attempt under the context's fault injector.

        Failed attempts are modelled as *doomed* runs that recompute
        the partition from lineage and commit nothing, after which the
        real attempt (``run``) executes unchanged — so job results are
        identical to a fault-free run.  Straggler stalls and GC pauses
        are appended after the real attempt, sized against the work it
        actually retired.
        """
        faults = self.ctx.faults
        if faults is None:
            return run()
        tf = faults.task_faults(stage.stage_id, split)
        for _ in range(tf.n_failures):
            executor.run_doomed_attempt(stage, split, task_id, contention)
            faults.report.record(
                "spark.task",
                "task_failure",
                "lineage_recompute",
                thread_id=executor.thread_id,
                stage_id=stage.stage_id,
                index=split,
            )
        before = executor.builder.retired
        result = run()
        if tf.straggler_factor:
            extra = (tf.straggler_factor - 1.0) * (
                executor.builder.retired - before
            )
            executor.inject_stall(extra, stage.stage_id, task_id)
            faults.report.record(
                "spark.task",
                "straggler",
                "absorbed",
                thread_id=executor.thread_id,
                stage_id=stage.stage_id,
                index=split,
                detail=f"slowdown x{tf.straggler_factor}",
            )
        if tf.gc_pause:
            executor.inject_gc_pause(
                faults.plan.gc_pause_inst, stage.stage_id, task_id
            )
            faults.report.record(
                "spark.task",
                "gc_pause",
                "absorbed",
                thread_id=executor.thread_id,
                stage_id=stage.stage_id,
                index=split,
            )
        return result

    def _run_shuffle_stage(self, stage: Stage) -> None:
        self._fit_partitioner_if_needed(stage)
        for wave in self._waves(stage.num_tasks()):
            contention = len(wave)
            for slot, split in enumerate(wave):
                executor = self.ctx.executors[slot]
                task_id = self._next_task_id
                self._next_task_id += 1
                self._launch_task(
                    executor,
                    stage,
                    split,
                    task_id,
                    contention,
                    partial(
                        executor.run_shuffle_map_task,
                        stage,
                        split,
                        task_id,
                        contention,
                    ),
                )
                # Streaming mode ships the finished task's segments
                # immediately (no-op otherwise).
                self.ctx.flush_trace_events()

    def _run_result_stage(
        self,
        stage: Stage,
        action: Callable[..., Any] | None,
        save_path: str | None,
    ) -> list[Any]:
        results: list[Any] = []
        for wave in self._waves(stage.num_tasks()):
            contention = len(wave)
            for slot, split in enumerate(wave):
                executor = self.ctx.executors[slot]
                task_id = self._next_task_id
                self._next_task_id += 1
                if save_path is not None:
                    run = partial(
                        executor.run_save_task,
                        stage,
                        split,
                        task_id,
                        contention,
                        save_path,
                    )
                else:
                    assert action is not None
                    run = partial(
                        executor.run_result_task,
                        stage,
                        split,
                        task_id,
                        contention,
                        action,
                    )
                results.append(
                    self._launch_task(
                        executor, stage, split, task_id, contention, run
                    )
                )
                self.ctx.flush_trace_events()
        return results
