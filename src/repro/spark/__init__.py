"""Spark-like framework simulator.

A faithful-in-structure miniature of Apache Spark's execution model:
RDDs with lazy lineage, stages cut at shuffle dependencies, tasks per
partition scheduled in waves onto long-lived executor threads, hash and
range partitioners, and the map-side-combine path through an
``Aggregator`` (the mechanism behind the paper's Figure 14 observation
that WordCount's reduce work actually happens in stage 1).

Executors really compute on the data while emitting hardware trace
segments through :mod:`repro.jvm`.
"""

from repro.spark.context import SparkConfig, SparkContext
from repro.spark.ops import CustomOp, Operation
from repro.spark.rdd import RDD

__all__ = ["CustomOp", "Operation", "RDD", "SparkConfig", "SparkContext"]
