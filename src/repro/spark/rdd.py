"""RDDs: lazy, immutable, lineage-carrying datasets.

The transformation surface mirrors the subset of Spark the paper's
workloads use: ``map`` / ``flatMap`` / ``filter`` / ``mapPartitions`` /
``mapValues`` / ``union`` as narrow transformations, and
``reduceByKey`` / ``groupByKey`` / ``sortByKey`` / ``combineByKey`` /
``join`` as shuffles.  Nothing executes until an action
(``collect`` / ``count`` / ``reduce`` / ``saveAsTextFile``) hands the
lineage to the DAG scheduler.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.spark.ops import (
    CustomOp,
    Operation,
    make_filter_op,
    make_flat_map_op,
    make_map_op,
    make_map_partitions_op,
    make_map_values_op,
)
from repro.spark.shuffle import Aggregator, HashPartitioner, RangePartitioner

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.spark.context import SparkContext

__all__ = [
    "RDD",
    "HadoopRDD",
    "ParallelCollectionRDD",
    "NarrowRDD",
    "UnionRDD",
    "ShuffledRDD",
]


class RDD:
    """Base class: lineage node + the lazy transformation API."""

    def __init__(self, ctx: "SparkContext", name: str) -> None:
        self.ctx = ctx
        self.name = name
        self.rdd_id = ctx._next_rdd_id()
        self.is_cached = False

    # -- persistence -------------------------------------------------------

    def cache(self) -> "RDD":
        """Mark this RDD for in-memory caching.

        The first job that computes a partition tees it into the block
        store; later jobs read it back (cheap memory scans) instead of
        recomputing the lineage — Spark's semantics for iterative
        workloads.
        """
        self.is_cached = True
        return self

    def persist(self) -> "RDD":
        """Alias of :meth:`cache` (memory-only storage level)."""
        return self.cache()

    def unpersist(self) -> "RDD":
        """Drop the cached blocks and stop caching new ones."""
        self.is_cached = False
        self.ctx.block_store.evict_rdd(self.rdd_id)
        return self

    # -- structure (overridden by concrete nodes) -------------------------

    @property
    def parents(self) -> tuple["RDD", ...]:
        """Lineage parents (empty for sources)."""
        return ()

    def num_partitions(self) -> int:
        """Number of partitions this RDD materialises as."""
        raise NotImplementedError

    # -- narrow transformations -------------------------------------------

    def _narrow(self, op: Operation, name: str | None = None) -> "NarrowRDD":
        return NarrowRDD(self.ctx, self, op, name or op.name)

    def map(
        self,
        fn: Callable[[Any], Any],
        fn_name: str = "closure.apply",
        **cost: Any,
    ) -> "NarrowRDD":
        """Element-wise transformation."""
        return self._narrow(make_map_op(fn, fn_name, **cost))

    def flat_map(
        self,
        fn: Callable[[Any], Iterable[Any]],
        fn_name: str = "closure.apply",
        **cost: Any,
    ) -> "NarrowRDD":
        """One-to-many transformation."""
        return self._narrow(make_flat_map_op(fn, fn_name, **cost))

    def filter(
        self,
        pred: Callable[[Any], bool],
        fn_name: str = "closure.apply",
        **cost: Any,
    ) -> "NarrowRDD":
        """Keep records satisfying ``pred``."""
        return self._narrow(make_filter_op(pred, fn_name, **cost))

    def map_partitions(
        self,
        fn: Callable[[list[Any]], list[Any]],
        fn_name: str = "closure.apply",
        **cost: Any,
    ) -> "NarrowRDD":
        """Bulk transformation of partition chunks."""
        return self._narrow(make_map_partitions_op(fn, fn_name, **cost))

    def map_values(
        self,
        fn: Callable[[Any], Any],
        fn_name: str = "closure.apply",
        **cost: Any,
    ) -> "NarrowRDD":
        """Transform values of key-value records."""
        return self._narrow(make_map_values_op(fn, fn_name, **cost))

    def custom_op(self, op: CustomOp) -> "NarrowRDD":
        """Attach a workload-defined operation (GraphX-style kernels)."""
        return self._narrow(op, op.name)

    def union(self, other: "RDD") -> "UnionRDD":
        """Concatenate partitions of two RDDs (narrow)."""
        return UnionRDD(self.ctx, (self, other))

    def keys(self) -> "NarrowRDD":
        """Keys of key-value records."""
        return self.map(lambda kv: kv[0], "org.apache.spark.rdd.RDD.keys",
                        inst_per_record=20_000.0)

    def values(self) -> "NarrowRDD":
        """Values of key-value records."""
        return self.map(lambda kv: kv[1], "org.apache.spark.rdd.RDD.values",
                        inst_per_record=20_000.0)

    def distinct(self, num_partitions: int | None = None) -> "NarrowRDD":
        """Deduplicate records (a reduceByKey under the hood, as in
        Spark)."""
        return (
            self.map(lambda x: (x, None),
                     "org.apache.spark.rdd.RDD$$anonfun$distinct$1.apply",
                     inst_per_record=60_000.0)
            .reduce_by_key(lambda a, _b: a, num_partitions)
            .keys()
        )

    def sample(self, fraction: float, seed: int = 0) -> "NarrowRDD":
        """Bernoulli sample of the records.

        Each partition draws from a generator seeded by ``seed`` (the
        simulator has no task-partition id in the closure, so all
        partitions share the seed — deterministic, slightly correlated
        across partitions, fine for workload modelling).
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        import numpy as _np

        from repro.spark.ops import CustomOp
        from repro.jvm.machine import OpKind

        def batch_fn(batch: list[Any], state: Any) -> list[Any]:
            keep = state["rng"].random(len(batch)) < fraction
            return [x for x, k in zip(batch, keep) if k]

        return self.custom_op(
            CustomOp(
                name="sample",
                frames=(
                    ("org.apache.spark.rdd.PartitionwiseSampledRDD", "compute"),
                    ("org.apache.spark.util.random.BernoulliSampler", "sample"),
                ),
                op_kind=OpKind.MAP,
                batch_fn=batch_fn,
                state_fn=lambda: {"rng": _np.random.default_rng(seed)},
                inst_per_record=30_000.0,
            )
        )

    def coalesce(self, num_partitions: int) -> "CoalescedRDD":
        """Narrow repartition into fewer partitions."""
        return CoalescedRDD(self.ctx, self, num_partitions)

    # -- shuffles -----------------------------------------------------------

    def combine_by_key(
        self,
        aggregator: Aggregator,
        num_partitions: int | None = None,
        *,
        map_side_combine: bool = True,
        op_name: str = "combineByKey",
    ) -> "ShuffledRDD":
        """General shuffle with combine functions."""
        n = num_partitions or self.ctx.config.default_parallelism
        return ShuffledRDD(
            self.ctx,
            self,
            partitioner=HashPartitioner(n),
            aggregator=aggregator,
            map_side_combine=map_side_combine,
            key_ordering=False,
            name=op_name,
        )

    def reduce_by_key(
        self,
        fn: Callable[[Any, Any], Any],
        num_partitions: int | None = None,
        *,
        map_side_combine: bool = True,
    ) -> "ShuffledRDD":
        """Merge values per key; combines map-side by default."""
        return self.combine_by_key(
            Aggregator.from_reduce(fn),
            num_partitions,
            map_side_combine=map_side_combine,
            op_name="reduceByKey",
        )

    def group_by_key(self, num_partitions: int | None = None) -> "ShuffledRDD":
        """Group values per key (no map-side combine, like Spark)."""
        return self.combine_by_key(
            Aggregator.group(),
            num_partitions,
            map_side_combine=False,
            op_name="groupByKey",
        )

    def sort_by_key(self, num_partitions: int | None = None) -> "ShuffledRDD":
        """Range-partition by key and sort each partition."""
        n = num_partitions or self.ctx.config.default_parallelism
        return ShuffledRDD(
            self.ctx,
            self,
            partitioner=None,  # RangePartitioner fitted at submit time
            aggregator=None,
            map_side_combine=False,
            key_ordering=True,
            name="sortByKey",
            num_range_partitions=n,
        )

    def join(
        self, other: "RDD", num_partitions: int | None = None
    ) -> "NarrowRDD":
        """Inner join of two key-value RDDs (via cogroup + flatten)."""
        n = num_partitions or self.ctx.config.default_parallelism
        tagged_self = self.map_values(lambda v: (0, v), "join.tagLeft")
        tagged_other = other.map_values(lambda v: (1, v), "join.tagRight")
        grouped = tagged_self.union(tagged_other).group_by_key(n)

        def emit_pairs(batch: list[Any]) -> list[Any]:
            out = []
            for key, tagged in batch:
                left = [v for t, v in tagged if t == 0]
                right = [v for t, v in tagged if t == 1]
                for lv in left:
                    for rv in right:
                        out.append((key, (lv, rv)))
            return out

        return grouped.map_partitions(
            emit_pairs, "org.apache.spark.rdd.PairRDDFunctions.join"
        )

    # -- actions -------------------------------------------------------------

    def collect(self) -> list[Any]:
        """Materialise every record on the driver."""
        return self.ctx.scheduler.run_collect(self)

    def count(self) -> int:
        """Number of records."""
        return self.ctx.scheduler.run_count(self)

    def reduce(self, fn: Callable[[Any, Any], Any]) -> Any:
        """Fold all records with ``fn`` (partitions first, then driver)."""
        return self.ctx.scheduler.run_reduce(self, fn)

    def save_as_text_file(self, path: str) -> None:
        """Format records as text and write them to simulated HDFS."""
        self.ctx.scheduler.run_save_text(self, path)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name} id={self.rdd_id}>"


class HadoopRDD(RDD):
    """Source RDD reading a simulated-HDFS file; one partition per block."""

    def __init__(self, ctx: "SparkContext", path: str) -> None:
        super().__init__(ctx, f"hadoopFile({path})")
        self.path = path
        self._n_blocks = ctx.fs.stat(path).n_blocks

    def num_partitions(self) -> int:
        return self._n_blocks


class ParallelCollectionRDD(RDD):
    """Driver-side collection chopped into ``n`` partitions."""

    def __init__(self, ctx: "SparkContext", data: list[Any], n: int) -> None:
        super().__init__(ctx, "parallelize")
        if n <= 0:
            raise ValueError("need at least one partition")
        self.slices: list[list[Any]] = [list(data[i::n]) for i in range(n)]

    def num_partitions(self) -> int:
        return len(self.slices)


class NarrowRDD(RDD):
    """One narrow operation applied over a parent RDD."""

    def __init__(
        self, ctx: "SparkContext", parent: RDD, op: Operation, name: str
    ) -> None:
        super().__init__(ctx, name)
        self.parent = parent
        self.op = op

    @property
    def parents(self) -> tuple[RDD, ...]:
        return (self.parent,)

    def num_partitions(self) -> int:
        return self.parent.num_partitions()


class UnionRDD(RDD):
    """Concatenation of the partitions of several parents."""

    def __init__(self, ctx: "SparkContext", rdds: tuple[RDD, ...]) -> None:
        super().__init__(ctx, "union")
        self.rdds = rdds

    @property
    def parents(self) -> tuple[RDD, ...]:
        return self.rdds

    def num_partitions(self) -> int:
        return sum(r.num_partitions() for r in self.rdds)

    def resolve_split(self, split: int) -> tuple[RDD, int]:
        """Map a union partition index to ``(parent, parent_split)``."""
        for rdd in self.rdds:
            n = rdd.num_partitions()
            if split < n:
                return rdd, split
            split -= n
        raise IndexError("union split out of range")


class CoalescedRDD(RDD):
    """Fewer partitions without a shuffle (each new split drains a
    contiguous group of parent splits)."""

    def __init__(self, ctx: "SparkContext", parent: RDD, n: int) -> None:
        super().__init__(ctx, f"coalesce({n})")
        if n <= 0:
            raise ValueError("need at least one partition")
        self.parent = parent
        self._n = min(n, parent.num_partitions())

    @property
    def parents(self) -> tuple[RDD, ...]:
        return (self.parent,)

    def num_partitions(self) -> int:
        return self._n

    def parent_splits(self, split: int) -> list[int]:
        """Parent partition indices drained by ``split``."""
        if not 0 <= split < self._n:
            raise IndexError("coalesce split out of range")
        total = self.parent.num_partitions()
        start = split * total // self._n
        stop = (split + 1) * total // self._n
        return list(range(start, stop))


class ShuffledRDD(RDD):
    """Wide dependency: the output side of a shuffle.

    ``partitioner`` is fixed for hash shuffles; for ``sortByKey`` it is
    fitted from a key sample when the job is submitted (Spark runs a
    sampling job at the same point).
    """

    def __init__(
        self,
        ctx: "SparkContext",
        parent: RDD,
        *,
        partitioner: HashPartitioner | None,
        aggregator: Aggregator | None,
        map_side_combine: bool,
        key_ordering: bool,
        name: str,
        num_range_partitions: int | None = None,
    ) -> None:
        super().__init__(ctx, name)
        if map_side_combine and aggregator is None:
            raise ValueError("map-side combine requires an aggregator")
        self.parent = parent
        self.partitioner: HashPartitioner | RangePartitioner | None = partitioner
        self.aggregator = aggregator
        self.map_side_combine = map_side_combine
        self.key_ordering = key_ordering
        self.num_range_partitions = num_range_partitions
        self.shuffle_id = ctx._next_shuffle_id()

    @property
    def parents(self) -> tuple[RDD, ...]:
        return (self.parent,)

    def num_partitions(self) -> int:
        if self.partitioner is not None:
            return self.partitioner.num_partitions
        assert self.num_range_partitions is not None
        return self.num_range_partitions

    def fit_range_partitioner(self, sample_keys: list[Any]) -> None:
        """Fit the range partitioner from a key sample (sortByKey)."""
        assert self.key_ordering
        assert self.num_range_partitions is not None
        self.partitioner = RangePartitioner.from_sample(
            sample_keys, self.num_range_partitions
        )
