"""The block store backing ``RDD.cache()``.

A miniature of Spark's BlockManager memory store: cached partitions
live in a dict keyed by ``(rdd_id, split)`` with byte accounting.  The
executor tees records into it while a pipeline streams past a cached
RDD and reads them back (as cheap memory scans) on later jobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.hdfs.filesystem import estimate_record_bytes

__all__ = ["BlockStore"]


@dataclass
class BlockStore:
    """In-memory cached-partition storage."""

    _blocks: dict[tuple[int, int], tuple[list[Any], int]] = field(
        default_factory=dict
    )
    bytes_cached: int = 0
    hits: int = 0
    misses: int = 0

    def has(self, rdd_id: int, split: int) -> bool:
        """Whether a partition is cached (counts a hit/miss probe)."""
        present = (rdd_id, split) in self._blocks
        if present:
            self.hits += 1
        else:
            self.misses += 1
        return present

    def put(self, rdd_id: int, split: int, records: list[Any]) -> int:
        """Cache one partition; returns its estimated byte size."""
        nbytes = sum(estimate_record_bytes(r) for r in records)
        key = (rdd_id, split)
        if key in self._blocks:
            self.bytes_cached -= self._blocks[key][1]
        self._blocks[key] = (list(records), nbytes)
        self.bytes_cached += nbytes
        return nbytes

    def get(self, rdd_id: int, split: int) -> tuple[list[Any], int]:
        """Read one cached partition: ``(records, estimated_bytes)``."""
        return self._blocks[(rdd_id, split)]

    def evict_rdd(self, rdd_id: int) -> None:
        """Drop every cached partition of one RDD."""
        for key in [k for k in self._blocks if k[0] == rdd_id]:
            self.bytes_cached -= self._blocks[key][1]
            del self._blocks[key]

    @property
    def n_blocks(self) -> int:
        """Number of cached partitions."""
        return len(self._blocks)
