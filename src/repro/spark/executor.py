"""Executor threads: compute partitions while emitting hardware traces.

One :class:`Executor` models one long-lived Spark executor thread (the
Spark execution model the paper relies on: a thread lives for the whole
job and therefore crosses every stage).

Execution is *pipelined*, as in real Spark: a task pulls record batches
from its source (HDFS block or shuffle fetch) and pushes each batch
through the whole narrow-operation chain and into the task's sink
(map-side combine + shuffle write, or the action) before touching the
next batch.  Operations of one task therefore interleave at batch
granularity inside the trace — which is why, exactly as the paper's
Figure 14 observes, a WordCount stage forms a *single* phase whose
stacks mix tokenisation, pair mapping, and the map-side reduce.

Every step both does the real work (records really flow) and emits
trace segments priced by the hardware model, with call stacks matching
what JVMTI would report at that point.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

import numpy as np

from repro.algos.quicksort import instrumented_quicksort
from repro.hdfs.filesystem import estimate_record_bytes
from repro.jvm.machine import AccessPattern, OpKind
from repro.jvm.methods import CallStack
from repro.jvm.threads import TraceBuilder
from repro.spark.ops import Operation
from repro.spark.rdd import (
    RDD,
    CoalescedRDD,
    HadoopRDD,
    NarrowRDD,
    ParallelCollectionRDD,
    ShuffledRDD,
    UnionRDD,
)

__all__ = ["Executor"]

# Combiner-map entry overhead (object header + hash slot), bytes.
MAP_ENTRY_OVERHEAD = 48
# Instruction cost of inserting one record into a combiner map.
INST_COMBINE_INSERT = 300_000.0
# Instruction cost per element of one quicksort partitioning pass.
INST_SORT_PER_ELEMENT = 24_000.0
# Instruction cost of routing one record to its shuffle bucket.
INST_PARTITION_RECORD = 60_000.0


class _Missing:
    """Sentinel distinct from any user value."""

    __slots__ = ()


_MISSING = _Missing()


def batch_total_bytes(records: list[Any]) -> float:
    """Estimated bytes of a record list (first record × count)."""
    if not records:
        return 0.0
    return float(estimate_record_bytes(records[0]) * len(records))


def format_record(record: Any) -> str:
    """Text rendering used by ``saveAsTextFile`` (tab-joined for pairs)."""
    if isinstance(record, tuple):
        return "\t".join(str(f) for f in record)
    return str(record)


class _CombinerMap:
    """An in-memory combiner map with working-set tracking.

    The working set is the growing map itself, so early batches hit the
    caches and late batches (large map) miss — the map-side reduce
    behaviour behind Figure 14.
    """

    def __init__(self, aggregator: Any, merge_combiners: bool) -> None:
        self.aggregator = aggregator
        self.merge_combiners = merge_combiners
        self.combiners: dict[Any, Any] = {}
        self.entry_bytes = MAP_ENTRY_OVERHEAD

    def insert_batch(self, batch: list[tuple[Any, Any]]) -> None:
        """Merge one batch of key-value records."""
        agg = self.aggregator
        combiners = self.combiners
        for key, value in batch:
            existing = combiners.get(key, _MISSING)
            if existing is _MISSING:
                combiners[key] = (
                    value if self.merge_combiners else agg.create_combiner(value)
                )
            elif self.merge_combiners:
                combiners[key] = agg.merge_combiners(existing, value)
            else:
                combiners[key] = agg.merge_value(existing, value)
        if batch:
            self.entry_bytes = MAP_ENTRY_OVERHEAD + estimate_record_bytes(batch[0])

    @property
    def working_set_bytes(self) -> float:
        """Current heap footprint of the map."""
        return max(1.0, len(self.combiners) * self.entry_bytes)

    def items(self) -> list[tuple[Any, Any]]:
        """Drain the map to a record list."""
        return list(self.combiners.items())


class Executor:
    """One executor thread bound to a trace builder."""

    def __init__(
        self, ctx: Any, thread_id: int, core_id: int, rng: np.random.Generator
    ) -> None:
        self.ctx = ctx
        self.thread_id = thread_id
        self.rng = rng
        self.builder = TraceBuilder(
            ctx.stack_table, ctx.hardware, rng, thread_id, core_id
        )
        self._alloc_since_gc = 0.0
        self.silent = False  # silent executors sample without tracing

    # -- bookkeeping --------------------------------------------------------

    @property
    def cfg(self) -> Any:
        """The context's SparkConfig."""
        return self.ctx.config

    def _emit(
        self,
        stack: CallStack,
        kind: OpKind,
        access: AccessPattern,
        instructions: float,
        stage_id: int,
        task_id: int,
    ) -> None:
        if self.silent or instructions <= 0:
            return
        self.builder.emit_chunked(
            stack,
            kind,
            access,
            instructions,
            max_segment=self.cfg.max_segment_inst,
            stage_id=stage_id,
            task_id=task_id,
        )

    def _account_alloc(self, nbytes: float, stage_id: int, task_id: int) -> None:
        """Track allocation; run a stop-the-world GC segment when the
        young generation fills up."""
        if self.silent:
            return
        self._alloc_since_gc += nbytes
        if self._alloc_since_gc >= self.cfg.gc_threshold_bytes:
            live = 0.5 * self.cfg.gc_threshold_bytes * (0.8 + 0.4 * self.rng.random())
            self._emit(
                self.ctx.frames.gc_stack(),
                OpKind.GC,
                AccessPattern.pointer(live),
                self.cfg.gc_inst,
                stage_id,
                task_id,
            )
            self._alloc_since_gc = 0.0

    def _batch_size(self, inst_per_record: float) -> int:
        """Records per batch so one batch ≈ one segment budget.

        ``max_segment_inst`` is in final (post-``instruction_scale``)
        instructions, so the per-record cost must be scaled the same
        way — otherwise a scaled-up workload emits unit-sized batches
        and its operations stop interleaving inside sampling units.
        """
        scaled = inst_per_record * self.ctx.hardware.config.instruction_scale
        if scaled <= 0:
            return 1024
        return max(1, min(4096, int(self.cfg.max_segment_inst / scaled)))

    # -- pipelined computation -------------------------------------------------

    def _collect_chain(
        self, rdd: RDD, split: int
    ) -> tuple[
        RDD,
        int,
        list[Operation],
        tuple[int, int] | None,
        dict[int, tuple[int, int]],
    ]:
        """Walk narrow edges down to the stage's source.

        Returns ``(source_rdd, source_split, ops, cache_hit, tee_after)``
        with ``ops`` ordered source-side first.  Union nodes re-route the
        split to the owning parent.

        Caching: if a cached node's partition is in the block store, the
        walk stops there — ``cache_hit = (rdd_id, split)`` becomes the
        pipeline's source and ``ops`` holds only the downstream
        operations.  Cached-but-absent nodes are recorded in
        ``tee_after`` (op index in source order → rdd_id, with -1 for
        the source itself) so the pipeline can fill the cache in
        passing.
        """
        ops: list[Operation] = []
        # (rdd_id, split-at-node) if this op's RDD caches, else None; the
        # split can differ from the task's when a union re-routes it.
        cached_flags: list[tuple[int, int] | None] = []
        cache_hit: tuple[int, int] | None = None
        store = self.ctx.block_store
        node: RDD = rdd
        while True:
            if isinstance(node, NarrowRDD):
                if node.is_cached and store.has(node.rdd_id, split):
                    cache_hit = (node.rdd_id, split)
                    break
                ops.append(node.op)
                cached_flags.append(
                    (node.rdd_id, split) if node.is_cached else None
                )
                node = node.parent
            elif isinstance(node, UnionRDD):
                node, split = node.resolve_split(split)
            else:
                if node.is_cached and store.has(node.rdd_id, split):
                    cache_hit = (node.rdd_id, split)
                break
        ops.reverse()
        cached_flags.reverse()
        tee_after: dict[int, tuple[int, int]] = {}
        if cache_hit is None:
            for idx, entry in enumerate(cached_flags):
                if entry is not None:
                    tee_after[idx] = entry
            if (
                not isinstance(node, UnionRDD)
                and getattr(node, "is_cached", False)
            ):
                tee_after[-1] = (node.rdd_id, split)
        return node, split, ops, cache_hit, tee_after

    def _source_batches(
        self,
        source: RDD,
        split: int,
        task_stack: CallStack,
        stage_id: int,
        task_id: int,
        batch_size: int,
    ) -> Iterator[list[Any]]:
        """Yield record batches from a stage source, emitting its IO."""
        if isinstance(source, HadoopRDD):
            records, nbytes = self.ctx.fs.read_block(source.path, split)
            n_batches = max(1, (len(records) + batch_size - 1) // batch_size)
            per_batch_inst = nbytes * self.cfg.io_read_inst_per_byte / n_batches
            read_stack = self.ctx.frames.hdfs_read(task_stack)
            for i in range(0, len(records), batch_size):
                batch = list(records[i : i + batch_size])
                # The record reader streams: IO interleaves with the ops.
                self._emit(
                    read_stack,
                    OpKind.IO,
                    AccessPattern.sequential(max(1.0, batch_total_bytes(batch))),
                    per_batch_inst,
                    stage_id,
                    task_id,
                )
                yield batch
        elif isinstance(source, ParallelCollectionRDD):
            records = source.slices[split]
            for i in range(0, len(records), batch_size):
                yield list(records[i : i + batch_size])
        elif isinstance(source, ShuffledRDD):
            yield from self._shuffle_read_batches(
                source, split, task_stack, stage_id, task_id, batch_size
            )
        elif isinstance(source, CoalescedRDD):
            # Drain each parent split's pipeline in turn (Spark's
            # coalesce iterator chains parent partitions the same way).
            for psplit in source.parent_splits(split):
                records = self.compute(
                    source.parent, psplit, task_stack, stage_id, task_id
                )
                for i in range(0, len(records), batch_size):
                    yield records[i : i + batch_size]
        else:
            raise TypeError(f"{type(source).__name__} cannot source a stage")

    def _shuffle_read_batches(
        self,
        rdd: ShuffledRDD,
        split: int,
        task_stack: CallStack,
        stage_id: int,
        task_id: int,
        batch_size: int,
    ) -> Iterator[list[Any]]:
        """Shuffle input: fetch blocks, combine or sort, yield batches."""
        blocks = self.ctx.shuffle.fetch(rdd.shuffle_id, split)
        fetch_stack = self.ctx.frames.shuffle_read(task_stack)

        if rdd.aggregator is not None:
            # Fetch and combine interleave per block, like Spark's
            # ExternalAppendOnlyMap consuming the fetch iterator.
            cmap = _CombinerMap(rdd.aggregator, merge_combiners=rdd.map_side_combine)
            combine_stack = self.ctx.frames.reduce_side_combine(task_stack)
            bsize = self._batch_size(INST_COMBINE_INSERT)
            for records, nbytes in blocks:
                self._emit(
                    fetch_stack,
                    OpKind.SHUFFLE,
                    AccessPattern.sequential(max(1.0, float(nbytes))),
                    nbytes * self.cfg.shuffle_inst_per_byte,
                    stage_id,
                    task_id,
                )
                for i in range(0, len(records), bsize):
                    batch = records[i : i + bsize]
                    cmap.insert_batch(batch)
                    self._emit(
                        combine_stack,
                        OpKind.REDUCE,
                        AccessPattern.random(cmap.working_set_bytes),
                        INST_COMBINE_INSERT * len(batch),
                        stage_id,
                        task_id,
                    )
            out = cmap.items()
            self._account_alloc(
                len(out) * cmap.entry_bytes, stage_id, task_id
            )
        else:
            all_records: list[Any] = []
            for records, nbytes in blocks:
                self._emit(
                    fetch_stack,
                    OpKind.SHUFFLE,
                    AccessPattern.sequential(max(1.0, float(nbytes))),
                    nbytes * self.cfg.shuffle_inst_per_byte,
                    stage_id,
                    task_id,
                )
                all_records.extend(records)
            self._account_alloc(batch_total_bytes(all_records), stage_id, task_id)
            if rdd.key_ordering:
                # The sort is a barrier: everything must be fetched
                # before the first sorted record can be produced.
                all_records = self._sort_records(
                    all_records,
                    self.ctx.frames.sort_by_key(task_stack),
                    stage_id,
                    task_id,
                )
            out = all_records

        for i in range(0, len(out), batch_size):
            yield out[i : i + batch_size]

    def _cached_batches(
        self,
        rdd_id: int,
        split: int,
        task_stack: CallStack,
        stage_id: int,
        task_id: int,
        batch_size: int,
    ) -> Iterator[list[Any]]:
        """Yield a cached partition as batches (cheap memory scans)."""
        records, nbytes = self.ctx.block_store.get(rdd_id, split)
        n_batches = max(1, (len(records) + batch_size - 1) // batch_size)
        per_batch = nbytes * self.cfg.cache_read_inst_per_byte / n_batches
        stack = self.ctx.frames.cache_read(task_stack)
        for i in range(0, len(records), batch_size):
            batch = list(records[i : i + batch_size])
            self._emit(
                stack,
                OpKind.FRAMEWORK,
                AccessPattern.sequential(max(1.0, batch_total_bytes(batch))),
                per_batch,
                stage_id,
                task_id,
            )
            yield batch

    def _run_pipeline(
        self,
        rdd: RDD,
        split: int,
        task_stack: CallStack,
        stage_id: int,
        task_id: int,
        sink: Callable[[list[Any]], None],
    ) -> None:
        """Pump source batches through the op chain into ``sink``.

        Cached RDDs short-circuit the chain on a hit; on a miss, their
        output batches are teed into the block store as they stream by
        (emitting the memory-store write cost).
        """
        source, src_split, ops, cache_hit, tee_after = self._collect_chain(
            rdd, split
        )
        states = [op.new_state() for op in ops]
        stacks = [
            self.ctx.frames.with_frames(task_stack, op.frames) for op in ops
        ]
        first_cost = ops[0].inst_per_record if ops else 200_000.0
        batch_size = self._batch_size(first_cost)

        tees: dict[int, list[Any]] = {idx: [] for idx in tee_after}
        cache_write_stack = self.ctx.frames.cache_write(task_stack)

        def tee(idx: int, batch: list[Any]) -> None:
            if idx not in tees or self.silent:
                return
            tees[idx].extend(batch)
            self._emit(
                cache_write_stack,
                OpKind.FRAMEWORK,
                AccessPattern.sequential(max(1.0, batch_total_bytes(batch))),
                batch_total_bytes(batch) * self.cfg.cache_write_inst_per_byte,
                stage_id,
                task_id,
            )

        if cache_hit is not None:
            batches = self._cached_batches(
                cache_hit[0], cache_hit[1], task_stack, stage_id, task_id,
                batch_size,
            )
        else:
            batches = self._source_batches(
                source, src_split, task_stack, stage_id, task_id, batch_size
            )

        for batch in batches:
            tee(-1, batch)
            x = batch
            for idx, (op, state, stack) in enumerate(zip(ops, states, stacks)):
                if not x:
                    break
                self._emit(
                    stack,
                    op.op_kind,
                    op.access(x, state),
                    op.instructions(x),
                    stage_id,
                    task_id,
                )
                x = op.apply(x, state)
                tee(idx, x)
            if x:
                self._account_alloc(batch_total_bytes(x), stage_id, task_id)
                sink(x)

        if not self.silent:
            for idx, records in tees.items():
                rdd_id, node_split = tee_after[idx]
                self.ctx.block_store.put(rdd_id, node_split, records)

    def compute(
        self, rdd: RDD, split: int, task_stack: CallStack, stage_id: int, task_id: int
    ) -> list[Any]:
        """Materialise one partition (pipelined into a collect sink)."""
        out: list[Any] = []
        self._run_pipeline(rdd, split, task_stack, stage_id, task_id, out.extend)
        return out

    # -- sort kernel -------------------------------------------------------------

    def _sort_records(
        self,
        records: list[Any],
        stack: CallStack,
        stage_id: int,
        task_id: int,
        *,
        op_kind: OpKind = OpKind.SORT,
    ) -> list[Any]:
        """Sort key-value records with the instrumented quicksort."""
        if not records:
            return records
        keys = np.array([k for k, _v in records])
        # Include JVM object overhead: a buffered pair costs far more
        # than its serialised payload.
        rec_bytes = estimate_record_bytes(records[0]) + MAP_ENTRY_OVERHEAD

        def emit_pass(n_elems: int, ws_elems: int, _is_leaf: bool) -> None:
            self._emit(
                stack,
                op_kind,
                AccessPattern.random(max(1.0, ws_elems * rec_bytes)),
                INST_SORT_PER_ELEMENT * n_elems,
                stage_id,
                task_id,
            )

        order = instrumented_quicksort(keys, emit_pass, rng=self.rng)
        return [records[int(i)] for i in order]

    # -- task entry points -----------------------------------------------------

    def run_shuffle_map_task(
        self, stage: Any, split: int, task_id: int, contention: int
    ) -> None:
        """Compute a partition and write its shuffle buckets.

        With map-side combine, every pipelined batch is merged into the
        combiner map as it is produced (``Aggregator.combineValuesByKey``
        interleaving with the upstream map work); otherwise batches are
        routed to their buckets immediately.  Buckets are written out at
        task end, as Spark's sort-shuffle writer does.
        """
        self.builder.set_contention(contention)
        task_stack = self.ctx.frames.task_stack(shuffle_map=True)
        dep: ShuffledRDD = stage.shuffle_dep
        sid, write_stack = stage.stage_id, self.ctx.frames.shuffle_write(task_stack)

        if dep.map_side_combine:
            cmap = _CombinerMap(dep.aggregator, merge_combiners=False)
            combine_stack = self.ctx.frames.map_side_combine(task_stack)

            def sink(batch: list[Any]) -> None:
                cmap.insert_batch(batch)
                self._emit(
                    combine_stack,
                    OpKind.REDUCE,
                    AccessPattern.random(cmap.working_set_bytes),
                    INST_COMBINE_INSERT * len(batch),
                    sid,
                    task_id,
                )

            self._run_pipeline(stage.rdd, split, task_stack, sid, task_id, sink)
            records = cmap.items()
            self._account_alloc(len(records) * cmap.entry_bytes, sid, task_id)
            buckets = self._partition_records(
                records, dep, write_stack, sid, task_id
            )
        else:
            partitioner = dep.partitioner
            assert partitioner is not None, "partitioner must be fitted first"
            buckets = [[] for _ in range(partitioner.num_partitions)]

            def sink(batch: list[Any]) -> None:
                for rec in batch:
                    buckets[partitioner.partition(rec[0])].append(rec)
                self._emit(
                    write_stack,
                    OpKind.SHUFFLE,
                    AccessPattern.sequential(max(1.0, batch_total_bytes(batch))),
                    INST_PARTITION_RECORD * len(batch),
                    sid,
                    task_id,
                )

            self._run_pipeline(stage.rdd, split, task_stack, sid, task_id, sink)

        for reduce_part, bucket in enumerate(buckets):
            nbytes = self.ctx.shuffle.write_block(
                dep.shuffle_id, task_id, reduce_part, bucket
            )
            self._emit(
                write_stack,
                OpKind.IO,
                AccessPattern.sequential(max(1.0, float(nbytes))),
                nbytes * self.cfg.io_write_inst_per_byte,
                sid,
                task_id,
            )

    def _partition_records(
        self,
        records: list[Any],
        dep: ShuffledRDD,
        write_stack: CallStack,
        stage_id: int,
        task_id: int,
    ) -> list[list[Any]]:
        """Route combined records to their reduce buckets."""
        partitioner = dep.partitioner
        assert partitioner is not None
        buckets: list[list[Any]] = [[] for _ in range(partitioner.num_partitions)]
        bsize = self._batch_size(INST_PARTITION_RECORD)
        for i in range(0, len(records), bsize):
            batch = records[i : i + bsize]
            for rec in batch:
                buckets[partitioner.partition(rec[0])].append(rec)
            self._emit(
                write_stack,
                OpKind.SHUFFLE,
                AccessPattern.sequential(max(1.0, batch_total_bytes(batch))),
                INST_PARTITION_RECORD * len(batch),
                stage_id,
                task_id,
            )
        return buckets

    def run_doomed_attempt(
        self, stage: Any, split: int, task_id: int, contention: int
    ) -> None:
        """One failed task attempt: recompute the partition, commit nothing.

        Spark recovers a lost task by re-running it from lineage; the
        doomed attempt burns the same compute — trace work, HDFS/shuffle
        reads, GC — but skips every side effect (no shuffle-bucket
        write, no action, no output part-file), so the real attempt
        that follows produces byte-identical job results.
        """
        self.builder.set_contention(contention)
        task_stack = self.ctx.frames.task_stack(
            shuffle_map=stage.shuffle_dep is not None
        )
        self.compute(stage.rdd, split, task_stack, stage.stage_id, task_id)

    def inject_stall(
        self, instructions: float, stage_id: int, task_id: int
    ) -> None:
        """Straggler stall: framework-side busywork under memory pressure.

        ``instructions`` is in final (post-``instruction_scale``) terms
        — fault injection sizes stalls from retired-instruction deltas.
        """
        stack = self.ctx.frames.with_frames(
            self.ctx.frames.task_stack(shuffle_map=False),
            (("org.apache.spark.executor.Executor", "reportHeartBeat"),),
        )
        scale = self.ctx.hardware.config.instruction_scale
        self._emit(
            stack,
            OpKind.FRAMEWORK,
            AccessPattern.pointer(48e6),
            instructions / scale,
            stage_id,
            task_id,
        )

    def inject_gc_pause(
        self, instructions: float, stage_id: int, task_id: int
    ) -> None:
        """One long stop-the-world collection appended to the task."""
        self._emit(
            self.ctx.frames.gc_stack(),
            OpKind.GC,
            AccessPattern.pointer(0.75 * self.cfg.gc_threshold_bytes),
            instructions,
            stage_id,
            task_id,
        )

    def run_result_task(
        self,
        stage: Any,
        split: int,
        task_id: int,
        contention: int,
        action: Callable[[list[Any], CallStack, int, int], Any],
    ) -> Any:
        """Compute a partition and apply the action to it."""
        self.builder.set_contention(contention)
        task_stack = self.ctx.frames.task_stack(shuffle_map=False)
        records = self.compute(stage.rdd, split, task_stack, stage.stage_id, task_id)
        return action(records, task_stack, stage.stage_id, task_id)

    def run_save_task(
        self, stage: Any, split: int, task_id: int, contention: int, path: str
    ) -> int:
        """Result task whose action writes text output, pipelined.

        Formatting and HDFS writes interleave with the upstream chain
        (one write burst per batch), as a real ``saveAsTextFile`` task's
        record writer does.
        """
        self.builder.set_contention(contention)
        task_stack = self.ctx.frames.task_stack(shuffle_map=False)
        sid = stage.stage_id
        write_stack = self.ctx.frames.hdfs_write(task_stack)
        lines: list[str] = []

        def sink(batch: list[Any]) -> None:
            formatted = [format_record(r) for r in batch]
            lines.extend(formatted)
            nbytes = sum(len(s) + 1 for s in formatted)
            self._emit(
                write_stack,
                OpKind.IO,
                AccessPattern.sequential(max(1.0, float(nbytes))),
                nbytes * self.cfg.io_write_inst_per_byte
                + len(batch) * self.cfg.format_inst_per_record,
                sid,
                task_id,
            )

        self._run_pipeline(stage.rdd, split, task_stack, sid, task_id, sink)
        self.ctx.fs.append_block(f"{path}/part-{task_id:05d}", lines)
        return len(lines)
