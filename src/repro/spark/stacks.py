"""Canonical Spark call-stack frames.

The simulated JVMTI reports stacks that look like real Spark executor
stacks (Figure 5 of the paper): thread entry frames, then the task
runner, then the operation-specific frames, then leaf frames such as
serialisation or disk writes.  This module centralises the frame
vocabulary so that workloads, the executor and tests all agree on it.
"""

from __future__ import annotations

from repro.jvm.methods import CallStack, MethodRegistry

__all__ = ["SparkFrames"]

Frame = tuple[str, str]

EXECUTOR_BASE: tuple[Frame, ...] = (
    ("java.lang.Thread", "run"),
    ("java.util.concurrent.ThreadPoolExecutor$Worker", "run"),
    ("org.apache.spark.executor.Executor$TaskRunner", "run"),
)

SHUFFLE_MAP_TASK: tuple[Frame, ...] = (
    ("org.apache.spark.scheduler.Task", "run"),
    ("org.apache.spark.scheduler.ShuffleMapTask", "runTask"),
)

RESULT_TASK: tuple[Frame, ...] = (
    ("org.apache.spark.scheduler.Task", "run"),
    ("org.apache.spark.scheduler.ResultTask", "runTask"),
)

HDFS_READ: tuple[Frame, ...] = (
    ("org.apache.spark.rdd.HadoopRDD$$anon$1", "getNext"),
    ("org.apache.hadoop.hdfs.DFSInputStream", "read"),
)

HDFS_WRITE: tuple[Frame, ...] = (
    ("org.apache.spark.rdd.PairRDDFunctions", "saveAsHadoopDataset"),
    ("org.apache.hadoop.mapred.TextOutputFormat$LineRecordWriter", "write"),
    ("org.apache.hadoop.hdfs.DFSOutputStream", "write"),
)

SHUFFLE_WRITE: tuple[Frame, ...] = (
    ("org.apache.spark.shuffle.sort.SortShuffleWriter", "write"),
    ("org.apache.spark.storage.DiskBlockObjectWriter", "write"),
    ("java.io.ObjectOutputStream", "writeObject"),
)

SHUFFLE_READ: tuple[Frame, ...] = (
    ("org.apache.spark.storage.ShuffleBlockFetcherIterator", "next"),
    ("java.io.ObjectInputStream", "readObject"),
)

MAP_SIDE_COMBINE: tuple[Frame, ...] = (
    ("org.apache.spark.shuffle.sort.SortShuffleWriter", "write"),
    ("org.apache.spark.Aggregator", "combineValuesByKey"),
    ("org.apache.spark.util.collection.ExternalAppendOnlyMap", "insertAll"),
    ("org.apache.spark.util.collection.AppendOnlyMap", "changeValue"),
)

REDUCE_SIDE_COMBINE: tuple[Frame, ...] = (
    ("org.apache.spark.Aggregator", "combineCombinersByKey"),
    ("org.apache.spark.util.collection.ExternalAppendOnlyMap", "insertAll"),
    ("org.apache.spark.util.collection.AppendOnlyMap", "changeValue"),
)

SORT_BY_KEY: tuple[Frame, ...] = (
    ("org.apache.spark.rdd.ShuffledRDD", "compute"),
    ("org.apache.spark.util.collection.ExternalSorter", "insertAll"),
    ("org.apache.spark.util.collection.TimSort", "sort"),
)

CACHE_READ: tuple[Frame, ...] = (
    ("org.apache.spark.storage.BlockManager", "getLocalValues"),
    ("org.apache.spark.storage.memory.MemoryStore", "getValues"),
)

CACHE_WRITE: tuple[Frame, ...] = (
    ("org.apache.spark.storage.BlockManager", "doPutIterator"),
    ("org.apache.spark.storage.memory.MemoryStore", "putIteratorAsValues"),
)

GC: tuple[Frame, ...] = (
    ("jvm.internal.SafepointSynchronize", "begin"),
    ("jvm.gc.G1CollectedHeap", "collect"),
    ("jvm.gc.G1YoungCollector", "evacuate"),
)


class SparkFrames:
    """Interns the canonical Spark frames against one registry and
    assembles full task stacks from them."""

    def __init__(self, registry: MethodRegistry) -> None:
        self.registry = registry
        self._executor_base = self._intern(EXECUTOR_BASE)
        self._shuffle_map = self._intern(SHUFFLE_MAP_TASK)
        self._result = self._intern(RESULT_TASK)

    def _intern(self, frames: tuple[Frame, ...]) -> tuple[int, ...]:
        return tuple(self.registry.intern(c, m) for c, m in frames)

    def intern_frames(self, frames: tuple[Frame, ...]) -> tuple[int, ...]:
        """Intern arbitrary ``(class, method)`` frames."""
        return self._intern(frames)

    def executor_stack(self) -> CallStack:
        """Stack of an idle executor thread (levels 1–3 of Figure 5)."""
        return CallStack(self._executor_base)

    def task_stack(self, *, shuffle_map: bool) -> CallStack:
        """Executor stack with the task-runner frames pushed."""
        task = self._shuffle_map if shuffle_map else self._result
        return CallStack(self._executor_base + task)

    def with_frames(
        self, base: CallStack, frames: tuple[Frame, ...]
    ) -> CallStack:
        """Push named frames (interning them) onto ``base``."""
        return base.push_all(self._intern(frames))

    # Convenience accessors for the fixed vocabularies --------------------

    def hdfs_read(self, base: CallStack) -> CallStack:
        """Task stack inside an HDFS block read."""
        return self.with_frames(base, HDFS_READ)

    def hdfs_write(self, base: CallStack) -> CallStack:
        """Task stack inside an HDFS output write."""
        return self.with_frames(base, HDFS_WRITE)

    def shuffle_write(self, base: CallStack) -> CallStack:
        """Task stack while writing shuffle buckets to disk."""
        return self.with_frames(base, SHUFFLE_WRITE)

    def shuffle_read(self, base: CallStack) -> CallStack:
        """Task stack while fetching shuffle blocks."""
        return self.with_frames(base, SHUFFLE_READ)

    def map_side_combine(self, base: CallStack) -> CallStack:
        """Task stack inside ``Aggregator.combineValuesByKey``."""
        return self.with_frames(base, MAP_SIDE_COMBINE)

    def reduce_side_combine(self, base: CallStack) -> CallStack:
        """Task stack inside ``Aggregator.combineCombinersByKey``."""
        return self.with_frames(base, REDUCE_SIDE_COMBINE)

    def sort_by_key(self, base: CallStack) -> CallStack:
        """Task stack inside the reduce-side sort of ``sortByKey``."""
        return self.with_frames(base, SORT_BY_KEY)

    def cache_read(self, base: CallStack) -> CallStack:
        """Task stack while reading a cached partition from memory."""
        return self.with_frames(base, CACHE_READ)

    def cache_write(self, base: CallStack) -> CallStack:
        """Task stack while tee-ing a partition into the memory store."""
        return self.with_frames(base, CACHE_WRITE)

    def gc_stack(self) -> CallStack:
        """Stack reported while a stop-the-world GC runs on the thread."""
        return CallStack(self._executor_base + self._intern(GC))
