"""Stage construction: cut the RDD lineage at shuffle dependencies.

A *stage* is a maximal chain of narrow transformations; its terminal
RDD either feeds a shuffle (shuffle-map stage) or the action (result
stage).  ``build_stages`` returns stages in a topological order ending
with the result stage, deduplicating shared shuffle parents by
shuffle id — the same structure Spark's ``DAGScheduler`` builds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.spark.rdd import RDD, ShuffledRDD

__all__ = ["Stage", "build_stages"]


@dataclass
class Stage:
    """One execution stage.

    ``rdd`` is the terminal RDD whose partitions the tasks compute;
    ``shuffle_dep`` is the :class:`ShuffledRDD` this stage writes to
    (``None`` for the result stage).
    """

    stage_id: int
    rdd: RDD
    shuffle_dep: ShuffledRDD | None
    parents: list["Stage"] = field(default_factory=list)

    @property
    def is_result(self) -> bool:
        """Whether this is the final (action) stage."""
        return self.shuffle_dep is None

    @property
    def name(self) -> str:
        """Stage label used in job metadata."""
        kind = "result" if self.is_result else "shuffleMap"
        return f"{kind}:{self.rdd.name}"

    def num_tasks(self) -> int:
        """One task per partition of the terminal RDD."""
        return self.rdd.num_partitions()


def _shuffle_parents(rdd: RDD) -> list[ShuffledRDD]:
    """All ShuffledRDDs reachable through narrow edges from ``rdd``.

    The search stops at each ShuffledRDD: anything above it belongs to
    an earlier stage.
    """
    found: list[ShuffledRDD] = []
    seen: set[int] = set()
    stack: list[RDD] = [rdd]
    while stack:
        node = stack.pop()
        if node.rdd_id in seen:
            continue
        seen.add(node.rdd_id)
        if isinstance(node, ShuffledRDD):
            found.append(node)
            continue  # cut: do not walk past the shuffle
        stack.extend(node.parents)
    return found


def build_stages(final_rdd: RDD) -> list[Stage]:
    """Build all stages for a job ending at ``final_rdd``.

    Returns stages topologically sorted (parents before children); the
    last element is the result stage.
    """
    stage_by_shuffle: dict[int, Stage] = {}
    counter = {"next": 0}
    ordered: list[Stage] = []

    def make_stage(rdd: RDD, dep: ShuffledRDD | None) -> Stage:
        stage = Stage(stage_id=counter["next"], rdd=rdd, shuffle_dep=dep)
        counter["next"] += 1
        for shuffled in _shuffle_parents(rdd):
            parent = stage_by_shuffle.get(shuffled.shuffle_id)
            if parent is None:
                parent = make_stage(shuffled.parent, shuffled)
                stage_by_shuffle[shuffled.shuffle_id] = parent
            stage.parents.append(parent)
        ordered.append(stage)
        return stage

    make_stage(final_rdd, None)
    return ordered
