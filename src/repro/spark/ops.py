"""Narrow-transformation operations.

Every narrow RDD transformation is described by an :class:`Operation`:
what it computes (a batch function over records), how it appears in
call stacks (the frames pushed under the task runner), and what it
costs on the hardware model (instructions per record and a memory
access pattern).  The executor applies operations batch-by-batch,
emitting one trace segment per (operation, batch).

Instruction costs are *simulated instructions per record*, calibrated
so that JVM-grade per-record overheads (iterator plumbing, boxing,
virtual dispatch) land a sampling unit of 100 M instructions on a few
hundred record operations — the same order as the paper's setup at 10 G
input scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.hdfs.filesystem import estimate_record_bytes
from repro.jvm.machine import AccessPattern, OpKind

__all__ = [
    "Operation",
    "CustomOp",
    "make_map_op",
    "make_flat_map_op",
    "make_filter_op",
    "make_map_partitions_op",
    "make_map_values_op",
    "batch_bytes",
]

Frame = tuple[str, str]

# Default simulated-instruction costs per record (see module docstring).
INST_MAP = 220_000.0
INST_FLAT_MAP = 260_000.0
INST_FILTER = 140_000.0
INST_MAP_VALUES = 180_000.0


def batch_bytes(batch: list[Any]) -> float:
    """Estimated byte size of a batch (first record × count).

    Records within a batch are homogeneous by construction, so sampling
    one record keeps the estimate O(1) instead of O(batch).
    """
    if not batch:
        return 0.0
    return float(estimate_record_bytes(batch[0]) * len(batch))


@dataclass
class Operation:
    """One narrow transformation as the executor sees it.

    Parameters
    ----------
    name:
        Operation name for stage naming and debugging (``"map"``, …).
    frames:
        ``(class, method)`` frames pushed under the task stack while
        this operation runs; the leaf frame is what JVMTI snapshots see.
    op_kind:
        Hardware-model operation kind (also the phase-type ground truth).
    batch_fn:
        ``batch -> batch`` transform over a list of records.  May carry
        per-partition state (see :meth:`new_state`); stateful subclasses
        receive the state as a second argument.
    inst_per_record:
        Simulated instructions per *input* record.
    inst_fn:
        Optional override: ``batch -> instructions`` for operations
        whose cost is not per-record (e.g. per-edge-chunk graph kernels).
    access_fn:
        Optional override: ``(batch, state) -> AccessPattern``; default
        is a streaming scan over the batch bytes.
    """

    name: str
    frames: tuple[Frame, ...]
    op_kind: OpKind
    batch_fn: Callable[[list[Any]], list[Any]]
    inst_per_record: float = INST_MAP
    inst_fn: Callable[[list[Any]], float] | None = None
    access_fn: Callable[[list[Any], Any], AccessPattern] | None = None
    stateful: bool = False

    def new_state(self) -> Any:
        """Fresh per-partition state (None for stateless operations)."""
        return None

    def apply(self, batch: list[Any], state: Any) -> list[Any]:
        """Transform one batch of records."""
        return self.batch_fn(batch)

    def instructions(self, batch: list[Any]) -> float:
        """Simulated instructions to process ``batch``."""
        if self.inst_fn is not None:
            return self.inst_fn(batch)
        return self.inst_per_record * len(batch)

    def access(self, batch: list[Any], state: Any) -> AccessPattern:
        """Memory pattern while processing ``batch``."""
        if self.access_fn is not None:
            return self.access_fn(batch, state)
        return AccessPattern.sequential(max(1.0, batch_bytes(batch)))


class CustomOp(Operation):
    """A stateful operation for workload-specific kernels.

    ``batch_fn`` receives ``(batch, state)`` where ``state`` is produced
    by ``state_fn`` once per partition — the hook GraphX-style kernels
    (``aggregateUsingIndex`` etc.) use to model structures that grow
    across batches.
    """

    def __init__(
        self,
        name: str,
        frames: tuple[Frame, ...],
        op_kind: OpKind,
        batch_fn: Callable[[list[Any], Any], list[Any]],
        *,
        state_fn: Callable[[], Any] | None = None,
        inst_per_record: float = INST_MAP,
        inst_fn: Callable[[list[Any]], float] | None = None,
        access_fn: Callable[[list[Any], Any], AccessPattern] | None = None,
    ) -> None:
        super().__init__(
            name=name,
            frames=frames,
            op_kind=op_kind,
            batch_fn=batch_fn,  # type: ignore[arg-type]
            inst_per_record=inst_per_record,
            inst_fn=inst_fn,
            access_fn=access_fn,
            stateful=True,
        )
        self._state_fn = state_fn

    def new_state(self) -> Any:
        return self._state_fn() if self._state_fn else {}

    def apply(self, batch: list[Any], state: Any) -> list[Any]:
        return self.batch_fn(batch, state)  # type: ignore[call-arg]


def _anon_frames(op: str, fn_name: str) -> tuple[Frame, ...]:
    """Frames Spark shows for a user closure under an RDD operation."""
    return (
        (f"org.apache.spark.rdd.RDD$$anonfun${op}", "apply"),
        ("scala.collection.Iterator$$anon$11", "next"),
        (fn_name.rsplit(".", 1)[0] or fn_name, fn_name.rsplit(".", 1)[-1]),
    )


def make_map_op(
    fn: Callable[[Any], Any],
    fn_name: str = "closure.apply",
    *,
    inst_per_record: float = INST_MAP,
    op_kind: OpKind = OpKind.MAP,
) -> Operation:
    """Element-wise ``map`` operation."""
    return Operation(
        name="map",
        frames=_anon_frames("map", fn_name),
        op_kind=op_kind,
        batch_fn=lambda batch: [fn(x) for x in batch],
        inst_per_record=inst_per_record,
    )


def make_flat_map_op(
    fn: Callable[[Any], Iterable[Any]],
    fn_name: str = "closure.apply",
    *,
    inst_per_record: float = INST_FLAT_MAP,
) -> Operation:
    """``flatMap``: one record in, zero or more out."""

    def batch_fn(batch: list[Any]) -> list[Any]:
        out: list[Any] = []
        for x in batch:
            out.extend(fn(x))
        return out

    return Operation(
        name="flatMap",
        frames=_anon_frames("flatMap", fn_name),
        op_kind=OpKind.MAP,
        batch_fn=batch_fn,
        inst_per_record=inst_per_record,
    )


def make_filter_op(
    pred: Callable[[Any], bool],
    fn_name: str = "closure.apply",
    *,
    inst_per_record: float = INST_FILTER,
) -> Operation:
    """``filter``: keep records satisfying ``pred``."""
    return Operation(
        name="filter",
        frames=_anon_frames("filter", fn_name),
        op_kind=OpKind.MAP,
        batch_fn=lambda batch: [x for x in batch if pred(x)],
        inst_per_record=inst_per_record,
    )


def make_map_partitions_op(
    fn: Callable[[list[Any]], list[Any]],
    fn_name: str = "closure.apply",
    *,
    inst_per_record: float = INST_MAP,
    inst_fn: Callable[[list[Any]], float] | None = None,
    op_kind: OpKind = OpKind.MAP,
    access_fn: Callable[[list[Any], Any], AccessPattern] | None = None,
    frames: tuple[Frame, ...] | None = None,
) -> Operation:
    """``mapPartitions``: transform records in bulk.

    The executor chunks a partition into batches, so ``fn`` may be
    called several times per partition; this matches Spark's contract
    only for per-element-decomposable functions, which is all the
    workloads need.
    """
    return Operation(
        name="mapPartitions",
        frames=frames or _anon_frames("mapPartitions", fn_name),
        op_kind=op_kind,
        batch_fn=fn,
        inst_per_record=inst_per_record,
        inst_fn=inst_fn,
        access_fn=access_fn,
    )


def make_map_values_op(
    fn: Callable[[Any], Any],
    fn_name: str = "closure.apply",
    *,
    inst_per_record: float = INST_MAP_VALUES,
) -> Operation:
    """``mapValues``: transform the value of each key-value pair."""
    return Operation(
        name="mapValues",
        frames=_anon_frames("mapValues", fn_name),
        op_kind=OpKind.MAP,
        batch_fn=lambda batch: [(k, fn(v)) for k, v in batch],
        inst_per_record=inst_per_record,
    )
