"""Shuffle machinery: partitioners, the Aggregator, and block storage.

Mirrors Spark's hash-shuffle data plane: map tasks write one bucket per
reduce partition; reduce tasks fetch every map's bucket for their
partition.  The :class:`Aggregator` carries the three combine functions
of ``combineByKey`` and is applied on the map side (map-side combine —
the paper's Figure 14 effect) and/or the reduce side.
"""

from __future__ import annotations

import zlib
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.hdfs.filesystem import estimate_record_bytes

__all__ = [
    "stable_hash",
    "HashPartitioner",
    "RangePartitioner",
    "Aggregator",
    "ShuffleManager",
]


def stable_hash(key: Any) -> int:
    """Deterministic, process-independent hash for shuffle routing.

    Python's ``hash`` for ``str`` is salted per process; shuffle routing
    must be reproducible across runs, so strings/bytes go through CRC32
    and other values through their ``repr``.
    """
    if isinstance(key, bool):
        return int(key)
    if isinstance(key, int):
        return key & 0x7FFFFFFF
    if isinstance(key, str):
        return zlib.crc32(key.encode("utf-8"))
    if isinstance(key, bytes):
        return zlib.crc32(key)
    if isinstance(key, tuple):
        h = 0x811C9DC5
        for item in key:
            h = ((h * 0x01000193) ^ stable_hash(item)) & 0x7FFFFFFF
        return h
    return zlib.crc32(repr(key).encode("utf-8"))


@dataclass(frozen=True, slots=True)
class HashPartitioner:
    """Routes a key to ``stable_hash(key) % num_partitions``."""

    num_partitions: int

    def __post_init__(self) -> None:
        if self.num_partitions <= 0:
            raise ValueError("num_partitions must be positive")

    def partition(self, key: Any) -> int:
        """Reduce-partition index for ``key``."""
        return stable_hash(key) % self.num_partitions


@dataclass(frozen=True, slots=True)
class RangePartitioner:
    """Routes keys into sorted ranges (Spark's ``sortByKey`` partitioner).

    ``bounds`` are the ``num_partitions - 1`` split points, ascending;
    keys ≤ ``bounds[i]`` (and above earlier bounds) go to partition i.
    """

    bounds: tuple[Any, ...]

    @property
    def num_partitions(self) -> int:
        """Number of output ranges."""
        return len(self.bounds) + 1

    def partition(self, key: Any) -> int:
        """Range index for ``key`` via binary search."""
        return bisect_left(self.bounds, key)

    @staticmethod
    def from_sample(sample: Iterable[Any], num_partitions: int) -> "RangePartitioner":
        """Fit bounds from a key sample, like Spark's sampling pass."""
        keys = sorted(sample)
        if num_partitions <= 1 or not keys:
            return RangePartitioner(bounds=())
        step = len(keys) / num_partitions
        bounds = []
        for i in range(1, num_partitions):
            bounds.append(keys[min(len(keys) - 1, int(i * step))])
        # Deduplicate while preserving order (heavily skewed samples can
        # repeat a bound, which would create empty ranges).
        uniq: list[Any] = []
        for b in bounds:
            if not uniq or b > uniq[-1]:
                uniq.append(b)
        return RangePartitioner(bounds=tuple(uniq))


@dataclass(frozen=True, slots=True)
class Aggregator:
    """The three combine functions of ``combineByKey``."""

    create_combiner: Callable[[Any], Any]
    merge_value: Callable[[Any, Any], Any]
    merge_combiners: Callable[[Any, Any], Any]

    @staticmethod
    def from_reduce(fn: Callable[[Any, Any], Any]) -> "Aggregator":
        """Aggregator equivalent of ``reduceByKey(fn)``."""
        return Aggregator(
            create_combiner=lambda v: v,
            merge_value=fn,
            merge_combiners=fn,
        )

    @staticmethod
    def group() -> "Aggregator":
        """Aggregator equivalent of ``groupByKey()``."""

        def create(v: Any) -> list[Any]:
            return [v]

        def merge_value(c: list[Any], v: Any) -> list[Any]:
            c.append(v)
            return c

        def merge_combiners(a: list[Any], b: list[Any]) -> list[Any]:
            a.extend(b)
            return a

        return Aggregator(create, merge_value, merge_combiners)


@dataclass
class ShuffleManager:
    """In-memory shuffle block store.

    Keyed by ``(shuffle_id, map_task, reduce_partition)``; values are
    ``(records, estimated_bytes)``.  Fetches return one block per map
    task so the reduce side prices each network/disk read separately.
    """

    _blocks: dict[tuple[int, int, int], tuple[list[Any], int]] = field(
        default_factory=dict
    )
    bytes_written: int = 0
    bytes_fetched: int = 0

    def write_block(
        self, shuffle_id: int, map_task: int, reduce_part: int, records: list[Any]
    ) -> int:
        """Store one map-output bucket; returns its estimated bytes."""
        nbytes = sum(estimate_record_bytes(r) for r in records)
        self._blocks[(shuffle_id, map_task, reduce_part)] = (records, nbytes)
        self.bytes_written += nbytes
        return nbytes

    def fetch(
        self, shuffle_id: int, reduce_part: int
    ) -> list[tuple[list[Any], int]]:
        """All map buckets for one reduce partition, in map-task order."""
        out = []
        for (sid, mtask, rpart), (records, nbytes) in sorted(self._blocks.items()):
            if sid == shuffle_id and rpart == reduce_part:
                out.append((records, nbytes))
                self.bytes_fetched += nbytes
        return out

    def map_tasks_for(self, shuffle_id: int) -> set[int]:
        """Map-task ids that wrote output for a shuffle."""
        return {m for (sid, m, _r) in self._blocks if sid == shuffle_id}
