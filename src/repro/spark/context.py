"""SparkContext: the entry point tying the simulator together.

A context owns the shared substrate objects — method registry, stack
table, hardware model, simulated HDFS, shuffle store — plus the executor
pool and the DAG scheduler.  After running one or more jobs, the
accumulated executor traces are packaged into a
:class:`~repro.jvm.job.JobTrace` for SimProf.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.faults.inject import ClusterFaultInjector
from repro.faults.plan import FaultPlan
from repro.faults.report import FaultReport
from repro.hdfs.filesystem import SimulatedHDFS
from repro.jvm.job import JobTrace, StageInfo
from repro.jvm.stream import (
    JobEnd,
    StageEvent,
    ThreadStart,
    TraceEvent,
    TraceStream,
    pump_events,
    sequenced_batch,
)
from repro.jvm.machine import HardwareModel, MachineConfig
from repro.jvm.methods import MethodRegistry, StackTable
from repro.spark.blockstore import BlockStore
from repro.spark.executor import Executor
from repro.spark.rdd import HadoopRDD, ParallelCollectionRDD, RDD
from repro.spark.scheduler import DAGScheduler
from repro.spark.shuffle import ShuffleManager
from repro.spark.stacks import SparkFrames

__all__ = ["SparkConfig", "SparkContext"]


@dataclass(frozen=True, slots=True)
class SparkConfig:
    """Simulator knobs.

    ``n_executors`` defaults to the testbed's 8 hardware threads.
    Per-byte IO instruction costs model deserialisation + copy overhead
    of the respective path; ``max_segment_inst`` bounds trace-segment
    size so segments stay well below the profiler's snapshot period.
    """

    n_executors: int = 8
    default_parallelism: int = 8
    seed: int = 0
    machine: MachineConfig = field(default_factory=MachineConfig)
    io_read_inst_per_byte: float = 250.0
    io_write_inst_per_byte: float = 300.0
    shuffle_inst_per_byte: float = 300.0
    format_inst_per_record: float = 90_000.0
    gc_threshold_bytes: float = 48e6
    gc_inst: float = 2.5e6
    max_segment_inst: float = 4e6
    # Memory-store (RDD.cache) path costs: far cheaper than recompute
    # or disk, but not free (deserialisation-free iteration + copy).
    cache_read_inst_per_byte: float = 3.0
    cache_write_inst_per_byte: float = 6.0

    def __post_init__(self) -> None:
        if self.n_executors <= 0:
            raise ValueError("need at least one executor")
        if self.default_parallelism <= 0:
            raise ValueError("default_parallelism must be positive")


class SparkContext:
    """Driver-side handle: create RDDs, run jobs, export the trace."""

    def __init__(
        self,
        config: SparkConfig | None = None,
        fs: SimulatedHDFS | None = None,
        faults: FaultPlan | None = None,
    ) -> None:
        self.config = config or SparkConfig()
        self.fs = fs or SimulatedHDFS()
        # Null plans stay None so the fault-free path is untouched.
        self.faults: ClusterFaultInjector | None = None
        if faults is not None and faults.cluster_active:
            self.faults = ClusterFaultInjector(faults, "spark")
        self.registry = MethodRegistry()
        self.stack_table = StackTable(self.registry)
        self.frames = SparkFrames(self.registry)
        self.hardware = HardwareModel(self.config.machine)
        self.shuffle = ShuffleManager()
        self.block_store = BlockStore()
        self.scheduler = DAGScheduler(self)
        self._stages: list[StageInfo] = []
        self._rdd_counter = 0
        self._shuffle_counter = 0
        self._silent_counter = 0
        # Streaming mode: when set, the scheduler flushes executor
        # segments through this callback instead of accumulating them.
        self._stream_emit: Callable[[TraceEvent], None] | None = None
        # Per-thread SegmentBatch sequence numbers (streaming mode).
        self._stream_seq: dict[int, int] = {}

        seeds = np.random.SeedSequence(self.config.seed).spawn(
            self.config.n_executors
        )
        machine = self.config.machine
        self.executors: list[Executor] = [
            Executor(
                self,
                thread_id=i,
                core_id=(i % machine.cores),
                rng=np.random.default_rng(seeds[i]),
            )
            for i in range(self.config.n_executors)
        ]

    # -- id allocation (used by RDD constructors) ---------------------------

    def _next_rdd_id(self) -> int:
        self._rdd_counter += 1
        return self._rdd_counter

    def _next_shuffle_id(self) -> int:
        self._shuffle_counter += 1
        return self._shuffle_counter

    def record_stage(self, info: StageInfo) -> None:
        """Log stage metadata for the job trace."""
        self._stages.append(info)
        if self._stream_emit is not None:
            self._stream_emit(StageEvent(info))

    def make_silent_executor(self) -> Executor:
        """An executor that computes without tracing (sampling passes)."""
        self._silent_counter += 1
        ex = Executor(
            self,
            thread_id=-self._silent_counter,
            core_id=0,
            rng=np.random.default_rng(self.config.seed + 7_777 + self._silent_counter),
        )
        ex.silent = True
        return ex

    # -- RDD creation ---------------------------------------------------------

    def text_file(self, path: str) -> HadoopRDD:
        """RDD over a simulated-HDFS file, one partition per block."""
        return HadoopRDD(self, path)

    def parallelize(self, data: list[Any], n_partitions: int | None = None) -> RDD:
        """RDD over a driver-side collection."""
        n = (
            self.config.default_parallelism
            if n_partitions is None
            else n_partitions
        )
        return ParallelCollectionRDD(self, list(data), n)

    # -- trace export -----------------------------------------------------------

    def _trace_meta(self) -> dict[str, Any]:
        """Job-level metadata shared by the batch and streaming exports."""
        meta = {
            "n_executors": self.config.n_executors,
            "hdfs_bytes_read": self.fs.bytes_read,
            "hdfs_bytes_written": self.fs.bytes_written,
            "shuffle_bytes": self.shuffle.bytes_written,
        }
        if self.faults is not None:
            FaultReport.merged_meta(meta, self.faults.report)
        return meta

    def job_trace(self, workload: str, input_name: str = "default") -> JobTrace:
        """Package everything the executors recorded into a JobTrace."""
        return JobTrace(
            framework="spark",
            workload=workload,
            input_name=input_name,
            registry=self.registry,
            stack_table=self.stack_table,
            machine=self.config.machine,
            traces=[ex.builder.trace for ex in self.executors],
            stages=list(self._stages),
            meta=self._trace_meta(),
        )

    def flush_trace_events(self) -> None:
        """Ship segments accumulated since the last flush (streaming).

        No-op outside streaming mode.  The scheduler calls this after
        every task, so executor builders never hold more than one task's
        segments — the substrate-side half of the O(active-unit) memory
        bound.
        """
        emit = self._stream_emit
        if emit is None:
            return
        for ex in self.executors:
            trace = ex.builder.trace
            if trace.segments:
                seq = self._stream_seq.get(trace.thread_id, 0)
                self._stream_seq[trace.thread_id] = seq + 1
                # Pack-and-clear in one step: the batch goes out as a
                # columnar array, no per-segment objects cross the wire.
                emit(
                    sequenced_batch(
                        trace.thread_id, trace.drain_structured(), seq
                    )
                )

    def stream_trace(
        self,
        run: Callable[[], None],
        workload: str,
        input_name: str = "default",
        *,
        max_queue: int = 256,
    ) -> TraceStream:
        """Run ``run()`` while streaming its trace as events.

        The workload executes on a worker thread as the returned stream
        is consumed; segments are dropped after emission, so a
        subsequent :meth:`job_trace` sees empty traces.  Thread and
        stage event order matches the batch export, so
        ``JobTrace.from_stream`` reproduces :meth:`job_trace` exactly.
        """
        if self._stream_emit is not None:
            raise RuntimeError("a trace stream is already active on this context")

        def produce(emit: Callable[[TraceEvent], None]) -> None:
            self._stream_emit = emit
            self._stream_seq = {}
            try:
                for ex in self.executors:
                    t = ex.builder.trace
                    emit(ThreadStart(t.thread_id, t.core_id, t.start_cycle))
                run()
                self.flush_trace_events()
                emit(JobEnd(self._trace_meta()))
            finally:
                self._stream_emit = None

        return TraceStream(
            framework="spark",
            workload=workload,
            input_name=input_name,
            registry=self.registry,
            stack_table=self.stack_table,
            machine=self.config.machine,
            events=pump_events(produce, max_queue=max_queue),
        )
