"""Block-structured simulated HDFS.

Both framework simulators read their inputs from and write their outputs
to this filesystem.  Files are split into fixed-size blocks (sized in
records, with byte sizes estimated per record) so that

* input splits / partitions fall out of the block structure the same way
  they do on real HDFS, and
* read/write volumes are available to the executors, which price the
  corresponding IO trace segments.

The store is in-memory and deterministic; replication is tracked as
metadata only (a single simulated node holds every replica).
"""

from __future__ import annotations

import fnmatch
import sys
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Sequence

import numpy as np

__all__ = ["estimate_record_bytes", "HDFSFile", "SimulatedHDFS"]

DEFAULT_BLOCK_RECORDS = 8192


def estimate_record_bytes(record: Any) -> int:
    """Rough on-disk size of one record, in bytes.

    Strings cost their length plus newline; tuples/lists cost the sum of
    their fields plus separators; numbers cost 8; NumPy arrays cost their
    buffer.  The goal is a stable, monotone estimate for IO pricing, not
    exact serialisation.
    """
    if isinstance(record, str):
        return len(record) + 1
    if isinstance(record, bytes):
        return len(record) + 1
    if isinstance(record, (int, float, np.integer, np.floating)):
        return 8
    if isinstance(record, np.ndarray):
        return int(record.nbytes)
    if isinstance(record, (tuple, list)):
        return sum(estimate_record_bytes(f) for f in record) + len(record)
    if isinstance(record, dict):
        return sum(
            estimate_record_bytes(k) + estimate_record_bytes(v)
            for k, v in record.items()
        )
    return max(8, sys.getsizeof(record) // 4)


@dataclass
class HDFSFile:
    """One file: an ordered list of record blocks plus size metadata."""

    path: str
    blocks: list[list[Any]] = field(default_factory=list)
    block_bytes: list[int] = field(default_factory=list)
    replication: int = 3

    @property
    def n_blocks(self) -> int:
        """Number of blocks (== number of input splits)."""
        return len(self.blocks)

    @property
    def n_records(self) -> int:
        """Total records across blocks."""
        return sum(len(b) for b in self.blocks)

    @property
    def total_bytes(self) -> int:
        """Estimated file size in bytes (one replica)."""
        return sum(self.block_bytes)

    def iter_records(self) -> Iterator[Any]:
        """All records of the file in order."""
        for block in self.blocks:
            yield from block


class SimulatedHDFS:
    """The simulated distributed filesystem.

    A write chops the record stream into blocks of ``block_records``
    records; a read hands back ``(records, bytes)`` per block so the
    caller can price IO.  Paths are flat strings; ``ls`` supports glob
    patterns.
    """

    def __init__(self, block_records: int = DEFAULT_BLOCK_RECORDS) -> None:
        if block_records <= 0:
            raise ValueError("block_records must be positive")
        self.block_records = block_records
        self._files: dict[str, HDFSFile] = {}
        self.bytes_read: int = 0
        self.bytes_written: int = 0

    # -- namespace ---------------------------------------------------------

    def exists(self, path: str) -> bool:
        """Whether ``path`` names a file."""
        return path in self._files

    def ls(self, pattern: str = "*") -> list[str]:
        """Paths matching a glob ``pattern``, sorted."""
        return sorted(p for p in self._files if fnmatch.fnmatch(p, pattern))

    def delete(self, path: str) -> None:
        """Remove a file (missing paths are ignored, like ``-f``)."""
        self._files.pop(path, None)

    def stat(self, path: str) -> HDFSFile:
        """File metadata; raises ``FileNotFoundError`` if absent."""
        try:
            return self._files[path]
        except KeyError:
            raise FileNotFoundError(path) from None

    # -- data --------------------------------------------------------------

    def write(
        self,
        path: str,
        records: Iterable[Any],
        *,
        block_records: int | None = None,
        replication: int = 3,
    ) -> HDFSFile:
        """Create/overwrite ``path`` with ``records``.

        Returns the resulting :class:`HDFSFile`.  Record byte sizes are
        estimated as the stream is chopped into blocks.
        """
        size = block_records or self.block_records
        f = HDFSFile(path=path, replication=replication)
        block: list[Any] = []
        block_sz = 0
        for rec in records:
            block.append(rec)
            block_sz += estimate_record_bytes(rec)
            if len(block) >= size:
                f.blocks.append(block)
                f.block_bytes.append(block_sz)
                block, block_sz = [], 0
        if block:
            f.blocks.append(block)
            f.block_bytes.append(block_sz)
        self._files[path] = f
        self.bytes_written += f.total_bytes
        return f

    def write_blocks(
        self, path: str, blocks: Sequence[list[Any]], replication: int = 3
    ) -> HDFSFile:
        """Create ``path`` from pre-chopped blocks (keeps split layout)."""
        f = HDFSFile(path=path, replication=replication)
        for block in blocks:
            f.blocks.append(list(block))
            f.block_bytes.append(
                sum(estimate_record_bytes(r) for r in block)
            )
        self._files[path] = f
        self.bytes_written += f.total_bytes
        return f

    def read_block(self, path: str, index: int) -> tuple[list[Any], int]:
        """Read one block: ``(records, estimated_bytes)``."""
        f = self.stat(path)
        if not 0 <= index < f.n_blocks:
            raise IndexError(f"{path} has {f.n_blocks} blocks, not {index}")
        self.bytes_read += f.block_bytes[index]
        return f.blocks[index], f.block_bytes[index]

    def read_all(self, path: str) -> list[Any]:
        """All records of a file (accounting the full read volume)."""
        f = self.stat(path)
        self.bytes_read += f.total_bytes
        return list(f.iter_records())

    def append_block(self, path: str, records: list[Any]) -> int:
        """Append one block to an existing (or new) file.

        Returns the estimated byte size of the appended block.
        """
        f = self._files.get(path)
        if f is None:
            f = HDFSFile(path=path)
            self._files[path] = f
        nbytes = sum(estimate_record_bytes(r) for r in records)
        f.blocks.append(list(records))
        f.block_bytes.append(nbytes)
        self.bytes_written += nbytes
        return nbytes
