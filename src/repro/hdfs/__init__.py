"""Simulated HDFS: a block-structured in-memory distributed filesystem."""

from repro.hdfs.filesystem import HDFSFile, SimulatedHDFS, estimate_record_bytes

__all__ = ["HDFSFile", "SimulatedHDFS", "estimate_record_bytes"]
