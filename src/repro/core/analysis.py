"""Phase analysis: homogeneity (Figure 6) and phase typing (Figure 10).

* :func:`cov_report` computes the population / weighted / maximum
  coefficient of variation of per-unit CPI — the paper's measure of how
  well phase formation separates performance levels.
* :func:`phase_types` categorises phases into the four operation types
  (map / reduce / sort / IO) by the dominant *typed* method across the
  units of the phase, using a pattern table over method names — the
  same by-dominant-operation judgement the paper applies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.units import JobProfile

__all__ = [
    "CoVReport",
    "cov_report",
    "method_type_of",
    "phase_type_of",
    "phase_types",
    "phase_type_distribution",
]


@dataclass(frozen=True, slots=True)
class CoVReport:
    """Figure 6 row: CPI CoV for one benchmark."""

    population: float
    weighted: float
    maximum: float


def _cov(values: np.ndarray) -> float:
    if len(values) < 2:
        return 0.0
    mean = values.mean()
    return float(values.std(ddof=1) / mean) if mean > 0 else 0.0


def cov_report(cpi: np.ndarray, assignments: np.ndarray) -> CoVReport:
    """Population, phase-weighted, and maximum CoV of CPI.

    The weighted CoV weights each phase's CoV by its unit count; an
    effective phase formation drives it well below the population CoV.
    """
    phases = np.unique(assignments)
    covs = []
    weights = []
    for h in phases:
        members = cpi[assignments == h]
        covs.append(_cov(members))
        weights.append(len(members))
    weights_arr = np.array(weights, dtype=np.float64)
    covs_arr = np.array(covs, dtype=np.float64)
    return CoVReport(
        population=_cov(cpi),
        weighted=float((covs_arr * weights_arr).sum() / weights_arr.sum()),
        maximum=float(covs_arr.max()) if len(covs_arr) else 0.0,
    )


# Ordered pattern table: first match (leaf-most frame wins) decides the
# type of a call stack.  Specific class names come first; the generic
# "reduce"/"map" substrings are last because package names like
# ``org.apache.hadoop.mapreduce`` would otherwise shadow them.
METHOD_TYPE_PATTERNS: tuple[tuple[str, str], ...] = (
    ("QuickSort", "sort"),
    ("TimSort", "sort"),
    ("ExternalSorter", "sort"),
    ("Merger", "sort"),
    ("sortAndSpill", "sort"),
    ("DFSInputStream", "io"),
    ("DFSOutputStream", "io"),
    ("IFile$Writer", "io"),
    ("LineRecordWriter", "io"),
    ("SnappyCodec", "io"),
    ("DiskBlockObjectWriter", "io"),
    ("ObjectOutputStream", "io"),
    ("ObjectInputStream", "io"),
    ("Fetcher", "io"),
    ("ShuffleBlockFetcherIterator", "io"),
    ("saveAsHadoopDataset", "io"),
    ("combineValuesByKey", "reduce"),
    ("combineCombinersByKey", "reduce"),
    ("aggregateUsingIndex", "reduce"),
    ("AppendOnlyMap", "reduce"),
    ("innerJoin", "reduce"),
    ("Reducer", "reduce"),
    ("CombinerRunner", "reduce"),
    ("aggregateMessages", "map"),
    ("Mapper", "map"),
    ("flatMap", "map"),
    ("filter", "map"),
    ("mapPartitions", "map"),
    ("mapValues", "map"),
    ("GraphLoader", "map"),
    ("EdgePartitionBuilder", "map"),
    ("reduce", "reduce"),
    ("map", "map"),
)


def method_type_of(fqn: str) -> str | None:
    """Operation type of one method name, or None if untyped."""
    for pattern, mtype in METHOD_TYPE_PATTERNS:
        if pattern in fqn:
            return mtype
    return None


def _stack_type(job: JobProfile, stack_id: int) -> str | None:
    """Type of a call stack: the leaf-most typed frame decides."""
    frames = job.stack_table.frames_of(stack_id)
    for mid in reversed(frames):
        mtype = method_type_of(job.registry.fqn(mid))
        if mtype is not None:
            return mtype
    return None


def phase_type_of(
    job: JobProfile, assignments: np.ndarray, phase_id: int
) -> str:
    """Dominant operation type of one phase (Figure 10 judgement).

    Counts snapshots by stack type over the phase's units; the most
    frequent type wins.  Phases with no typed snapshots fall back to
    ``"map"`` (the framework-plumbing default).
    """
    counts: dict[str, float] = {}
    type_cache: dict[int, str | None] = {}
    for unit in job.profile.units:
        if assignments[unit.index] != phase_id:
            continue
        for sid, cnt in zip(unit.stack_ids, unit.stack_counts):
            stype = type_cache.get(int(sid), "_missing")
            if stype == "_missing":
                stype = _stack_type(job, int(sid))
                type_cache[int(sid)] = stype
            if stype is not None:
                counts[stype] = counts.get(stype, 0.0) + float(cnt)
    if not counts:
        return "map"
    return max(counts, key=counts.get)


def phase_types(job: JobProfile, assignments: np.ndarray) -> dict[int, str]:
    """Dominant type of every phase present in ``assignments``."""
    return {
        int(h): phase_type_of(job, assignments, int(h))
        for h in np.unique(assignments)
    }


def phase_type_distribution(
    job: JobProfile, assignments: np.ndarray
) -> dict[str, float]:
    """Figure 10 bar: unit-weight share of each phase type."""
    types = phase_types(job, assignments)
    dist: dict[str, float] = {}
    n = len(assignments)
    for h, t in types.items():
        weight = float((assignments == h).sum()) / n
        dist[t] = dist.get(t, 0.0) + weight
    return dist
