"""Systematic (SMARTS-style) sampling within simulation points.

The paper's stated future work (Section III-C): "users can combine
other sampling approaches, e.g., systematic sampling, to reduce the
simulation time of each simulation point."  This module implements that
combination.

A SimProf simulation point is a whole 100 M-instruction unit; detailed
simulation of one unit is still expensive.  SMARTS (Wunderlich et al.,
ISCA'03) instead simulates short *detailed chunks* at a fixed period
and fast-forwards (with functional warming) in between.  Here:

* :func:`unit_cpi_systematic` estimates a unit's CPI from periodic
  chunks of the underlying trace, including a configurable *cold-start
  bias* — an un-warmed chunk over-reports CPI because the caches have
  not recovered from the fast-forward, decaying exponentially with the
  warm-up length (the SMARTS paper's central accuracy concern);
* :class:`SystematicSimProf` runs the full combination: stratified
  selection of units, then systematic sub-sampling inside each selected
  unit, reporting the end-to-end CPI error and the detailed-instruction
  budget relative to simulating the full units.

This needs sub-unit counter access, so it consumes the
:class:`~repro.jvm.perf.PerfCounterReader` of the profiled thread
directly (the job trace, not just the profile).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.phases import PhaseModel
from repro.core.sampling import StratifiedEstimate
from repro.core.units import JobProfile
from repro.jvm.perf import PerfCounterReader

__all__ = [
    "SystematicConfig",
    "unit_cpi_systematic",
    "SystematicResult",
    "SystematicSimProf",
]


@dataclass(frozen=True, slots=True)
class SystematicConfig:
    """SMARTS-style sub-sampling knobs.

    ``detailed_size``/``period`` follow SMARTS conventions (10 k-instr
    chunks, sparse periods).  ``warmup_size`` is the functional-warming
    window simulated before each chunk (its cost counts toward the
    budget, its measurements are discarded).  ``cold_start_penalty`` is
    the relative CPI inflation of a completely cold chunk;
    ``warmup_scale`` is the e-folding warm-up length — together they
    model the bias functional warming exists to remove.
    """

    detailed_size: int = 10_000
    period: int = 1_000_000
    # SMARTS' accuracy hinges on functional warming; 50 k instructions
    # of warming per chunk leaves a ~1 % residual cold-start bias under
    # this model (2 k would leave ~11 %, the paper's "no warming" trap).
    warmup_size: int = 50_000
    cold_start_penalty: float = 0.12
    warmup_scale: float = 20_000.0

    def __post_init__(self) -> None:
        if self.detailed_size <= 0:
            raise ValueError("detailed_size must be positive")
        if self.period < self.detailed_size:
            raise ValueError("period must be at least detailed_size")
        if self.warmup_size < 0:
            raise ValueError("warmup_size must be non-negative")
        if self.cold_start_penalty < 0:
            raise ValueError("cold_start_penalty must be non-negative")
        if self.warmup_scale <= 0:
            raise ValueError("warmup_scale must be positive")

    @property
    def cold_bias(self) -> float:
        """Residual relative CPI inflation after the warm-up window."""
        return self.cold_start_penalty * math.exp(
            -self.warmup_size / self.warmup_scale
        )

    def detailed_instructions(self, unit_size: int) -> int:
        """Detailed+warming instructions simulated per unit."""
        n_chunks = max(1, unit_size // self.period)
        return n_chunks * (self.detailed_size + self.warmup_size)

    def speedup(self, unit_size: int) -> float:
        """Detailed-simulation speedup vs simulating the full unit."""
        return unit_size / self.detailed_instructions(unit_size)


def unit_cpi_systematic(
    reader: PerfCounterReader,
    unit_start: int,
    unit_size: int,
    cfg: SystematicConfig,
    rng: np.random.Generator | None = None,
) -> float:
    """Estimate one unit's CPI from periodic detailed chunks.

    Chunks start at a random offset within the first period (standard
    systematic-sampling practice to avoid phase-locking with program
    periodicity) and are measured exactly on the trace, then inflated
    by the configured cold-start bias.
    """
    rng = rng or np.random.default_rng(0)
    first = int(rng.integers(0, max(1, cfg.period - cfg.detailed_size)))
    starts = np.arange(unit_start + first, unit_start + unit_size, cfg.period)
    starts = starts[starts + cfg.detailed_size <= unit_start + unit_size]
    if len(starts) == 0:
        starts = np.array([unit_start])
    cycles = 0.0
    instructions = 0.0
    for s in starts:
        win = reader.read(float(s), float(min(s + cfg.detailed_size,
                                              unit_start + unit_size)))
        cycles += win.cycles
        instructions += win.instructions
    measured = cycles / instructions if instructions else 0.0
    return measured * (1.0 + cfg.cold_bias)


@dataclass
class SystematicResult:
    """Outcome of the SimProf × systematic combination."""

    estimate: float
    oracle: float
    full_unit_estimate: float
    n_points: int
    unit_size: int
    config: SystematicConfig

    @property
    def error(self) -> float:
        """End-to-end relative CPI error (selection + sub-sampling)."""
        return abs(self.estimate - self.oracle) / self.oracle

    @property
    def selection_error(self) -> float:
        """Error with full-unit simulation (SimProf alone)."""
        return abs(self.full_unit_estimate - self.oracle) / self.oracle

    @property
    def added_error(self) -> float:
        """Error added by sub-sampling the selected units."""
        return abs(self.estimate - self.full_unit_estimate) / self.oracle

    @property
    def detailed_instructions(self) -> int:
        """Total detailed+warming instructions across all points."""
        return self.n_points * self.config.detailed_instructions(self.unit_size)

    @property
    def speedup(self) -> float:
        """Detailed-simulation speedup vs full-unit simulation."""
        return self.config.speedup(self.unit_size)


class SystematicSimProf:
    """SimProf point selection + SMARTS sub-sampling per point."""

    def __init__(self, cfg: SystematicConfig | None = None) -> None:
        self.cfg = cfg or SystematicConfig()

    def evaluate(
        self,
        job: JobProfile,
        model: PhaseModel,
        reader: PerfCounterReader,
        points: StratifiedEstimate,
        rng: np.random.Generator | None = None,
    ) -> SystematicResult:
        """Estimate the job CPI simulating only chunks of each point.

        ``points`` comes from the stratified sampler; the stratified
        estimator is re-computed with each selected unit's CPI replaced
        by its systematic estimate.
        """
        rng = rng or np.random.default_rng(0)
        unit_size = job.profile.unit_size
        cpi = job.profile.cpi()
        assignments = model.assignments
        N_h = points.stratum_sizes.astype(np.float64)
        N = N_h.sum()

        sys_means = np.zeros(len(N_h))
        full_means = np.zeros(len(N_h))
        counts = np.zeros(len(N_h))
        for unit_id in points.selected:
            h = int(assignments[unit_id])
            start = int(unit_id) * unit_size
            sys_means[h] += unit_cpi_systematic(
                reader, start, unit_size, self.cfg, rng
            )
            full_means[h] += cpi[unit_id]
            counts[h] += 1
        nonzero = counts > 0
        sys_means[nonzero] /= counts[nonzero]
        full_means[nonzero] /= counts[nonzero]

        weights = N_h / N
        return SystematicResult(
            estimate=float(weights @ sys_means),
            oracle=job.oracle_cpi(),
            full_unit_estimate=float(weights @ full_means),
            n_points=int(points.sample_size),
            unit_size=unit_size,
            config=self.cfg,
        )
