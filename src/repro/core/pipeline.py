"""The SimProf facade: profile → phases → simulation points.

The one-stop entry point a user of the library needs (Figure 2):

>>> from repro.core import SimProf
>>> from repro.workloads import run_workload
>>> trace = run_workload("wc", "spark")
>>> simprof = SimProf()
>>> result = simprof.analyze(trace, n_points=20)
>>> result.points.selected        # simulation-point unit ids
>>> result.points.confidence_interval(0.997)
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

import numpy as np

from repro.core.analysis import CoVReport, cov_report, phase_types
from repro.core.features import UnitFeaturizer
from repro.core.phases import PhaseModel, PhaseStats
from repro.core.profiler import (
    ProfilerConfig,
    ProfilerSession,
    SimProfProfiler,
    StreamingProfiler,
)
from repro.core.sampling import (
    StratifiedEstimate,
    required_sample_size,
    stratified_sample,
)
from repro.core.sensitivity import InputSensitivityResult, input_sensitivity_test
from repro.core.units import JobProfile, SamplingUnit
from repro.jvm.job import JobTrace
from repro.jvm.stream import TraceStream
from repro.runtime.instrument import ThroughputMeter, stage_timer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.store import ArtifactStore

__all__ = ["ClassifySession", "SimProfConfig", "SimProfResult", "SimProf"]


@dataclass(frozen=True, slots=True)
class SimProfConfig:
    """All SimProf knobs with the paper's defaults."""

    unit_size: int = 100_000_000
    snapshot_period: int = 2_000_000
    snapshot_jitter: float = 0.5
    top_k_methods: int = 100
    max_phases: int = 20
    silhouette_threshold: float = 0.9
    seed: int = 0

    def profiler_config(self, thread_id: int | None = None) -> ProfilerConfig:
        """The profiling subset of the configuration."""
        return ProfilerConfig(
            unit_size=self.unit_size,
            snapshot_period=self.snapshot_period,
            thread_id=thread_id,
            snapshot_jitter=self.snapshot_jitter,
            seed=self.seed,
        )


@dataclass
class SimProfResult:
    """Everything one SimProf run produces for a job."""

    job: JobProfile
    model: PhaseModel
    points: StratifiedEstimate
    phase_stats: list[PhaseStats] = field(default_factory=list)

    @property
    def simulation_points(self) -> np.ndarray:
        """Selected sampling-unit ids (the final simulation points)."""
        return self.points.selected

    @property
    def n_phases(self) -> int:
        """Number of phases formed."""
        return self.model.k

    def oracle_cpi(self) -> float:
        """Ground-truth mean CPI over all units."""
        return self.job.oracle_cpi()

    def sampling_error(self) -> float:
        """Relative error of the stratified estimate vs the oracle."""
        oracle = self.oracle_cpi()
        return abs(self.points.estimate - oracle) / oracle

    def cov_report(self) -> CoVReport:
        """Figure 6 numbers for this job."""
        return cov_report(self.job.profile.cpi(), self.model.assignments)

    def phase_type_map(self) -> dict[int, str]:
        """Figure 10 phase-type judgement for this job."""
        return phase_types(self.job, self.model.assignments)


class SimProf:
    """The sampling framework (Figure 2), end to end."""

    def __init__(self, config: SimProfConfig | None = None) -> None:
        self.config = config or SimProfConfig()

    # -- pipeline stages ------------------------------------------------------

    def profile(self, trace: JobTrace, thread_id: int | None = None) -> JobProfile:
        """Stage 1: thread profiling."""
        profiler = SimProfProfiler(self.config.profiler_config(thread_id))
        with stage_timer("profiling") as rec:
            job = profiler.profile(trace)
            rec.add(units=job.n_units)
        return job

    def profile_stream(
        self,
        stream: TraceStream,
        thread_id: int | None = None,
        *,
        checkpoint=None,
    ) -> JobProfile:
        """Stage 1, streaming: profile a live trace stream incrementally.

        Consuming the stream drives the underlying run; sampling units
        are cut as segment events arrive, so the full trace is never
        materialised.  Bit-identical to :meth:`profile` on the same run
        and seed.  Per-unit emission latency and unit throughput land
        in the ``stream-profiling`` instrumentation stage.

        ``checkpoint`` (a
        :class:`~repro.runtime.checkpoint.CheckpointPolicy`) makes the
        run suspendable: session snapshots are persisted periodically
        and a killed run resumes bit-identically from its latest
        checkpoint (see :mod:`repro.runtime.checkpoint`).
        """
        profiler = StreamingProfiler(self.config.profiler_config(thread_id))
        with stage_timer("stream-profiling") as rec:
            job = profiler.consume(
                stream, meter=ThroughputMeter(rec), checkpoint=checkpoint
            )
        return job

    def form_phases(
        self,
        job: JobProfile,
        *,
        jobs: int | None = None,
        store: "ArtifactStore | None" = None,
    ) -> PhaseModel:
        """Stage 2: phase formation.

        ``jobs`` parallelises the silhouette k-sweep (``None`` defers to
        ``SIMPROF_JOBS``); ``store`` caches the assembled feature matrix
        in the artifact store, keyed on the profile's content digest.
        When ``SIMPROF_FEATURE_CACHE=1`` is set and no store is given,
        the default store is used.  Both knobs are pure accelerators:
        the fitted model is bit-identical with or without them.
        """
        if store is None and os.environ.get("SIMPROF_FEATURE_CACHE") == "1":
            from repro.runtime.store import default_store

            store = default_store()
        return PhaseModel.fit(
            job,
            top_k=self.config.top_k_methods,
            max_phases=self.config.max_phases,
            score_threshold=self.config.silhouette_threshold,
            seed=self.config.seed,
            jobs=jobs,
            store=store,
        )

    def select_points(
        self,
        job: JobProfile,
        model: PhaseModel,
        n_points: int = 20,
        *,
        rng: np.random.Generator | None = None,
    ) -> StratifiedEstimate:
        """Stage 3: phase sampling (stratified, optimal allocation)."""
        rng = rng or np.random.default_rng(self.config.seed)
        cpi = job.profile.cpi()
        n = max(min(n_points, len(cpi)), model.k)
        with stage_timer("sampling") as rec:
            est = stratified_sample(
                model.assignments, cpi, n, rng=rng, k=model.k
            )
            rec.add(points=len(est.selected))
        return est

    def input_sensitivity(
        self,
        model: PhaseModel,
        train_job: JobProfile,
        ref_jobs: dict[str, JobProfile],
    ) -> InputSensitivityResult:
        """Stage 4: the input sensitivity test over reference inputs."""
        return input_sensitivity_test(model, train_job, ref_jobs)

    # -- conveniences -----------------------------------------------------------

    def analyze(
        self, trace: JobTrace, n_points: int = 20, thread_id: int | None = None
    ) -> SimProfResult:
        """Run stages 1–3 on a job trace."""
        job = self.profile(trace, thread_id)
        model = self.form_phases(job)
        points = self.select_points(job, model, n_points)
        return SimProfResult(
            job=job,
            model=model,
            points=points,
            phase_stats=model.phase_stats(job.profile.cpi()),
        )

    def analyze_stream(
        self,
        stream: TraceStream,
        n_points: int = 20,
        thread_id: int | None = None,
        *,
        checkpoint=None,
    ) -> SimProfResult:
        """Run stages 1–3 over a live trace stream.

        Profiling is incremental (:meth:`profile_stream`); phase
        formation and point selection then run on the emitted units.
        With the same configuration and seed the result — unit vectors,
        phase model, selected simulation points — is bit-identical to
        :meth:`analyze` on the materialised trace of the same run.
        ``checkpoint`` makes the profiling stage suspendable, exactly
        as in :meth:`profile_stream`.
        """
        job = self.profile_stream(stream, thread_id, checkpoint=checkpoint)
        model = self.form_phases(job)
        points = self.select_points(job, model, n_points)
        return SimProfResult(
            job=job,
            model=model,
            points=points,
            phase_stats=model.phase_stats(job.profile.cpi()),
        )

    def classify_stream(
        self,
        model: PhaseModel,
        stream: TraceStream,
        thread_id: int | None = None,
    ) -> Iterator[tuple[int, SamplingUnit, int]]:
        """Live unit classification (Pac-Sim-style online mode).

        Yields ``(thread_id, unit, phase)`` the moment each sampling
        unit completes, classifying against an existing ``model`` while
        the job is still running.  Restrict to one thread with
        ``thread_id`` (recommended: the trained profile's thread);
        otherwise units of every thread are classified.
        """
        profiler = StreamingProfiler(self.config.profiler_config(thread_id))
        featurizer = UnitFeaturizer(
            model.space, stream.registry, stream.stack_table
        )
        # One reusable row buffer: live mode classifies unit by unit,
        # so a fresh allocation per unit would dominate the loop.
        row = np.zeros((1, model.space.n_features))
        for tid, unit in profiler.units(stream):
            row.fill(0.0)
            featurizer.row_into(unit, row[0])
            yield tid, unit, int(model.classify(row)[0])

    def classify_session(
        self,
        model: PhaseModel,
        stream: TraceStream,
        thread_id: int | None = None,
    ) -> "ClassifySession":
        """Suspendable twin of :meth:`classify_stream`.

        Returns a push-mode :class:`ClassifySession` that can be driven
        by :func:`repro.runtime.checkpoint.drive_session` — checkpoint,
        kill, and resume mid-classification bit-identically.
        """
        return ClassifySession(
            self.config.profiler_config(thread_id), model, stream
        )

    def sample_size_for(
        self,
        job: JobProfile,
        model: PhaseModel,
        *,
        relative_error: float,
        confidence: float = 0.997,
    ) -> int:
        """Figure 8: points needed for a target error bound."""
        stats = model.phase_stats(job.profile.cpi())
        sizes = np.array([s.n_units for s in stats], dtype=np.float64)
        stds = np.array([s.cpi_std for s in stats])
        return required_sample_size(
            sizes,
            stds,
            job.oracle_cpi(),
            relative_error=relative_error,
            confidence=confidence,
        )


class ClassifySession:
    """Push-mode online classification: profile, featurize, classify.

    Wraps a :class:`~repro.core.profiler.ProfilerSession` (collect
    mode) with the live classification stage: every completed sampling
    unit is projected into the model's feature space and assigned its
    nearest phase.  Feed events with :meth:`feed`, seal with
    :meth:`finish`, harvest ``(JobProfile, labels)`` with
    :meth:`result`.

    The session is :class:`~repro.runtime.snapshot.Snapshotable`
    end to end — profiler state, featurizer pairing, phase model, and
    the labels emitted so far — so an online classification job can be
    checkpointed, killed, and resumed bit-identically (same units,
    same phases) by :func:`repro.runtime.checkpoint.drive_session`.
    """

    def __init__(
        self,
        config: ProfilerConfig,
        model: PhaseModel,
        stream: TraceStream,
    ) -> None:
        self.model = model
        self.profiler = ProfilerSession(config, stream, collect=True)
        self._featurizer = UnitFeaturizer(
            model.space, stream.registry, stream.stack_table
        )
        # One reusable row buffer, as in classify_stream.
        self._row = np.zeros((1, model.space.n_features))
        #: ``(thread_id, phase)`` per emitted unit, in emission order.
        self.labels: list[tuple[int, int]] = []

    @property
    def batches_fed(self) -> int:
        return self.profiler.batches_fed

    def _classify(self, unit: SamplingUnit) -> int:
        self._row.fill(0.0)
        self._featurizer.row_into(unit, self._row[0])
        return int(self.model.classify(self._row)[0])

    def feed(self, event) -> list[tuple[int, SamplingUnit, int]]:
        """Feed one raw stream event; returns ``(tid, unit, phase)`` triples."""
        out = []
        for tid, unit in self.profiler.feed(event):
            phase = self._classify(unit)
            self.labels.append((tid, phase))
            out.append((tid, unit, phase))
        return out

    def finish(self) -> list[tuple[int, SamplingUnit, int]]:
        """End of stream: flush the profiler, classify trailing units."""
        out = []
        for tid, unit in self.profiler.finish():
            phase = self._classify(unit)
            self.labels.append((tid, phase))
            out.append((tid, unit, phase))
        return out

    def result(self) -> tuple[JobProfile, list[tuple[int, int]]]:
        """The profiled job and the full label sequence."""
        return self.profiler.result(), list(self.labels)

    # -- snapshot protocol -------------------------------------------

    def snapshot(self) -> dict:
        return {
            "kind": "classify-session",
            "profiler": self.profiler.snapshot(),
            "featurizer": self._featurizer.snapshot(),
            "model": self.model.snapshot(),
            "labels": [[tid, phase] for tid, phase in self.labels],
        }

    def restore(self, state: dict) -> None:
        if state.get("kind") != "classify-session":
            raise ValueError(
                f"not a classify-session snapshot: {state.get('kind')!r}"
            )
        self.profiler.restore(state["profiler"])
        # Restoring the model from the checkpoint guarantees "same
        # phases" even if the caller reloaded a drifted model object.
        self.model.restore(state["model"])
        self._featurizer.restore(state["featurizer"])
        self._row = np.zeros((1, self.model.space.n_features))
        self.labels = [(int(tid), int(phase)) for tid, phase in state["labels"]]
