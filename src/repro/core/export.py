"""Export simulation points in SimPoint's file format.

Downstream simulators (gem5, Sniper, ...) already know how to consume
SimPoint output: a ``.simpoints`` file ("<unit-index> <point-id>" per
line) and a ``.weights`` file ("<weight> <point-id>").  Writing
SimProf's selection in the same format lets those flows adopt it
without modification.

SimPoint semantics: each point's weight is the fraction of execution it
represents.  For SimProf's stratified sample, a phase's weight is split
evenly over the points drawn from it (together they represent the
phase), so the weighted mean of per-point CPIs *is* the stratified
estimator.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.phases import PhaseModel
from repro.core.sampling import StratifiedEstimate

__all__ = ["SimPointFiles", "export_simpoints", "load_simpoints"]


@dataclass(frozen=True)
class SimPointFiles:
    """Paths of one exported point set."""

    simpoints: Path
    weights: Path


def export_simpoints(
    points: StratifiedEstimate,
    model: PhaseModel,
    out_dir: str | Path,
    *,
    basename: str = "simprof",
) -> SimPointFiles:
    """Write ``<basename>.simpoints`` and ``<basename>.weights``.

    Returns the written paths.  Point ids are assigned in unit order,
    as SimPoint does.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    sp_path = out / f"{basename}.simpoints"
    w_path = out / f"{basename}.weights"

    assignments = model.assignments
    N = len(assignments)
    phase_weight = {
        h: float((assignments == h).sum()) / N for h in range(model.k)
    }
    points_per_phase = {
        h: int((assignments[points.selected] == h).sum()) for h in range(model.k)
    }

    sp_lines = []
    w_lines = []
    for point_id, unit in enumerate(points.selected):
        h = int(assignments[unit])
        weight = phase_weight[h] / max(1, points_per_phase[h])
        sp_lines.append(f"{int(unit)} {point_id}")
        w_lines.append(f"{weight:.10f} {point_id}")
    sp_path.write_text("\n".join(sp_lines) + "\n")
    w_path.write_text("\n".join(w_lines) + "\n")
    return SimPointFiles(simpoints=sp_path, weights=w_path)


def load_simpoints(files: SimPointFiles) -> tuple[np.ndarray, np.ndarray]:
    """Read a SimPoint file pair back: ``(unit_indices, weights)``.

    Units and weights are aligned by point id, so
    ``weights @ cpi[units]`` reproduces the exported estimator.
    """
    units_by_id: dict[int, int] = {}
    for line in files.simpoints.read_text().splitlines():
        if not line.strip():
            continue
        unit, point_id = line.split()
        units_by_id[int(point_id)] = int(unit)
    weights_by_id: dict[int, float] = {}
    for line in files.weights.read_text().splitlines():
        if not line.strip():
            continue
        weight, point_id = line.split()
        weights_by_id[int(point_id)] = float(weight)
    if set(units_by_id) != set(weights_by_id):
        raise ValueError(".simpoints and .weights disagree on point ids")
    ids = sorted(units_by_id)
    units = np.array([units_by_id[i] for i in ids], dtype=np.int64)
    weights = np.array([weights_by_id[i] for i in ids])
    return units, weights
