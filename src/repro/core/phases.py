"""Phase model: the outcome of phase formation.

Bundles the selected feature space, the cluster centres, and the
per-unit phase assignments, and computes the per-phase statistics the
rest of the pipeline consumes (weights, CPI mean/std/CoV).  The model
can classify units from *other* profiles (nearest centre in the shared
feature space) — the unit-classification step of the input-sensitivity
test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator

import numpy as np

from repro.core.clustering import OnlineKMeans, select_phases
from repro.core.features import FeatureSpace, UnitFeaturizer
from repro.core.units import JobProfile, SamplingUnit
from repro.jvm.methods import MethodRegistry, StackTable
from repro.runtime.instrument import stage_timer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.store import ArtifactStore

__all__ = ["PhaseStats", "PhaseModel"]


@dataclass(frozen=True, slots=True)
class PhaseStats:
    """Summary of one phase over a profile."""

    phase_id: int
    n_units: int
    weight: float
    cpi_mean: float
    cpi_std: float

    @property
    def cpi_cov(self) -> float:
        """Coefficient of variation of CPI within the phase."""
        return self.cpi_std / self.cpi_mean if self.cpi_mean > 0 else 0.0


@dataclass
class PhaseModel:
    """Phases of a training profile.

    ``centers`` live in the selected feature space; ``assignments`` maps
    each training unit to its phase.
    """

    space: FeatureSpace
    centers: np.ndarray
    assignments: np.ndarray
    silhouette_by_k: dict[int, float]
    # Mean feature row over all training units; used to rank a phase's
    # characteristic methods by *lift* so frames common to every stack
    # (thread entry, task runner) do not dominate the readout.
    global_mean: np.ndarray | None = None
    # Optional SimPoint-style random projection applied before
    # clustering; centres then live in the projected space and
    # classification projects likewise.  None = identity (the default).
    projection: np.ndarray | None = None
    # Per-phase mean rows in the *original* feature space (equal to
    # ``centers`` when no projection is used); this is what
    # ``top_methods`` interprets, since projected axes have no names.
    feature_centers: np.ndarray | None = None

    @property
    def k(self) -> int:
        """Number of phases."""
        return len(self.centers)

    @staticmethod
    def fit(
        job: JobProfile,
        *,
        top_k: int = 100,
        max_phases: int = 20,
        score_threshold: float = 0.9,
        seed: int = 0,
        projection_dims: int | None = None,
        jobs: int | None = None,
        store: "ArtifactStore | None" = None,
        features: "tuple[FeatureSpace, np.ndarray] | None" = None,
    ) -> "PhaseModel":
        """Phase formation: vectorise, select features, cluster.

        ``projection_dims`` enables the SimPoint-style random projection
        before clustering (an ablation variant; None = off).  ``jobs``
        parallelises the silhouette k-sweep (``None`` = the
        ``SIMPROF_JOBS`` default); ``store`` enables the feature-matrix
        cache; ``features`` supplies a precomputed
        ``FeatureSpace.fit(job, top_k)`` pair (the provenance graph's
        featurize stage) instead of fitting one here.  None of the
        three affects the fitted model: the result is bit-identical
        whatever the worker count or cache state.
        """
        with stage_timer("feature-selection") as rec:
            if features is None:
                space, X = FeatureSpace.fit(job, top_k=top_k, store=store)
            else:
                space, X = features
            rec.add(features=space.n_features)
        if space.n_features == 0:
            # No method correlates with performance: the whole run is
            # one phase (the grep case).
            return PhaseModel(
                space=space,
                centers=np.zeros((1, 0)),
                assignments=np.zeros(len(job.profile.units), dtype=np.int64),
                silhouette_by_k={1: 0.0},
                global_mean=np.zeros(0),
            )
        projection: np.ndarray | None = None
        X_cluster = X
        if projection_dims is not None and space.n_features > projection_dims:
            rng = np.random.default_rng(seed)
            projection = rng.uniform(
                -1.0, 1.0, size=(space.n_features, projection_dims)
            ) / np.sqrt(projection_dims)
            X_cluster = X @ projection
        with stage_timer("k-means") as rec:
            k, scores, result = select_phases(
                X_cluster,
                k_max=max_phases,
                score_threshold=score_threshold,
                seed=seed,
                jobs=jobs,
            )
            if k == 1 or result is None:
                centers = X_cluster.mean(axis=0, keepdims=True)
                assignments = np.zeros(len(X_cluster), dtype=np.int64)
            else:
                centers = result.centers
                assignments = result.assignments
            rec.add(phases=k)
        feature_centers = np.vstack(
            [
                X[assignments == h].mean(axis=0)
                if (assignments == h).any()
                else np.zeros(space.n_features)
                for h in range(k)
            ]
        )
        return PhaseModel(
            space=space,
            centers=centers,
            assignments=assignments,
            silhouette_by_k=scores,
            global_mean=X.mean(axis=0),
            projection=projection,
            feature_centers=feature_centers,
        )

    @staticmethod
    def fit_stream(
        space: FeatureSpace,
        rows: Iterable[np.ndarray],
        *,
        k: int,
        seed: int = 0,
        init_size: int | None = None,
    ) -> "PhaseModel":
        """Online phase formation over a stream of feature rows.

        The live-mode counterpart of :meth:`fit`: rows arrive one at a
        time and update an :class:`~repro.core.clustering.OnlineKMeans`
        instead of being clustered in batch, so memory stays
        O(k · features) however long the job runs.  ``k`` must be given
        (silhouette-based selection needs all rows, which an online pass
        does not keep); warm-up rows are labelled right after seeding.
        Approximate by construction — assignments reflect the centres
        as each row arrived — so unlike ``analyze_stream`` this mode is
        *not* bit-identical to the batch path.
        """
        if space.n_features == 0:
            n = sum(1 for _ in rows)
            return PhaseModel(
                space=space,
                centers=np.zeros((1, 0)),
                assignments=np.zeros(n, dtype=np.int64),
                silhouette_by_k={1: 0.0},
                global_mean=np.zeros(0),
            )
        okm = OnlineKMeans(k, seed=seed, init_size=init_size)
        labels: list[int] = []
        total = np.zeros(space.n_features)
        n = 0
        for row in rows:
            row = np.asarray(row, dtype=np.float64)
            n += 1
            total += row
            lab = okm.learn_one(row)
            init_labels = okm.take_init_labels()
            if init_labels is not None:
                labels.extend(int(v) for v in init_labels)
            elif lab is not None:
                labels.append(lab)
        if not okm.ready:
            # Short stream: seed from whatever was buffered (raises the
            # usual "no data" error on an empty stream).
            okm.centers
            init_labels = okm.take_init_labels()
            if init_labels is not None:
                labels.extend(int(v) for v in init_labels)
        centers = okm.centers.copy()
        return PhaseModel(
            space=space,
            centers=centers,
            assignments=np.array(labels, dtype=np.int64),
            silhouette_by_k={len(centers): 0.0},
            global_mean=total / n,
            # Online centres are running means in the original feature
            # space (no projection in live mode), so they double as the
            # interpretable per-phase rows.
            feature_centers=centers,
        )

    # -- snapshot protocol --------------------------------------------------

    def snapshot(self) -> dict:
        """Codec-safe capture of the fitted model, space included."""
        return {
            "kind": "phase-model",
            "space": self.space.snapshot(),
            "centers": self.centers,
            "assignments": self.assignments,
            "silhouette_by_k": sorted(
                [int(k), float(v)] for k, v in self.silhouette_by_k.items()
            ),
            "global_mean": self.global_mean,
            "projection": self.projection,
            "feature_centers": self.feature_centers,
        }

    def restore(self, state: dict) -> None:
        """Rebuild the model in place from :meth:`snapshot` output."""
        if state.get("kind") != "phase-model":
            raise ValueError(f"not a phase-model snapshot: {state.get('kind')!r}")
        self.space = FeatureSpace.from_snapshot(state["space"])
        self.centers = np.asarray(state["centers"], dtype=np.float64)
        self.assignments = np.asarray(state["assignments"], dtype=np.int64)
        self.silhouette_by_k = {
            int(k): float(v) for k, v in state["silhouette_by_k"]
        }

        def _opt(value) -> np.ndarray | None:
            return None if value is None else np.asarray(value, dtype=np.float64)

        self.global_mean = _opt(state["global_mean"])
        self.projection = _opt(state["projection"])
        self.feature_centers = _opt(state["feature_centers"])

    @classmethod
    def from_snapshot(cls, state: dict) -> "PhaseModel":
        """Construct a model directly from :meth:`snapshot` output."""
        model = cls(
            space=FeatureSpace.from_snapshot(state["space"]),
            centers=np.zeros((1, 0)),
            assignments=np.zeros(0, dtype=np.int64),
            silhouette_by_k={},
        )
        model.restore(state)
        return model

    # -- classification -----------------------------------------------------

    def classify(self, X: np.ndarray) -> np.ndarray:
        """Nearest-centre phase assignment for feature rows ``X``.

        ``X`` is in the selected-feature space; if the model was fitted
        with a random projection, rows are projected first.
        """
        if self.projection is not None:
            X = X @ self.projection
        d = (
            (X**2).sum(axis=1)[:, None]
            + (self.centers**2).sum(axis=1)[None, :]
            - 2.0 * X @ self.centers.T
        )
        return d.argmin(axis=1)

    def classify_job(self, job: JobProfile) -> np.ndarray:
        """Classify another profile's units into this model's phases."""
        return self.classify(self.space.project_job(job))

    def classify_stream(
        self,
        units: Iterable[SamplingUnit],
        *,
        registry: MethodRegistry,
        stack_table: StackTable,
    ) -> Iterator[int]:
        """Classify units one at a time as they stream in (live mode).

        Yields the phase id of each unit the moment it arrives —
        vectorisation and normalisation match :meth:`classify_job`
        row for row, so the label sequence equals the batch result.
        ``registry``/``stack_table`` interpret the units' stack ids
        (take them from the :class:`~repro.jvm.stream.TraceStream`).
        """
        featurizer = UnitFeaturizer(self.space, registry, stack_table)
        # One reusable row buffer: live mode classifies unit by unit,
        # so a fresh allocation per unit would dominate the loop.
        row = np.zeros((1, self.space.n_features))
        for unit in units:
            row.fill(0.0)
            featurizer.row_into(unit, row[0])
            yield int(self.classify(row)[0])

    # -- statistics -----------------------------------------------------------

    def phase_stats(
        self, cpi: np.ndarray, assignments: np.ndarray | None = None
    ) -> list[PhaseStats]:
        """Per-phase CPI statistics for a profile.

        ``assignments`` defaults to the training assignments; pass the
        output of :meth:`classify_job` for a reference input.  Phases
        with no units get zero stats (they can legitimately be empty on
        a reference input).
        """
        if assignments is None:
            assignments = self.assignments
        if len(cpi) != len(assignments):
            raise ValueError("cpi and assignments disagree on unit count")
        n = len(cpi)
        out: list[PhaseStats] = []
        for h in range(self.k):
            members = cpi[assignments == h]
            if len(members) == 0:
                out.append(PhaseStats(h, 0, 0.0, 0.0, 0.0))
                continue
            out.append(
                PhaseStats(
                    phase_id=h,
                    n_units=len(members),
                    weight=len(members) / n,
                    cpi_mean=float(members.mean()),
                    # ddof=1 matches the paper's s_h (sample std).
                    cpi_std=float(members.std(ddof=1)) if len(members) > 1 else 0.0,
                )
            )
        return out

    def top_methods(self, phase_id: int, n: int = 5) -> list[tuple[str, float]]:
        """Most characteristic methods of a phase.

        This is the paper's Section III-D.2 trick: the heavy dimensions
        of the centre name the methods of the phase.  Methods are ranked
        by lift over the global mean frequency, so frames present in
        every stack (thread entry, task runner) rank at ~1 while the
        phase-specific operations rank high.  Returns
        ``(fqn, lift)`` pairs.
        """
        if not 0 <= phase_id < self.k:
            raise IndexError(f"phase {phase_id} out of range")
        center = (
            self.feature_centers[phase_id]
            if self.feature_centers is not None
            else self.centers[phase_id]
        )
        # Only methods with real presence in the phase qualify —
        # otherwise an ultra-rare frame (a one-off GC safepoint) gets an
        # enormous lift from a near-zero global mean.
        floor = max(0.005, 0.05 * float(center.max(initial=0.0)))
        if self.global_mean is not None:
            eps = 1e-9
            score = np.where(
                center >= floor, (center + eps) / (self.global_mean + eps), 0.0
            )
        else:
            score = np.where(center >= floor, center, 0.0)
        order = np.argsort(-score, kind="stable")[:n]
        return [
            (self.space.method_fqns[j], float(score[j]))
            for j in order
            if score[j] > 0
        ]
