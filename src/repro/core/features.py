"""Feature vectors from call stacks (Section III-B, first half).

Every sampling unit becomes a vector over *methods*: dimension j counts
how often method j appeared in the unit's call-stack snapshots (a
snapshot contributes one count to every frame on its stack).  Rows are
normalised to frequencies so units with different snapshot counts stay
comparable.

Because the raw space easily has hundreds of dimensions dominated by
frames common to every unit (thread entry, task runner), SimProf keeps
only the top-K methods most correlated with performance, selected by a
univariate linear-regression test against per-unit IPC (K = 100 in the
paper).  The surviving dimensions are remembered *by fully-qualified
method name*, so units profiled from a different run (whose registry
assigns different ids) can be projected into the same space — the
mechanism the input-sensitivity test relies on.

Featurization is CSR-style array code, not per-stack Python loops: the
units' ``stack_ids``/``stack_counts`` are stacked into one flat
(row, column, value) triplet stream and scattered into the matrix with
a single ``np.add.at``, which keeps the accumulation order — and hence
the float result — identical to the row-by-row formulation.  The
assembled (space, matrix) pair can be cached in the content-addressed
:class:`~repro.runtime.store.ArtifactStore`, keyed on the profile's
content digest and the featurizer parameters, so repeat experiments on
the same profile skip featurization entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core.units import JobProfile, SamplingUnit
from repro.jvm.methods import MethodRegistry, StackTable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.store import ArtifactStore

__all__ = [
    "FEATURIZER_VERSION",
    "build_feature_matrix",
    "univariate_regression_scores",
    "select_features",
    "FeatureSpace",
    "UnitFeaturizer",
]

#: Bumped when the featurization arithmetic or the cached payload shape
#: changes, so stale ``featmat`` store entries stop being served.
FEATURIZER_VERSION = "v1"


def _batch_featurize(
    units: Sequence[SamplingUnit],
    table: StackTable,
    n_cols: int,
    col_of_mid: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Scatter all units into a ``(n_units, n_cols)`` matrix at once.

    ``col_of_mid`` maps method ids to matrix columns (entries < 0 are
    dropped); None means the identity mapping over the full registry.
    Returns ``(X, frame_totals)`` where ``frame_totals[i]`` is unit i's
    total snapshot frame count (counting frames whose methods fall
    outside the column mapping — the normaliser
    :meth:`FeatureSpace.project_job` uses).

    The (row, column, value) triplets are emitted in (unit, stack,
    frame) order, exactly the order the per-unit loop accumulated in,
    and applied with one unbuffered ``np.add.at`` — so the result is
    bit-identical to the loop formulation.
    """
    n_units = len(units)
    X = np.zeros((n_units, n_cols), dtype=np.float64)
    frame_totals = np.zeros(n_units, dtype=np.float64)
    if n_units == 0:
        return X, frame_totals
    stacks_per_unit = np.array(
        [len(u.stack_ids) for u in units], dtype=np.intp
    )
    if int(stacks_per_unit.sum()) == 0:
        return X, frame_totals
    sids_cat = np.concatenate(
        [np.asarray(u.stack_ids, dtype=np.intp) for u in units]
    )
    counts_cat = np.concatenate(
        [np.asarray(u.stack_counts, dtype=np.float64) for u in units]
    )
    unit_cat = np.repeat(np.arange(n_units, dtype=np.intp), stacks_per_unit)

    # Per-stack CSR: mapped columns of every distinct stack, flattened.
    used = np.unique(sids_cat)
    starts = np.zeros(int(used[-1]) + 1, dtype=np.intp)
    mapped_len = np.zeros(int(used[-1]) + 1, dtype=np.intp)
    full_len = np.zeros(int(used[-1]) + 1, dtype=np.float64)
    chunks: list[np.ndarray] = []
    pos = 0
    for sid in used:
        frames = np.asarray(table.frames_of(int(sid)), dtype=np.intp)
        full_len[sid] = len(frames)
        if col_of_mid is not None:
            cols = col_of_mid[frames]
            cols = cols[cols >= 0]
        else:
            cols = frames
        starts[sid] = pos
        mapped_len[sid] = len(cols)
        pos += len(cols)
        chunks.append(cols)
    cols_flat = np.concatenate(chunks) if chunks else np.zeros(0, dtype=np.intp)

    # Ragged gather: expand each stack occurrence to its column run.
    lengths = mapped_len[sids_cat]
    offsets = np.cumsum(lengths) - lengths
    flat_pos = np.arange(int(lengths.sum()), dtype=np.intp) - np.repeat(
        offsets, lengths
    )
    cols = cols_flat[np.repeat(starts[sids_cat], lengths) + flat_pos]
    rows = np.repeat(unit_cat, lengths)
    vals = np.repeat(counts_cat, lengths)
    np.add.at(X, (rows, cols), vals)
    frame_totals = np.bincount(
        unit_cat, weights=counts_cat * full_len[sids_cat], minlength=n_units
    )
    return X, frame_totals


def build_feature_matrix(job: JobProfile, *, normalize: bool = True) -> np.ndarray:
    """Dense ``(n_units, n_methods)`` method-frequency matrix.

    Row i is the frequency distribution of methods over the snapshots of
    unit i (rows sum to ~1; an all-zero row means the unit had no
    snapshots, which cannot happen with period ≤ unit size).  With
    ``normalize=False`` the rows are raw appearance counts (one count
    per snapshot whose stack contains the method).
    """
    X, _totals = _batch_featurize(
        job.profile.units, job.stack_table, len(job.registry)
    )
    if normalize:
        sums = X.sum(axis=1, keepdims=True)
        np.divide(X, sums, out=X, where=sums > 0)
    return X


def univariate_regression_scores(X: np.ndarray, y: np.ndarray) -> np.ndarray:
    """F-scores of a per-feature univariate linear regression on ``y``.

    Identical to scikit-learn's ``f_regression``: the squared Pearson
    correlation ``r²`` mapped to ``F = r² / (1 − r²) · (n − 2)``.
    Constant features (including the frames shared by every stack)
    score 0 — exactly the elimination the paper describes.
    """
    n = len(y)
    if n != len(X):
        raise ValueError("X and y disagree on the number of units")
    if n < 3:
        return np.zeros(X.shape[1])
    xc = X - X.mean(axis=0)
    yc = y - y.mean()
    x_norm = np.sqrt((xc**2).sum(axis=0))
    y_norm = np.sqrt((yc**2).sum())
    denom = x_norm * y_norm
    with np.errstate(divide="ignore", invalid="ignore"):
        r = np.where(denom > 0, xc.T @ yc / np.where(denom > 0, denom, 1.0), 0.0)
    r2 = np.clip(r**2, 0.0, 1.0 - 1e-12)
    return r2 / (1.0 - r2) * (n - 2)


def select_features(
    X: np.ndarray,
    ipc: np.ndarray,
    top_k: int = 100,
    significance: float = 0.01,
    mean_appearances: np.ndarray | None = None,
    min_appearances: float = 0.5,
    min_r2: float = 0.10,
) -> tuple[np.ndarray, np.ndarray]:
    """Indices (sorted) and scores of the top-K IPC-correlated methods.

    Three filters beyond the top-K ranking:

    * methods must be *statistically* related to performance — the
      regression F-score must clear a Bonferroni-corrected critical
      value;
    * the relation must be *practically* relevant — the method must
      explain at least ``min_r2`` of the IPC variance (the paper's
      selection exists to keep performance-relevant methods, so a
      workload with essentially flat IPC, like grep, retains nothing
      and collapses to one phase downstream);
    * methods must be *resolvable* by the snapshot poller — a method
      seen in well under one snapshot per unit on average yields a
      quantised 0-or-1 feature that is sampling noise, not phase
      structure (``mean_appearances`` carries the raw per-unit counts).
    """
    from scipy import stats

    n, n_features = X.shape
    scores = univariate_regression_scores(X, ipc)
    if n_features == 0 or n < 3:
        return np.empty(0, dtype=np.intp), scores
    f_crit = float(
        stats.f.isf(min(1.0, significance / n_features), 1, max(1, n - 2))
    )
    # Invert F = r²/(1−r²)·(n−2) at the effect-size floor.
    f_floor = min_r2 / (1.0 - min_r2) * (n - 2)
    eligible = scores > max(f_crit, f_floor)
    if mean_appearances is not None:
        eligible &= mean_appearances >= min_appearances
    passing = np.nonzero(eligible)[0]
    order = np.argsort(-scores[passing], kind="stable")
    chosen = passing[order[:top_k]]
    return np.sort(chosen), scores


@dataclass
class FeatureSpace:
    """The selected method space of a training run.

    ``method_ids`` index the *training* registry; ``method_fqns`` name
    the same methods portably.  ``transform`` slices a full training
    matrix; ``project_job`` rebuilds the same columns for any profile
    (matching methods by name).
    """

    method_ids: np.ndarray
    method_fqns: tuple[str, ...]
    scores: np.ndarray

    @staticmethod
    def fit(
        job: JobProfile,
        top_k: int = 100,
        *,
        store: "ArtifactStore | None" = None,
    ) -> tuple["FeatureSpace", np.ndarray]:
        """Select the space from a training profile.

        Returns ``(space, X_selected)`` where ``X_selected`` is the
        training matrix restricted to the selected methods.  With a
        ``store``, the pair is served from (or written to) the
        content-addressed artifact store under a key derived from the
        profile's :meth:`~repro.core.units.JobProfile.content_digest`
        and the featurizer parameters, so repeat experiments over the
        same profile skip featurization and selection entirely.
        """
        if store is None:
            return FeatureSpace._fit_impl(job, top_k)
        params = {
            "job_digest": job.content_digest(),
            "top_k": top_k,
            "featurizer": FEATURIZER_VERSION,
        }
        space, X = store.get_or_compute(
            "featmat", params, lambda: FeatureSpace._fit_impl(job, top_k)
        )
        return space, X

    @staticmethod
    def _fit_impl(job: JobProfile, top_k: int) -> tuple["FeatureSpace", np.ndarray]:
        raw = build_feature_matrix(job, normalize=False)
        totals = raw.sum(axis=1, keepdims=True)
        X = np.divide(raw, np.where(totals > 0, totals, 1.0))
        ipc = job.profile.ipc()
        ids, scores = select_features(
            X, ipc, top_k=top_k, mean_appearances=raw.mean(axis=0)
        )
        fqns = tuple(job.registry.fqn(int(m)) for m in ids)
        return FeatureSpace(ids, fqns, scores[ids]), X[:, ids]

    @property
    def n_features(self) -> int:
        """Dimensionality of the selected space."""
        return len(self.method_ids)

    def snapshot(self) -> dict:
        """Codec-safe capture of the (immutable) space definition."""
        return {
            "kind": "feature-space",
            "method_ids": np.asarray(self.method_ids, dtype=np.int64),
            "method_fqns": list(self.method_fqns),
            "scores": np.asarray(self.scores, dtype=np.float64),
        }

    @classmethod
    def from_snapshot(cls, state: dict) -> "FeatureSpace":
        if state.get("kind") != "feature-space":
            raise ValueError(f"not a feature-space snapshot: {state.get('kind')!r}")
        return cls(
            method_ids=np.asarray(state["method_ids"], dtype=np.intp),
            method_fqns=tuple(state["method_fqns"]),
            scores=np.asarray(state["scores"], dtype=np.float64),
        )

    def transform(self, X_full: np.ndarray) -> np.ndarray:
        """Restrict a full training-registry matrix to the space."""
        return X_full[:, self.method_ids]

    def _column_mapping(self, registry: MethodRegistry) -> np.ndarray:
        """``method id -> column`` array for any registry (-1 = dropped)."""
        col_of_fqn = {fqn: j for j, fqn in enumerate(self.method_fqns)}
        col_of_mid = np.full(len(registry), -1, dtype=np.intp)
        for mid in range(len(registry)):
            j = col_of_fqn.get(registry.fqn(mid))
            if j is not None:
                col_of_mid[mid] = j
        return col_of_mid

    def project_job(self, job: JobProfile) -> np.ndarray:
        """Feature matrix of any profile in this space (match by FQN).

        Methods of ``job`` that are not in the space are ignored; space
        methods absent from ``job`` contribute zero columns.  Rows are
        normalised by the unit's *total* snapshot frame count so
        frequencies remain comparable to training rows.  Computed in
        one batched scatter-add; equals a matrix built from successive
        :meth:`UnitFeaturizer.row` calls exactly.
        """
        X, frame_totals = _batch_featurize(
            job.profile.units,
            job.stack_table,
            self.n_features,
            self._column_mapping(job.registry),
        )
        totals = frame_totals[:, None]
        np.divide(X, totals, out=X, where=totals > 0)
        return X


class UnitFeaturizer:
    """Projects sampling units into a :class:`FeatureSpace` one at a time.

    The streaming twin of :meth:`FeatureSpace.project_job`: same
    FQN-keyed column mapping, same per-stack frame cache, same
    total-frame-count normalisation — applied row by row so live
    classification never needs the whole profile.  Each row is one
    scatter-add over the unit's stacked stack ids (not a per-stack
    loop), and a full matrix built from successive :meth:`row` calls
    equals ``project_job`` exactly.
    """

    def __init__(
        self,
        space: FeatureSpace,
        registry: MethodRegistry,
        stack_table: StackTable,
    ) -> None:
        self.space = space
        self._registry = registry
        self._col_of_fqn = {fqn: j for j, fqn in enumerate(space.method_fqns)}
        self._col_of_mid = np.full(0, -1, dtype=np.intp)
        self._extend_mapping()
        self._table = stack_table
        self._frames_cache: dict[int, tuple[np.ndarray, int]] = {}

    def _extend_mapping(self) -> None:
        # In live mode the registry keeps interning methods while the
        # job runs, so the id → column mapping is grown on demand; ids
        # are append-only, which keeps existing entries valid.
        old = len(self._col_of_mid)
        new = np.full(len(self._registry), -1, dtype=np.intp)
        new[:old] = self._col_of_mid
        for mid in range(old, len(self._registry)):
            j = self._col_of_fqn.get(self._registry.fqn(mid))
            if j is not None:
                new[mid] = j
        self._col_of_mid = new

    def _stack_columns(self, sid: int) -> tuple[np.ndarray, int]:
        """Cached ``(mapped columns, raw frame count)`` of one stack."""
        cached = self._frames_cache.get(sid)
        if cached is None:
            frames = np.fromiter(self._table.frames_of(sid), dtype=np.intp)
            if len(frames) and int(frames.max()) >= len(self._col_of_mid):
                self._extend_mapping()
            cols = self._col_of_mid[frames]
            cols = cols[cols >= 0]
            cached = (cols, len(frames))
            self._frames_cache[sid] = cached
        return cached

    def row_into(self, unit: SamplingUnit, row: np.ndarray) -> np.ndarray:
        """Fill ``row`` (zeroed, length ``n_features``) with one unit."""
        n_stacks = len(unit.stack_ids)
        if n_stacks == 0:
            return row
        counts = np.asarray(unit.stack_counts, dtype=np.float64)
        chunks: list[np.ndarray] = []
        lengths = np.empty(n_stacks, dtype=np.intp)
        full_len = np.empty(n_stacks, dtype=np.float64)
        for i, sid in enumerate(unit.stack_ids):
            cols, n_frames = self._stack_columns(int(sid))
            chunks.append(cols)
            lengths[i] = len(cols)
            full_len[i] = n_frames
        np.add.at(row, np.concatenate(chunks), np.repeat(counts, lengths))
        total = float((counts * full_len).sum())
        if total > 0:
            row /= total
        return row

    def row(self, unit: SamplingUnit) -> np.ndarray:
        """The unit's feature row in the space."""
        return self.row_into(unit, np.zeros(self.space.n_features))

    # -- snapshot protocol -------------------------------------------

    def snapshot(self) -> dict:
        """Capture the space identity; the caches are derived state.

        The id → column mapping and the per-stack frame cache are
        deterministic functions of the space, the registry, and the
        stack table, all of which a resumed job reconstructs — so the
        snapshot carries only enough to validate the pairing.
        """
        return {
            "kind": "unit-featurizer",
            "space": self.space.snapshot(),
        }

    def restore(self, state: dict) -> None:
        """Validate the space pairing and rebuild the derived caches."""
        if state.get("kind") != "unit-featurizer":
            raise ValueError(
                f"not a unit-featurizer snapshot: {state.get('kind')!r}"
            )
        space = FeatureSpace.from_snapshot(state["space"])
        if tuple(space.method_fqns) != tuple(self.space.method_fqns):
            raise ValueError("snapshot feature space does not match instance")
        self._col_of_fqn = {
            fqn: j for j, fqn in enumerate(self.space.method_fqns)
        }
        self._col_of_mid = np.full(0, -1, dtype=np.intp)
        self._extend_mapping()
        self._frames_cache = {}
