"""Feature vectors from call stacks (Section III-B, first half).

Every sampling unit becomes a vector over *methods*: dimension j counts
how often method j appeared in the unit's call-stack snapshots (a
snapshot contributes one count to every frame on its stack).  Rows are
normalised to frequencies so units with different snapshot counts stay
comparable.

Because the raw space easily has hundreds of dimensions dominated by
frames common to every unit (thread entry, task runner), SimProf keeps
only the top-K methods most correlated with performance, selected by a
univariate linear-regression test against per-unit IPC (K = 100 in the
paper).  The surviving dimensions are remembered *by fully-qualified
method name*, so units profiled from a different run (whose registry
assigns different ids) can be projected into the same space — the
mechanism the input-sensitivity test relies on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.units import JobProfile, SamplingUnit
from repro.jvm.methods import MethodRegistry, StackTable

__all__ = [
    "build_feature_matrix",
    "univariate_regression_scores",
    "select_features",
    "FeatureSpace",
    "UnitFeaturizer",
]


def build_feature_matrix(job: JobProfile, *, normalize: bool = True) -> np.ndarray:
    """Dense ``(n_units, n_methods)`` method-frequency matrix.

    Row i is the frequency distribution of methods over the snapshots of
    unit i (rows sum to ~1; an all-zero row means the unit had no
    snapshots, which cannot happen with period ≤ unit size).  With
    ``normalize=False`` the rows are raw appearance counts (one count
    per snapshot whose stack contains the method).
    """
    n_methods = len(job.registry)
    units = job.profile.units
    X = np.zeros((len(units), n_methods), dtype=np.float64)
    frames_cache: dict[int, np.ndarray] = {}
    table = job.stack_table
    for i, unit in enumerate(units):
        row = X[i]
        for sid, count in zip(unit.stack_ids, unit.stack_counts):
            frames = frames_cache.get(int(sid))
            if frames is None:
                frames = np.fromiter(table.frames_of(int(sid)), dtype=np.intp)
                frames_cache[int(sid)] = frames
            np.add.at(row, frames, float(count))
        if normalize:
            total = row.sum()
            if total > 0:
                row /= total
    return X


def univariate_regression_scores(X: np.ndarray, y: np.ndarray) -> np.ndarray:
    """F-scores of a per-feature univariate linear regression on ``y``.

    Identical to scikit-learn's ``f_regression``: the squared Pearson
    correlation ``r²`` mapped to ``F = r² / (1 − r²) · (n − 2)``.
    Constant features (including the frames shared by every stack)
    score 0 — exactly the elimination the paper describes.
    """
    n = len(y)
    if n != len(X):
        raise ValueError("X and y disagree on the number of units")
    if n < 3:
        return np.zeros(X.shape[1])
    xc = X - X.mean(axis=0)
    yc = y - y.mean()
    x_norm = np.sqrt((xc**2).sum(axis=0))
    y_norm = np.sqrt((yc**2).sum())
    denom = x_norm * y_norm
    with np.errstate(divide="ignore", invalid="ignore"):
        r = np.where(denom > 0, xc.T @ yc / np.where(denom > 0, denom, 1.0), 0.0)
    r2 = np.clip(r**2, 0.0, 1.0 - 1e-12)
    return r2 / (1.0 - r2) * (n - 2)


def select_features(
    X: np.ndarray,
    ipc: np.ndarray,
    top_k: int = 100,
    significance: float = 0.01,
    mean_appearances: np.ndarray | None = None,
    min_appearances: float = 0.5,
    min_r2: float = 0.10,
) -> tuple[np.ndarray, np.ndarray]:
    """Indices (sorted) and scores of the top-K IPC-correlated methods.

    Three filters beyond the top-K ranking:

    * methods must be *statistically* related to performance — the
      regression F-score must clear a Bonferroni-corrected critical
      value;
    * the relation must be *practically* relevant — the method must
      explain at least ``min_r2`` of the IPC variance (the paper's
      selection exists to keep performance-relevant methods, so a
      workload with essentially flat IPC, like grep, retains nothing
      and collapses to one phase downstream);
    * methods must be *resolvable* by the snapshot poller — a method
      seen in well under one snapshot per unit on average yields a
      quantised 0-or-1 feature that is sampling noise, not phase
      structure (``mean_appearances`` carries the raw per-unit counts).
    """
    from scipy import stats

    n, n_features = X.shape
    scores = univariate_regression_scores(X, ipc)
    if n_features == 0 or n < 3:
        return np.empty(0, dtype=np.intp), scores
    f_crit = float(
        stats.f.isf(min(1.0, significance / n_features), 1, max(1, n - 2))
    )
    # Invert F = r²/(1−r²)·(n−2) at the effect-size floor.
    f_floor = min_r2 / (1.0 - min_r2) * (n - 2)
    eligible = scores > max(f_crit, f_floor)
    if mean_appearances is not None:
        eligible &= mean_appearances >= min_appearances
    passing = np.nonzero(eligible)[0]
    order = np.argsort(-scores[passing], kind="stable")
    chosen = passing[order[:top_k]]
    return np.sort(chosen), scores


@dataclass
class FeatureSpace:
    """The selected method space of a training run.

    ``method_ids`` index the *training* registry; ``method_fqns`` name
    the same methods portably.  ``transform`` slices a full training
    matrix; ``project_job`` rebuilds the same columns for any profile
    (matching methods by name).
    """

    method_ids: np.ndarray
    method_fqns: tuple[str, ...]
    scores: np.ndarray

    @staticmethod
    def fit(job: JobProfile, top_k: int = 100) -> tuple["FeatureSpace", np.ndarray]:
        """Select the space from a training profile.

        Returns ``(space, X_selected)`` where ``X_selected`` is the
        training matrix restricted to the selected methods.
        """
        raw = build_feature_matrix(job, normalize=False)
        totals = raw.sum(axis=1, keepdims=True)
        X = np.divide(raw, np.where(totals > 0, totals, 1.0))
        ipc = job.profile.ipc()
        ids, scores = select_features(
            X, ipc, top_k=top_k, mean_appearances=raw.mean(axis=0)
        )
        fqns = tuple(job.registry.fqn(int(m)) for m in ids)
        return FeatureSpace(ids, fqns, scores[ids]), X[:, ids]

    @property
    def n_features(self) -> int:
        """Dimensionality of the selected space."""
        return len(self.method_ids)

    def transform(self, X_full: np.ndarray) -> np.ndarray:
        """Restrict a full training-registry matrix to the space."""
        return X_full[:, self.method_ids]

    def project_job(self, job: JobProfile) -> np.ndarray:
        """Feature matrix of any profile in this space (match by FQN).

        Methods of ``job`` that are not in the space are ignored; space
        methods absent from ``job`` contribute zero columns.  Rows are
        normalised by the unit's *total* snapshot frame count so
        frequencies remain comparable to training rows.
        """
        col_of_fqn = {fqn: j for j, fqn in enumerate(self.method_fqns)}
        registry: MethodRegistry = job.registry
        col_of_mid = np.full(len(registry), -1, dtype=np.intp)
        for mid in range(len(registry)):
            j = col_of_fqn.get(registry.fqn(mid))
            if j is not None:
                col_of_mid[mid] = j

        table: StackTable = job.stack_table
        units = job.profile.units
        featurizer = UnitFeaturizer(self, job.registry, table)
        X = np.zeros((len(units), self.n_features), dtype=np.float64)
        for i, unit in enumerate(units):
            featurizer.row_into(unit, X[i])
        return X


class UnitFeaturizer:
    """Projects sampling units into a :class:`FeatureSpace` one at a time.

    The streaming twin of :meth:`FeatureSpace.project_job`: same
    FQN-keyed column mapping, same per-stack frame cache, same
    total-frame-count normalisation — applied row by row so live
    classification never needs the whole profile.  A full matrix built
    from successive :meth:`row` calls equals ``project_job`` exactly.
    """

    def __init__(
        self,
        space: FeatureSpace,
        registry: MethodRegistry,
        stack_table: StackTable,
    ) -> None:
        self.space = space
        self._registry = registry
        self._col_of_fqn = {fqn: j for j, fqn in enumerate(space.method_fqns)}
        self._col_of_mid = np.full(0, -1, dtype=np.intp)
        self._extend_mapping()
        self._table = stack_table
        self._frames_cache: dict[int, tuple[np.ndarray, int]] = {}

    def _extend_mapping(self) -> None:
        # In live mode the registry keeps interning methods while the
        # job runs, so the id → column mapping is grown on demand; ids
        # are append-only, which keeps existing entries valid.
        old = len(self._col_of_mid)
        new = np.full(len(self._registry), -1, dtype=np.intp)
        new[:old] = self._col_of_mid
        for mid in range(old, len(self._registry)):
            j = self._col_of_fqn.get(self._registry.fqn(mid))
            if j is not None:
                new[mid] = j
        self._col_of_mid = new

    def row_into(self, unit: SamplingUnit, row: np.ndarray) -> np.ndarray:
        """Fill ``row`` (zeroed, length ``n_features``) with one unit."""
        total = 0.0
        for sid, count in zip(unit.stack_ids, unit.stack_counts):
            cached = self._frames_cache.get(int(sid))
            if cached is None:
                frames = np.fromiter(
                    self._table.frames_of(int(sid)), dtype=np.intp
                )
                if len(frames) and int(frames.max()) >= len(self._col_of_mid):
                    self._extend_mapping()
                cols = self._col_of_mid[frames]
                cols = cols[cols >= 0]
                cached = (cols, len(frames))
                self._frames_cache[int(sid)] = cached
            cols, n_frames = cached
            np.add.at(row, cols, float(count))
            total += float(count) * n_frames
        if total > 0:
            row /= total
        return row

    def row(self, unit: SamplingUnit) -> np.ndarray:
        """The unit's feature row in the space."""
        return self.row_into(unit, np.zeros(self.space.n_features))
