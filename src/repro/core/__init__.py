"""SimProf core: profiling, phase formation, phase sampling, input
sensitivity (Sections III-A through III-D of the paper)."""

from repro.core.units import JobProfile, SamplingUnit, ThreadProfile
from repro.core.profiler import (
    ProfilerConfig,
    ProfilerSession,
    SimProfProfiler,
    StreamingProfiler,
)
from repro.core.features import (
    FeatureSpace,
    UnitFeaturizer,
    build_feature_matrix,
    select_features,
)
from repro.core.clustering import (
    KMeansResult,
    OnlineKMeans,
    choose_k,
    kmeans,
    silhouette_score,
)
from repro.core.phases import PhaseModel, PhaseStats
from repro.core.sampling import (
    StratifiedEstimate,
    optimal_allocation,
    required_sample_size,
    stratified_sample,
)
from repro.core.baselines import (
    CodeSampler,
    SecondSampler,
    SimProfSampler,
    SRSSampler,
)
from repro.core.sensitivity import (
    InputSensitivityResult,
    PhaseSensitivity,
    classify_units,
    input_sensitivity_test,
)
from repro.core.analysis import CoVReport, cov_report, phase_type_of, phase_types
from repro.core.pipeline import ClassifySession, SimProf, SimProfConfig, SimProfResult

__all__ = [
    "ClassifySession",
    "CoVReport",
    "CodeSampler",
    "FeatureSpace",
    "InputSensitivityResult",
    "JobProfile",
    "KMeansResult",
    "OnlineKMeans",
    "PhaseModel",
    "PhaseSensitivity",
    "PhaseStats",
    "ProfilerConfig",
    "ProfilerSession",
    "SRSSampler",
    "SamplingUnit",
    "SecondSampler",
    "SimProf",
    "SimProfConfig",
    "SimProfProfiler",
    "SimProfResult",
    "SimProfSampler",
    "StratifiedEstimate",
    "StreamingProfiler",
    "ThreadProfile",
    "UnitFeaturizer",
    "build_feature_matrix",
    "choose_k",
    "classify_units",
    "cov_report",
    "input_sensitivity_test",
    "kmeans",
    "optimal_allocation",
    "phase_type_of",
    "phase_types",
    "required_sample_size",
    "select_features",
    "silhouette_score",
    "stratified_sample",
]
