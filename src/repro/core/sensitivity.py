"""Input sensitivity test (Section III-D).

One input is the *training* input; its phase model (centres + per-phase
CPI statistics) is the reference frame.  For every other (*reference*)
input:

1. **Unit classification** — the reference run's sampling units are
   vectorised in the training feature space and assigned to the nearest
   training phase centre.
2. **Phase sensitivity test** (Eq. 6) — a phase is input *sensitive* if
   its CPI mean or CPI standard deviation moves by more than 10 %
   between the training and the reference run.

A phase flagged by any reference input is input sensitive; the rest are
input insensitive and can be skipped when simulating further inputs,
which is where the Figure 12 sample-size reduction comes from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.phases import PhaseModel, PhaseStats
from repro.core.units import JobProfile

__all__ = [
    "PhaseSensitivity",
    "InputSensitivityResult",
    "classify_units",
    "phase_sensitivity_test",
    "input_sensitivity_test",
]

DEFAULT_THRESHOLD = 0.10


def classify_units(model: PhaseModel, job: JobProfile) -> np.ndarray:
    """Unit classification: nearest training centre per reference unit."""
    return model.classify_job(job)


def phase_sensitivity_test(
    train: PhaseStats, ref: PhaseStats, threshold: float = DEFAULT_THRESHOLD
) -> bool:
    """Eq. 6 for one phase: does mean or std move more than 10 %?

    A phase absent from the reference run (no classified units) carries
    no evidence and tests insensitive; a phase absent from the training
    run cannot be compared and also tests insensitive.

    Both terms are normalised by the training mean: the mean must move
    by more than ``threshold`` of itself, or the dispersion must change
    by more than ``threshold`` *of the mean*.  Normalising the σ term by
    σ itself (a literal reading of Eq. 6) makes the test explode on
    almost-deterministic phases — a σ drift from 0.013 to 0.015 CPI is
    a 15 % "change" that no simulation-time budget cares about — and
    with seven reference inputs it flags every phase, erasing the
    Figure 12/13 reductions the paper reports.
    """
    if ref.n_units == 0 or train.n_units == 0:
        return False
    if train.cpi_mean <= 0:
        return False
    if abs(train.cpi_mean - ref.cpi_mean) / train.cpi_mean > threshold:
        return True
    if abs(train.cpi_std - ref.cpi_std) / train.cpi_mean > threshold:
        return True
    return False


@dataclass(frozen=True)
class PhaseSensitivity:
    """Verdict for one phase across all reference inputs."""

    phase_id: int
    sensitive: bool
    triggered_by: tuple[str, ...]  # reference inputs that flagged it


@dataclass
class InputSensitivityResult:
    """Full result of Algorithm 1 over a set of reference inputs."""

    model: PhaseModel
    train_stats: list[PhaseStats]
    phases: list[PhaseSensitivity]
    ref_stats: dict[str, list[PhaseStats]] = field(default_factory=dict)
    ref_assignments: dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def sensitive_phases(self) -> list[int]:
        """Phase ids that are input sensitive."""
        return [p.phase_id for p in self.phases if p.sensitive]

    @property
    def insensitive_phases(self) -> list[int]:
        """Phase ids whose performance does not change by input."""
        return [p.phase_id for p in self.phases if not p.sensitive]

    def sensitive_point_fraction(self, allocation: np.ndarray) -> float:
        """Fraction of simulation points that land in sensitive phases.

        ``allocation`` is the per-phase sample size (e.g. from optimal
        allocation); this is the quantity Figure 12 plots — the sample
        size needed for each *reference* input, as a fraction of the
        training input's sample.
        """
        total = allocation.sum()
        if total == 0:
            return 0.0
        sensitive = set(self.sensitive_phases)
        kept = sum(
            int(allocation[h]) for h in range(len(allocation)) if h in sensitive
        )
        return kept / total


def input_sensitivity_test(
    model: PhaseModel,
    train_job: JobProfile,
    ref_jobs: dict[str, JobProfile],
    *,
    threshold: float = DEFAULT_THRESHOLD,
) -> InputSensitivityResult:
    """Algorithm 1: flag the phases whose performance changes by input."""
    train_stats = model.phase_stats(train_job.profile.cpi())
    triggered: dict[int, list[str]] = {h: [] for h in range(model.k)}
    ref_stats: dict[str, list[PhaseStats]] = {}
    ref_assignments: dict[str, np.ndarray] = {}

    for ref_name, ref_job in ref_jobs.items():
        assignments = classify_units(model, ref_job)
        ref_assignments[ref_name] = assignments
        stats = model.phase_stats(ref_job.profile.cpi(), assignments)
        ref_stats[ref_name] = stats
        for h in range(model.k):
            if phase_sensitivity_test(train_stats[h], stats[h], threshold):
                triggered[h].append(ref_name)

    phases = [
        PhaseSensitivity(
            phase_id=h,
            sensitive=bool(triggered[h]),
            triggered_by=tuple(triggered[h]),
        )
        for h in range(model.k)
    ]
    return InputSensitivityResult(
        model=model,
        train_stats=train_stats,
        phases=phases,
        ref_stats=ref_stats,
        ref_assignments=ref_assignments,
    )
