"""The compared sampling approaches (Section IV-B).

* **SECOND** — one contiguous N-second interval (N = 10 in the paper),
  the classic approach for transaction-based server workloads.
* **SRS** — simple random sampling of n units.
* **CODE** — a SimPoint-like approach: cluster on call stacks only and
  simulate the unit closest to each phase centre, weighting phase means
  by phase size.
* **SimProf** — stratified random sampling with optimal allocation
  (implemented in :mod:`repro.core.sampling`; wrapped here for a
  uniform sampler interface).

All samplers return a :class:`SamplerResult` whose ``estimate`` is a
predicted mean CPI; ``error_vs`` compares it to the oracle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.phases import PhaseModel
from repro.core.sampling import stratified_sample
from repro.core.units import JobProfile

__all__ = [
    "SamplerResult",
    "SecondSampler",
    "SRSSampler",
    "CodeSampler",
    "SimProfSampler",
]


@dataclass(frozen=True)
class SamplerResult:
    """A sample (unit indices) and its CPI estimate."""

    name: str
    selected: np.ndarray
    estimate: float

    @property
    def sample_size(self) -> int:
        """Number of sampling units selected."""
        return len(self.selected)

    def error_vs(self, oracle_cpi: float) -> float:
        """Relative CPI error against the oracle."""
        return abs(self.estimate - oracle_cpi) / oracle_cpi


class SecondSampler:
    """Single contiguous N-second interval.

    The window is placed after a warm-up fraction of the execution
    (time-based, like attaching a simulator N seconds in).  The estimate
    is the mean CPI of the units the window covers.
    """

    def __init__(self, seconds: float = 10.0, warmup_fraction: float = 0.1) -> None:
        if seconds <= 0:
            raise ValueError("seconds must be positive")
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")
        self.seconds = seconds
        self.warmup_fraction = warmup_fraction

    def sample(self, job: JobProfile) -> SamplerResult:
        """Select the units covered by the time window."""
        cycles = job.profile.cycles()
        cum = np.concatenate([[0.0], np.cumsum(cycles)])
        total_cycles = cum[-1]
        window_cycles = self.seconds * job.machine.clock_hz
        start = min(
            self.warmup_fraction * total_cycles,
            max(0.0, total_cycles - window_cycles),
        )
        stop = start + window_cycles
        # Units whose cycle span intersects [start, stop).
        selected = np.nonzero((cum[:-1] < stop) & (cum[1:] > start))[0]
        if len(selected) == 0:
            selected = np.array([0])
        cpi = job.profile.cpi()
        return SamplerResult(
            name="SECOND",
            selected=selected,
            estimate=float(cpi[selected].mean()),
        )


class SRSSampler:
    """Simple random sampling of n units."""

    def __init__(self, n: int = 20) -> None:
        if n <= 0:
            raise ValueError("n must be positive")
        self.n = n

    def sample(
        self, job: JobProfile, rng: np.random.Generator | None = None
    ) -> SamplerResult:
        """Draw n units uniformly without replacement."""
        rng = rng or np.random.default_rng(0)
        cpi = job.profile.cpi()
        n = min(self.n, len(cpi))
        selected = np.sort(rng.choice(len(cpi), size=n, replace=False))
        return SamplerResult(
            name="SRS", selected=selected, estimate=float(cpi[selected].mean())
        )


class CodeSampler:
    """SimPoint-like: one simulation point per phase, at the centre.

    Uses the same call-stack clustering as SimProf but ignores the
    performance counters: one unit per phase (the one closest to the
    centre), phase means weighted by phase size.
    """

    def sample(self, job: JobProfile, model: PhaseModel) -> SamplerResult:
        """Select each phase's medoid-by-centre unit."""
        X = model.space.project_job(job)
        cpi = job.profile.cpi()
        selected: list[int] = []
        estimate = 0.0
        N = len(cpi)
        for h in range(model.k):
            members = np.nonzero(model.assignments == h)[0]
            if len(members) == 0:
                continue
            d = ((X[members] - model.centers[h]) ** 2).sum(axis=1)
            rep = int(members[int(d.argmin())])
            selected.append(rep)
            estimate += (len(members) / N) * cpi[rep]
        return SamplerResult(
            name="CODE",
            selected=np.array(sorted(selected), dtype=np.int64),
            estimate=float(estimate),
        )


class SimProfSampler:
    """Stratified random sampling with optimal allocation (the paper)."""

    def __init__(self, n: int = 20) -> None:
        if n <= 0:
            raise ValueError("n must be positive")
        self.n = n

    def sample(
        self,
        job: JobProfile,
        model: PhaseModel,
        rng: np.random.Generator | None = None,
    ) -> SamplerResult:
        """Draw the stratified sample over the model's phases."""
        rng = rng or np.random.default_rng(0)
        cpi = job.profile.cpi()
        n = max(min(self.n, len(cpi)), model.k)
        est = stratified_sample(
            model.assignments, cpi, n, rng=rng, k=model.k
        )
        return SamplerResult(
            name="SimProf", selected=est.selected, estimate=est.estimate
        )
