"""Thread profiling (Section III-A).

Consumes a :class:`~repro.jvm.job.JobTrace` strictly through the two
standard profiling interfaces — the JVMTI-like stack snapshotter and
the perf_event-like counter reader — and produces the sampling units
SimProf works with:

* the thread's instruction stream is cut into fixed-size units
  (default 100 M instructions; a trailing partial unit is dropped),
* the call stack is snapshotted every ``snapshot_period`` instructions
  (default 10 M — "negligible profiling overhead while having a
  sufficient number of call stacks"),
* hardware counters are read per unit.

For Hadoop jobs the incoming trace has already been merged per core by
the runtime, so the profiler is framework-agnostic here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.units import JobProfile, SamplingUnit, ThreadProfile
from repro.jvm.job import JobTrace
from repro.jvm.jvmti import StackSnapshotter
from repro.jvm.perf import PerfCounterReader
from repro.jvm.threads import ThreadTrace

__all__ = ["ProfilerConfig", "SimProfProfiler"]


@dataclass(frozen=True, slots=True)
class ProfilerConfig:
    """Profiling knobs.

    ``thread_id=None`` profiles the busiest executor thread (the paper
    samples a single executor thread; the busiest one covers every
    stage).  The defaults are the paper's: 100 M-instruction units,
    10 M-instruction snapshot period.
    """

    unit_size: int = 100_000_000
    # The paper polls every 10 M instructions.  With the simulator's
    # narrower stack vocabulary, 10 samples per unit quantise mixture
    # fractions into a coarse lattice that manufactures phantom phases,
    # so the default here is 2 M (50 samples/unit); the ablation bench
    # covers the paper's 10 M setting.
    snapshot_period: int = 2_000_000
    thread_id: int | None = None
    # Relative jitter of the poll timer: real JVMTI sampling is not
    # phase-locked to the instruction counter, so the stack mixture a
    # unit sees carries multinomial sampling noise.
    snapshot_jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.unit_size <= 0:
            raise ValueError("unit_size must be positive")
        if self.snapshot_period <= 0:
            raise ValueError("snapshot_period must be positive")
        if self.snapshot_period > self.unit_size:
            raise ValueError("snapshot_period cannot exceed unit_size")
        if not 0.0 <= self.snapshot_jitter < 1.0:
            raise ValueError("snapshot_jitter must be in [0, 1)")


class SimProfProfiler:
    """Builds :class:`JobProfile` objects from job traces."""

    def __init__(self, config: ProfilerConfig | None = None) -> None:
        self.config = config or ProfilerConfig()

    def profile_thread(self, trace: ThreadTrace) -> ThreadProfile:
        """Profile one executor thread into sampling units."""
        cfg = self.config
        snapshotter = StackSnapshotter(trace)
        counters = PerfCounterReader(trace)
        total = snapshotter.total_instructions
        n_units = total // cfg.unit_size
        if n_units == 0:
            raise ValueError(
                f"thread {trace.thread_id} retired {total} instructions, "
                f"fewer than one sampling unit ({cfg.unit_size})"
            )

        boundaries = np.arange(0, (n_units + 1) * cfg.unit_size, cfg.unit_size)
        windows = counters.read_windows(boundaries.astype(np.float64))

        rng = np.random.default_rng(
            np.random.SeedSequence([cfg.seed, trace.thread_id & 0x7FFFFFFF])
        )
        offsets, stack_ids = snapshotter.snapshot_arrays(
            cfg.snapshot_period, jitter=cfg.snapshot_jitter, rng=rng
        )
        unit_of_snapshot = offsets // cfg.unit_size

        units: list[SamplingUnit] = []
        for i, win in enumerate(windows):
            mask = unit_of_snapshot == i
            ids, counts = np.unique(stack_ids[mask], return_counts=True)
            units.append(
                SamplingUnit(
                    index=i,
                    stack_ids=ids.astype(np.int64),
                    stack_counts=counts.astype(np.int64),
                    instructions=win.instructions,
                    cycles=win.cycles,
                    l1d_misses=win.l1d_misses,
                    llc_misses=win.llc_misses,
                )
            )
        return ThreadProfile(
            thread_id=trace.thread_id,
            unit_size=cfg.unit_size,
            snapshot_period=cfg.snapshot_period,
            units=units,
        )

    def profile(self, job: JobTrace) -> JobProfile:
        """Profile the configured (default: busiest) executor thread."""
        if self.config.thread_id is not None:
            trace = job.thread(self.config.thread_id)
        else:
            trace = job.longest_thread()
        return JobProfile(
            workload=job.workload,
            framework=job.framework,
            input_name=job.input_name,
            profile=self.profile_thread(trace),
            registry=job.registry,
            stack_table=job.stack_table,
            machine=job.machine,
            stages=list(job.stages),
            meta=dict(job.meta),
        )
