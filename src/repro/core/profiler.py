"""Thread profiling (Section III-A).

Consumes a :class:`~repro.jvm.job.JobTrace` strictly through the two
standard profiling interfaces — the JVMTI-like stack snapshotter and
the perf_event-like counter reader — and produces the sampling units
SimProf works with:

* the thread's instruction stream is cut into fixed-size units
  (default 100 M instructions; a trailing partial unit is dropped),
* the call stack is snapshotted every ``snapshot_period`` instructions
  (``ProfilerConfig.snapshot_period``, default 2 M — see the field
  comment for why this repo deviates from the paper's 10 M),
* hardware counters are read per unit.

For Hadoop jobs the incoming trace has already been merged per core by
the runtime, so the profiler is framework-agnostic here.

Two consumption modes share the same arithmetic:

* :class:`SimProfProfiler` — the classic batch path over a fully
  materialised :class:`~repro.jvm.job.JobTrace`;
* :class:`StreamingProfiler` — an incremental path over a
  :class:`~repro.jvm.stream.TraceStream` that emits each
  :class:`~repro.core.units.SamplingUnit` the moment its closing
  boundary streams past, holding only O(active-unit) state per thread.
  Under the same seed it is bit-identical to the batch path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

import numpy as np

from repro.core.units import JobProfile, SamplingUnit, ThreadProfile
from repro.jvm.job import JobTrace, StageInfo
from repro.jvm.jvmti import StackSnapshotter
from repro.jvm.perf import PerfCounterReader
from repro.jvm.stream import (
    JobEnd,
    SegmentBatch,
    StageEvent,
    ThreadStart,
    TraceEvent,
    TraceStream,
)
from repro.jvm.threads import ThreadTrace
from repro.runtime.instrument import ThroughputMeter
from repro.runtime.snapshot import restore_rng, rng_state

__all__ = [
    "ProfilerConfig",
    "ProfilerSession",
    "SimProfProfiler",
    "StreamingProfiler",
]


@dataclass(frozen=True, slots=True)
class ProfilerConfig:
    """Profiling knobs.

    ``thread_id=None`` profiles the busiest executor thread (the paper
    samples a single executor thread; the busiest one covers every
    stage).  ``unit_size`` keeps the paper's 100 M-instruction units;
    ``snapshot_period`` defaults to 2 M rather than the paper's 10 M
    (see the field comment below).
    """

    unit_size: int = 100_000_000
    # The paper polls every 10 M instructions.  With the simulator's
    # narrower stack vocabulary, 10 samples per unit quantise mixture
    # fractions into a coarse lattice that manufactures phantom phases,
    # so the default here is 2 M (50 samples/unit); the ablation bench
    # covers the paper's 10 M setting.
    snapshot_period: int = 2_000_000
    thread_id: int | None = None
    # Relative jitter of the poll timer: real JVMTI sampling is not
    # phase-locked to the instruction counter, so the stack mixture a
    # unit sees carries multinomial sampling noise.
    snapshot_jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.unit_size <= 0:
            raise ValueError("unit_size must be positive")
        if self.snapshot_period <= 0:
            raise ValueError("snapshot_period must be positive")
        if self.snapshot_period > self.unit_size:
            raise ValueError("snapshot_period cannot exceed unit_size")
        if not 0.0 <= self.snapshot_jitter < 1.0:
            raise ValueError("snapshot_jitter must be in [0, 1)")


class SimProfProfiler:
    """Builds :class:`JobProfile` objects from job traces."""

    def __init__(self, config: ProfilerConfig | None = None) -> None:
        self.config = config or ProfilerConfig()

    def profile_thread(self, trace: ThreadTrace) -> ThreadProfile:
        """Profile one executor thread into sampling units."""
        cfg = self.config
        snapshotter = StackSnapshotter(trace)
        counters = PerfCounterReader(trace)
        total = snapshotter.total_instructions
        n_units = total // cfg.unit_size
        if n_units == 0:
            raise ValueError(
                f"thread {trace.thread_id} retired {total} instructions, "
                f"fewer than one sampling unit ({cfg.unit_size})"
            )

        boundaries = np.arange(0, (n_units + 1) * cfg.unit_size, cfg.unit_size)
        windows = counters.read_windows(boundaries.astype(np.float64))

        rng = np.random.default_rng(
            np.random.SeedSequence([cfg.seed, trace.thread_id & 0x7FFFFFFF])
        )
        offsets, stack_ids = snapshotter.snapshot_arrays(
            cfg.snapshot_period, jitter=cfg.snapshot_jitter, rng=rng
        )
        unit_of_snapshot = offsets // cfg.unit_size

        units: list[SamplingUnit] = []
        for i, win in enumerate(windows):
            mask = unit_of_snapshot == i
            ids, counts = np.unique(stack_ids[mask], return_counts=True)
            units.append(
                SamplingUnit(
                    index=i,
                    stack_ids=ids.astype(np.int64),
                    stack_counts=counts.astype(np.int64),
                    instructions=win.instructions,
                    cycles=win.cycles,
                    l1d_misses=win.l1d_misses,
                    llc_misses=win.llc_misses,
                )
            )
        return ThreadProfile(
            thread_id=trace.thread_id,
            unit_size=cfg.unit_size,
            snapshot_period=cfg.snapshot_period,
            units=units,
        )

    def profile(self, job: JobTrace) -> JobProfile:
        """Profile the configured (default: busiest) executor thread."""
        if self.config.thread_id is not None:
            trace = job.thread(self.config.thread_id)
        else:
            trace = job.longest_thread()
        return JobProfile(
            workload=job.workload,
            framework=job.framework,
            input_name=job.input_name,
            profile=self.profile_thread(trace),
            registry=job.registry,
            stack_table=job.stack_table,
            machine=job.machine,
            stages=list(job.stages),
            meta=dict(job.meta),
        )

    def profile_stream(self, stream: TraceStream, **kwargs: Any) -> JobProfile:
        """Profile a live trace stream (see :class:`StreamingProfiler`)."""
        return StreamingProfiler(self.config).consume(stream, **kwargs)


class _UnitCutter:
    """Incremental columnar unit cutter for one thread.

    Consumes whole :data:`~repro.jvm.segments.SEGMENT_DTYPE` batches
    (:meth:`feed_array`) and replays the batch arithmetic exactly:

    * the chained ``np.cumsum`` over each batch's float64 counter
      columns is bit-identical to ``PerfCounterReader``'s global cumsum
      (both are sequential left-to-right accumulation, and the carry is
      the exact running value);
    * poll points come from the same PCG64 stream as the batch
      snapshotter — chunked ``uniform(size=n)`` draws consume the
      generator exactly like ``n`` scalar draws, and the buffered
      leftovers are the next draws in order;
    * snapshot→segment assignment is ``searchsorted(cum_end, points,
      side="right")`` — a poll point belongs to the first segment whose
      cumulative count strictly exceeds it, the consume-when-passed
      rule;
    * boundary counters come from one ``np.interp`` per column over the
      batch-local chained cumsum, which selects the same bracketing
      interval (and the same last-duplicate resolution for exact
      matches) as the global call.

    Two ordering rules keep the duplicate-abscissa semantics of
    ``np.interp`` (exact matches resolve to the *last* duplicate): a
    unit boundary is processed only once the integer instruction
    counter strictly exceeds it, so zero-instruction segments sitting
    exactly on a boundary fold their counters into the left endpoint
    first; and a boundary equal to the thread's final total is flushed
    at finalisation with the final cumulative values.  All snapshots of
    a unit land in segments at or before the unit's closing boundary's
    crossing segment, so bucketing a batch's snapshots before emitting
    its boundaries preserves the per-segment interleaving.

    The scalar per-segment original lives on as
    :class:`repro.core._reference.ReferenceUnitCutter`; the parity
    suite holds the two bit-identical.
    """

    __slots__ = (
        "thread_id",
        "_cfg",
        "total",
        "_cum_i",
        "_cum_c",
        "_cum_l1",
        "_cum_llc",
        "_prev_b",
        "_prev_c",
        "_prev_l1",
        "_prev_llc",
        "_next_boundary",
        "_rng",
        "_first",
        "_gap_sum",
        "_point_int",
        "_counts",
        "_gap_buf",
        "_gap_pos",
    )

    def __init__(self, thread_id: int, cfg: ProfilerConfig) -> None:
        self.thread_id = thread_id
        self._cfg = cfg
        self.total = 0  # integer instruction counter (the JVMTI clock)
        self._cum_i = 0.0  # float64 cumulative counters (the perf columns)
        self._cum_c = 0.0
        self._cum_l1 = 0.0
        self._cum_llc = 0.0
        # Counter values interpolated at the last processed boundary.
        self._prev_b = 0
        self._prev_c = 0.0
        self._prev_l1 = 0.0
        self._prev_llc = 0.0
        # Boundary 0 goes through the same deferred machinery so a
        # zero-instruction prefix folds into its left endpoint exactly
        # as np.interp's last-duplicate rule would have it.
        self._next_boundary = 0
        # Poll timer state, mirroring StackSnapshotter._poll_points.
        self._first = cfg.snapshot_period
        if cfg.snapshot_jitter == 0.0:
            self._rng = None
        else:
            self._rng = np.random.default_rng(
                np.random.SeedSequence([cfg.seed, thread_id & 0x7FFFFFFF])
            )
        self._gap_sum = 0.0
        self._point_int = self._first
        # unit index -> {stack_id: count}; only units whose closing
        # boundary has not streamed past yet are resident.
        self._counts: dict[int, dict[int, int]] = {}
        # Buffered jitter gaps: chunked uniform draws, consumed in draw
        # order so the stream position always matches the scalar path.
        self._gap_buf = np.empty(0, dtype=np.float64)
        self._gap_pos = 0

    def _peek_gaps(self, n: int) -> np.ndarray:
        """The next ``n`` poll gaps, without committing the timer to them."""
        avail = len(self._gap_buf) - self._gap_pos
        if avail < n:
            cfg = self._cfg
            fresh = cfg.snapshot_period * self._rng.uniform(
                1.0 - cfg.snapshot_jitter,
                1.0 + cfg.snapshot_jitter,
                size=max(n - avail, 1024),
            )
            self._gap_buf = np.concatenate(
                [self._gap_buf[self._gap_pos :], fresh]
            )
            self._gap_pos = 0
        return self._gap_buf[self._gap_pos : self._gap_pos + n]

    def _consume_points(self, total_new: int) -> np.ndarray | None:
        """Poll points in ``[self._point_int, total_new)``; advance the timer.

        Returns the consumed points in firing order (``None`` when the
        batch ends before the next point), leaving ``_point_int`` at
        the first point ``>= total_new`` and ``_gap_sum`` at the chained
        float sum after exactly one draw per consumed point — the same
        generator state the scalar one-draw-per-advance loop reaches.
        """
        p = self._point_int
        if p >= total_new:
            return None
        period = self._cfg.snapshot_period
        if self._rng is None:
            n = (total_new - 1 - p) // period + 1
            pts = p + period * np.arange(n, dtype=np.int64)
            self._point_int = int(p + period * n)
            return pts
        first = float(self._first)
        parts = [np.array([p], dtype=np.int64)]
        while True:
            span = total_new - p
            want = int(span // period) + 2
            gaps = self._peek_gaps(want)
            # Chained cumsum: gsums[j] is _gap_sum after j+1 sequential
            # += draws, bit for bit.
            gsums = np.cumsum(np.concatenate(([self._gap_sum], gaps)))[1:]
            cands = (first + gsums).astype(np.int64)
            stop = int(np.searchsorted(cands, total_new, side="left"))
            if stop < want:
                # cands[stop] is the first point past the batch: it and
                # every earlier candidate consumed one draw each.
                parts.append(cands[:stop])
                self._gap_pos += stop + 1
                self._gap_sum = float(gsums[stop])
                self._point_int = int(cands[stop])
                return np.concatenate(parts)
            parts.append(cands)
            self._gap_pos += want
            self._gap_sum = float(gsums[-1])
            p = int(cands[-1])

    def _bucket_points(self, points: np.ndarray, stacks: np.ndarray) -> None:
        """Fold ``(point, stack)`` pairs into the per-unit count dicts."""
        units = points // self._cfg.unit_size
        order = np.lexsort((stacks, units))
        u = units[order]
        s = stacks[order]
        group_start = np.empty(len(u), dtype=bool)
        group_start[0] = True
        group_start[1:] = (u[1:] != u[:-1]) | (s[1:] != s[:-1])
        starts = np.flatnonzero(group_start)
        counts = np.diff(np.append(starts, len(u)))
        for at, cnt in zip(starts, counts):
            bucket = self._counts.setdefault(int(u[at]), {})
            sid = int(s[at])
            bucket[sid] = bucket.get(sid, 0) + int(cnt)

    def _emit_unit(self, b: int, c_b: float, l1_b: float, llc_b: float) -> SamplingUnit:
        unit_size = self._cfg.unit_size
        index = b // unit_size - 1
        counts = self._counts.pop(index, None)
        if counts:
            items = sorted(counts.items())
            ids = np.array([k for k, _ in items], dtype=np.int64)
            cnt = np.array([v for _, v in items], dtype=np.int64)
        else:
            ids = np.array([], dtype=np.int64)
            cnt = np.array([], dtype=np.int64)
        unit = SamplingUnit(
            index=index,
            stack_ids=ids,
            stack_counts=cnt,
            instructions=float(b) - float(self._prev_b),
            cycles=c_b - self._prev_c,
            l1d_misses=l1_b - self._prev_l1,
            llc_misses=llc_b - self._prev_llc,
        )
        self._prev_b = b
        self._prev_c = c_b
        self._prev_l1 = l1_b
        self._prev_llc = llc_b
        self._next_boundary = b + unit_size
        return unit

    def feed_array(self, data: np.ndarray) -> list[SamplingUnit]:
        """Account one packed segment batch; return the units it completed.

        ``data`` is a :data:`~repro.jvm.segments.SEGMENT_DTYPE` array;
        the cutter touches only its columns and never materialises
        per-segment objects.
        """
        n = len(data)
        if n == 0:
            return []
        cfg = self._cfg
        inst = data["instructions"]
        # Integer JVMTI clock per segment end (exact), and the chained
        # float64 perf columns — np.cumsum accumulates left to right, so
        # seeding it with the carry reproduces sequential += bit for bit.
        cum_end = self.total + np.cumsum(inst)
        total_new = int(cum_end[-1])
        ci = np.cumsum(
            np.concatenate(([self._cum_i], inst.astype(np.float64)))
        )
        cc = np.cumsum(
            np.concatenate(
                ([self._cum_c], data["cycles"].astype(np.float64))
            )
        )
        cl1 = np.cumsum(
            np.concatenate(
                ([self._cum_l1], data["l1d_misses"].astype(np.float64))
            )
        )
        cllc = np.cumsum(
            np.concatenate(
                ([self._cum_llc], data["llc_misses"].astype(np.float64))
            )
        )
        self.total = total_new
        self._cum_i = float(ci[-1])
        self._cum_c = float(cc[-1])
        self._cum_l1 = float(cl1[-1])
        self._cum_llc = float(cllc[-1])

        # Snapshots: searchsorted(side="right") hands each poll point to
        # the first segment whose cumulative count strictly exceeds it
        # (consume-when-passed); points at or beyond the batch total
        # stay pending, reproducing the batch points-<-total filter.
        points = self._consume_points(total_new)
        if points is not None:
            seg_of_point = np.searchsorted(cum_end, points, side="right")
            self._bucket_points(points, data["stack_id"][seg_of_point])

        if total_new <= self._next_boundary:
            return []
        # Unit boundaries this batch streamed past.  One np.interp per
        # column over the batch-local chained cumsum selects the same
        # bracketing interval — and the same last-duplicate resolution
        # for boundaries sitting exactly on a segment end — as the
        # global call over the whole trace.
        bs = np.arange(self._next_boundary, total_new, cfg.unit_size)
        fbs = bs.astype(np.float64)
        c_bs = np.interp(fbs, ci, cc)
        l1_bs = np.interp(fbs, ci, cl1)
        llc_bs = np.interp(fbs, ci, cllc)
        out: list[SamplingUnit] = []
        for k, b in enumerate(bs):
            b = int(b)
            if b == 0:
                # Boundary 0 opens the first unit; it emits nothing.
                self._prev_c = float(c_bs[k])
                self._prev_l1 = float(l1_bs[k])
                self._prev_llc = float(llc_bs[k])
                self._next_boundary = cfg.unit_size
            else:
                out.append(
                    self._emit_unit(
                        b, float(c_bs[k]), float(l1_bs[k]), float(llc_bs[k])
                    )
                )
        return out

    def flush(self) -> list[SamplingUnit]:
        """Emit a boundary sitting exactly on the final total, if any."""
        out: list[SamplingUnit] = []
        if self.total > 0 and self._next_boundary == self.total:
            # Exact-multiple trace: global interpolation at the last
            # abscissa returns the final cumulative values.
            out.append(
                self._emit_unit(
                    self._next_boundary, self._cum_c, self._cum_l1, self._cum_llc
                )
            )
        self._counts.clear()  # trailing partial unit, dropped like batch
        return out

    # -- snapshot protocol -------------------------------------------

    def snapshot(self) -> dict:
        """Capture the full cutter state, PCG64 position included.

        The jitter buffer is normalised to its unconsumed tail, so the
        state a restore produces re-snapshots identically.
        """
        return {
            "kind": "unit-cutter",
            "thread_id": self.thread_id,
            "total": self.total,
            "cum": [self._cum_i, self._cum_c, self._cum_l1, self._cum_llc],
            "prev": [self._prev_b, self._prev_c, self._prev_l1, self._prev_llc],
            "next_boundary": self._next_boundary,
            "first": self._first,
            "gap_sum": self._gap_sum,
            "point_int": self._point_int,
            "rng": None if self._rng is None else rng_state(self._rng),
            "counts": [
                [unit, sorted(bucket.items())]
                for unit, bucket in sorted(self._counts.items())
            ],
            "gap_buf": self._gap_buf[self._gap_pos :].copy(),
        }

    def restore(self, state: dict) -> None:
        """Rebuild from :meth:`snapshot` output (same thread and config)."""
        if state.get("kind") != "unit-cutter":
            raise ValueError(f"not a unit-cutter snapshot: {state.get('kind')!r}")
        if int(state["thread_id"]) != self.thread_id:
            raise ValueError(
                f"snapshot is for thread {state['thread_id']}, "
                f"cutter is thread {self.thread_id}"
            )
        self.total = int(state["total"])
        cum = state["cum"]
        self._cum_i = float(cum[0])
        self._cum_c = float(cum[1])
        self._cum_l1 = float(cum[2])
        self._cum_llc = float(cum[3])
        prev = state["prev"]
        self._prev_b = int(prev[0])
        self._prev_c = float(prev[1])
        self._prev_l1 = float(prev[2])
        self._prev_llc = float(prev[3])
        self._next_boundary = int(state["next_boundary"])
        self._first = int(state["first"])
        self._gap_sum = float(state["gap_sum"])
        self._point_int = int(state["point_int"])
        self._rng = None if state["rng"] is None else restore_rng(state["rng"])
        self._counts = {
            int(unit): {int(sid): int(cnt) for sid, cnt in bucket}
            for unit, bucket in state["counts"]
        }
        self._gap_buf = np.asarray(state["gap_buf"], dtype=np.float64).copy()
        self._gap_pos = 0


def _unit_state(unit: SamplingUnit) -> dict:
    return {
        "index": unit.index,
        "stack_ids": unit.stack_ids,
        "stack_counts": unit.stack_counts,
        "instructions": unit.instructions,
        "cycles": unit.cycles,
        "l1d_misses": unit.l1d_misses,
        "llc_misses": unit.llc_misses,
    }


def _unit_from_state(state: dict) -> SamplingUnit:
    return SamplingUnit(
        index=int(state["index"]),
        stack_ids=np.asarray(state["stack_ids"], dtype=np.int64),
        stack_counts=np.asarray(state["stack_counts"], dtype=np.int64),
        instructions=float(state["instructions"]),
        cycles=float(state["cycles"]),
        l1d_misses=float(state["l1d_misses"]),
        llc_misses=float(state["llc_misses"]),
    )


class ProfilerSession:
    """Push-mode streaming profiler: feed events, harvest units.

    Owns the per-thread :class:`_UnitCutter` fleet, the
    :class:`~repro.faults.stream.EventGuard` in front of them, and the
    stage/meta/totals bookkeeping (:class:`_StreamSink`).  Where
    :meth:`StreamingProfiler.units` pulls from a stream, a session is
    *fed* one event at a time — which is what makes the pipeline
    suspendable: between any two ``feed`` calls, :meth:`snapshot`
    captures the complete mutable state (sequence numbers, cutter
    carries, PCG64 positions, collected units) and :meth:`restore` on a
    fresh session resumes bit-identically.

    ``collect=True`` retains emitted units per thread so
    :meth:`result` can assemble a :class:`JobProfile` (the
    :meth:`StreamingProfiler.consume` mode); ``collect=False`` keeps
    the O(active-unit) memory guarantee for pure generators.
    """

    def __init__(
        self,
        config: ProfilerConfig,
        stream: TraceStream,
        *,
        sink: "_StreamSink | None" = None,
        collect: bool = False,
    ) -> None:
        # Local import: repro.faults.stream depends on repro.jvm.stream.
        from repro.faults.stream import EventGuard

        self.config = config
        self.stream = stream
        self.sink = sink if sink is not None else _StreamSink()
        self.collect = collect
        self.guard = EventGuard(stream)
        self.batches_fed = 0
        self._cutters: dict[int, _UnitCutter] = {}
        self._seen: set[int] = set()
        self._units: dict[int, list[SamplingUnit]] = {}
        self._finished = False

    # -- event pump --------------------------------------------------

    def feed(self, event: TraceEvent) -> list[tuple[int, SamplingUnit]]:
        """Feed one raw stream event; returns the units it completed."""
        if isinstance(event, SegmentBatch):
            self.batches_fed += 1
        emitted: list[tuple[int, SamplingUnit]] = []
        for guarded in self.guard.admit_event(event):
            self._route(guarded, emitted)
        return emitted

    def _route(
        self, event: TraceEvent, emitted: list[tuple[int, SamplingUnit]]
    ) -> None:
        if isinstance(event, SegmentBatch):
            cutter = self._cutters.get(event.thread_id)
            if cutter is None:
                if event.thread_id not in self._seen:
                    raise ValueError(
                        f"segment batch for unknown thread {event.thread_id} "
                        "(no ThreadStart seen)"
                    )
                return  # thread deliberately not cut
            tid = event.thread_id
            units = cutter.feed_array(event.data)
            if units:
                if self.collect:
                    self._units.setdefault(tid, []).extend(units)
                emitted.extend((tid, unit) for unit in units)
        elif isinstance(event, ThreadStart):
            self._seen.add(event.thread_id)
            only = self.config.thread_id
            if only is None or event.thread_id == only:
                self._cutters[event.thread_id] = _UnitCutter(
                    event.thread_id, self.config
                )
        elif isinstance(event, StageEvent):
            self.sink.stages.append(event.info)
        elif isinstance(event, JobEnd):
            self.sink.meta.update(event.meta)

    def finish(self) -> list[tuple[int, SamplingUnit]]:
        """End of stream: flush the guard and every cutter, seal the sink."""
        # Local import mirrors feed(): faults layers on top of jvm.
        from repro.faults.report import FaultReport

        if self._finished:
            return []
        self._finished = True
        emitted: list[tuple[int, SamplingUnit]] = []
        for guarded in self.guard.finish():
            self._route(guarded, emitted)
        for tid, cutter in self._cutters.items():
            units = cutter.flush()
            if units:
                if self.collect:
                    self._units.setdefault(tid, []).extend(units)
                emitted.extend((tid, unit) for unit in units)
            self.sink.totals[tid] = cutter.total
        self.sink.seen = self._seen
        FaultReport.merged_meta(self.sink.meta, self.guard.report)
        return emitted

    # -- result assembly ---------------------------------------------

    def result(self) -> JobProfile:
        """Assemble the :class:`JobProfile` (after :meth:`finish`).

        Thread selection matches the batch path: ``config.thread_id``
        if set (``KeyError`` when the stream never started it),
        otherwise the thread that retired the most instructions, first
        ThreadStart winning ties.
        """
        if not self._finished:
            raise ValueError("session is still streaming; call finish() first")
        cfg = self.config
        sink = self.sink
        if cfg.thread_id is not None:
            if cfg.thread_id not in sink.seen:
                raise KeyError(f"no thread {cfg.thread_id} in job trace")
            selected = cfg.thread_id
        else:
            if not sink.totals:
                raise ValueError("job trace has no threads")
            selected = None
            best = -1
            for tid, total in sink.totals.items():  # ThreadStart order
                if total > best:
                    best = total
                    selected = tid
        total = sink.totals.get(selected, 0)
        if total // cfg.unit_size == 0:
            raise ValueError(
                f"thread {selected} retired {total} instructions, "
                f"fewer than one sampling unit ({cfg.unit_size})"
            )
        stream = self.stream
        return JobProfile(
            workload=stream.workload,
            framework=stream.framework,
            input_name=stream.input_name,
            profile=ThreadProfile(
                thread_id=selected,
                unit_size=cfg.unit_size,
                snapshot_period=cfg.snapshot_period,
                units=self._units.get(selected, []),
            ),
            registry=stream.registry,
            stack_table=stream.stack_table,
            machine=stream.machine,
            stages=sink.stages,
            meta=sink.meta,
        )

    # -- snapshot protocol -------------------------------------------

    def snapshot(self) -> dict:
        """Capture the complete session state as a codec-safe dict."""
        return {
            "kind": "profiler-session",
            "collect": self.collect,
            "batches_fed": self.batches_fed,
            "seen": sorted(self._seen),
            # Insertion order is ThreadStart order — the busiest-thread
            # tie-break depends on it, so cutters ride as an ordered list.
            "cutters": [
                [tid, cutter.snapshot()] for tid, cutter in self._cutters.items()
            ],
            "guard": self.guard.snapshot(),
            "sink": self.sink.snapshot(),
            "units": [
                [tid, [_unit_state(unit) for unit in units]]
                for tid, units in self._units.items()
            ],
        }

    def restore(self, state: dict) -> None:
        """Rebuild session state; the stream binding stays fresh."""
        if state.get("kind") != "profiler-session":
            raise ValueError(
                f"not a profiler-session snapshot: {state.get('kind')!r}"
            )
        if bool(state["collect"]) != self.collect:
            raise ValueError("snapshot collect mode does not match session")
        self.batches_fed = int(state["batches_fed"])
        self._seen = {int(tid) for tid in state["seen"]}
        self._cutters = {}
        for tid, cutter_state in state["cutters"]:
            cutter = _UnitCutter(int(tid), self.config)
            cutter.restore(cutter_state)
            self._cutters[int(tid)] = cutter
        self.guard.restore(state["guard"])
        self.sink.restore(state["sink"])
        self._units = {
            int(tid): [_unit_from_state(u) for u in units]
            for tid, units in state["units"]
        }
        self._finished = False


class StreamingProfiler:
    """Incremental profiler over a :class:`~repro.jvm.stream.TraceStream`.

    Where :class:`SimProfProfiler` needs the whole trace in memory,
    this consumes segment events as they arrive — each thread carries a
    constant-size :class:`_UnitCutter` — and emits every completed
    sampling unit immediately.  The arithmetic replays the batch path
    operation for operation, so with the same :class:`ProfilerConfig`
    (seed included) the produced units are bit-identical.
    """

    def __init__(self, config: ProfilerConfig | None = None) -> None:
        self.config = config or ProfilerConfig()

    # -- live unit emission -------------------------------------------------

    def units(
        self,
        stream: TraceStream,
        *,
        sink: "_StreamSink | None" = None,
    ) -> Iterator[tuple[int, SamplingUnit]]:
        """Yield ``(thread_id, unit)`` pairs as units complete.

        When ``config.thread_id`` is set only that thread is cut (other
        threads' events are skipped, keeping memory constant); otherwise
        every thread is cut and the caller filters.  Pass a ``sink`` to
        additionally collect stage/meta/total bookkeeping (used by
        :meth:`consume`; plain callers can ignore it).

        Events are routed through the
        :class:`~repro.faults.stream.EventGuard`, which restores
        per-thread batch order, dedupes duplicates, and repairs or
        degrades on gaps/corruption; anomalies are appended to the
        sink's ``meta["fault_report"]``.  Clean streams pass through
        with identical output.
        """
        session = ProfilerSession(self.config, stream, sink=sink, collect=False)
        for event in stream:
            yield from session.feed(event)
        yield from session.finish()

    # -- batch-compatible consumption ---------------------------------------

    def consume(
        self,
        stream: TraceStream,
        *,
        meter: ThroughputMeter | None = None,
        checkpoint: "Any | None" = None,
    ) -> JobProfile:
        """Drive the stream to completion and build a :class:`JobProfile`.

        Thread selection matches the batch path: ``config.thread_id``
        if set (``KeyError`` when the stream never started it),
        otherwise the thread that retired the most instructions, first
        ThreadStart winning ties.  ``meter`` ticks once per emitted
        unit so streaming throughput lands in the instrumentation
        counters.

        ``checkpoint`` is an optional
        :class:`~repro.runtime.checkpoint.CheckpointPolicy`: the
        session state is persisted every ``policy.every`` batches, a
        prior checkpoint is resumed from when ``policy.resume`` is set,
        and the result is bit-identical to an uninterrupted run.  When
        it is ``None`` (the default) the consume loop below contains
        no checkpoint logic at all — the non-resumable path costs
        nothing extra.
        """
        session = ProfilerSession(self.config, stream, collect=True)
        if checkpoint is None:
            for event in stream:
                emitted = session.feed(event)
                if meter is not None and emitted:
                    meter.tick(len(emitted))
            emitted = session.finish()
            if meter is not None and emitted:
                meter.tick(len(emitted))
        else:
            # Local import: the checkpoint layer lives in runtime and
            # imports the store; pulling it in lazily keeps the plain
            # streaming path free of that dependency.
            from repro.runtime.checkpoint import drive_session

            drive_session(session, stream, checkpoint, meter=meter)
        return session.result()


class _StreamSink:
    """Side-channel bookkeeping collected while a stream is consumed."""

    __slots__ = ("stages", "meta", "totals", "seen")

    def __init__(self) -> None:
        self.stages: list[StageInfo] = []
        self.meta: dict[str, Any] = {}
        self.totals: dict[int, int] = {}
        self.seen: set[int] = set()

    # -- snapshot protocol -------------------------------------------

    def snapshot(self) -> dict:
        return {
            "kind": "stream-sink",
            "stages": [[s.stage_id, s.name, s.n_tasks] for s in self.stages],
            "meta": self.meta,
            "totals": [[tid, total] for tid, total in self.totals.items()],
            "seen": sorted(self.seen),
        }

    def restore(self, state: dict) -> None:
        if state.get("kind") != "stream-sink":
            raise ValueError(f"not a stream-sink snapshot: {state.get('kind')!r}")
        self.stages = [
            StageInfo(stage_id=int(sid), name=str(name), n_tasks=int(n))
            for sid, name, n in state["stages"]
        ]
        self.meta = dict(state["meta"])
        self.totals = {int(tid): int(total) for tid, total in state["totals"]}
        self.seen = {int(tid) for tid in state["seen"]}
