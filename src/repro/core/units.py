"""Sampling units and profiles — SimProf's unit of account.

A *sampling unit* is a fixed-size instruction interval of one executor
thread (100 M instructions by default).  The profiler summarises each
unit by (a) the call-stack snapshots taken inside it and (b) its
hardware-counter totals.  A :class:`ThreadProfile` is the unit sequence
of the profiled thread; a :class:`JobProfile` adds job identity and the
interning tables needed to interpret stack ids.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.jvm.job import StageInfo
from repro.jvm.machine import MachineConfig
from repro.jvm.methods import MethodRegistry, StackTable

__all__ = ["SamplingUnit", "ThreadProfile", "JobProfile"]


@dataclass(frozen=True, slots=True)
class SamplingUnit:
    """One fixed-size instruction interval of the profiled thread.

    ``stack_ids``/``stack_counts`` hold the distinct call stacks seen by
    the snapshot poller inside the unit and how often each was seen.
    """

    index: int
    stack_ids: np.ndarray
    stack_counts: np.ndarray
    instructions: float
    cycles: float
    l1d_misses: float
    llc_misses: float

    @property
    def cpi(self) -> float:
        """Cycles per instruction of the unit."""
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def ipc(self) -> float:
        """Instructions per cycle of the unit."""
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def n_snapshots(self) -> int:
        """Number of call-stack snapshots taken in the unit."""
        return int(self.stack_counts.sum())


@dataclass
class ThreadProfile:
    """The sampling-unit sequence of one profiled executor thread."""

    thread_id: int
    unit_size: int
    snapshot_period: int
    units: list[SamplingUnit]

    def __len__(self) -> int:
        return len(self.units)

    @property
    def n_units(self) -> int:
        """Total number of sampling units (the paper's N)."""
        return len(self.units)

    def cpi(self) -> np.ndarray:
        """Per-unit CPI vector."""
        return np.array([u.cpi for u in self.units], dtype=np.float64)

    def ipc(self) -> np.ndarray:
        """Per-unit IPC vector."""
        return np.array([u.ipc for u in self.units], dtype=np.float64)

    def cycles(self) -> np.ndarray:
        """Per-unit cycle totals."""
        return np.array([u.cycles for u in self.units], dtype=np.float64)

    def llc_mpki(self) -> np.ndarray:
        """Per-unit LLC misses per kilo-instruction."""
        return np.array(
            [1000.0 * u.llc_misses / u.instructions for u in self.units],
            dtype=np.float64,
        )

    def oracle_cpi(self) -> float:
        """The paper's oracle: the mean CPI over all sampling units."""
        if not self.units:
            raise ValueError("profile has no sampling units")
        return float(self.cpi().mean())


@dataclass
class JobProfile:
    """A thread profile plus the job context needed to interpret it."""

    workload: str
    framework: str
    input_name: str
    profile: ThreadProfile
    registry: MethodRegistry
    stack_table: StackTable
    machine: MachineConfig
    stages: list[StageInfo] = field(default_factory=list)
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def label(self) -> str:
        """Paper-style short label (``wc_sp``, ``cc_hp``, …)."""
        suffix = {"hadoop": "hp", "spark": "sp"}.get(self.framework, self.framework)
        return f"{self.workload}_{suffix}"

    @property
    def n_units(self) -> int:
        """Number of sampling units in the profiled thread."""
        return self.profile.n_units

    def oracle_cpi(self) -> float:
        """Mean CPI over all units (ground truth for sampling error)."""
        return self.profile.oracle_cpi()

    def content_digest(self) -> str:
        """Stable SHA-256 of everything featurization consumes.

        Covers the job identity, the profiler geometry, the registry
        and stack-table interning (in id order), and every unit's stack
        histogram and hardware counters — two profiles digest equally
        iff featurizing them yields identical matrices.  Used as the
        cache key for assembled feature matrices in the artifact store.
        Cached on the instance: a built profile is never mutated.
        """
        cached = self.__dict__.get("_content_digest")
        if cached is not None:
            return cached
        from repro.runtime.store import digest_arrays

        units = self.profile.units
        table = self.stack_table
        parts: list[Any] = [
            "job-profile",
            self.workload,
            self.framework,
            self.input_name,
            self.profile.thread_id,
            self.profile.unit_size,
            self.profile.snapshot_period,
            "\n".join(ref.fqn for ref in self.registry.all_refs()),
        ]
        frame_tuples = [table.frames_of(sid) for sid in range(len(table))]
        parts.append(
            np.array([len(f) for f in frame_tuples], dtype=np.int64)
        )
        parts.append(
            np.array(
                [mid for frames in frame_tuples for mid in frames],
                dtype=np.int64,
            )
        )
        parts.append(
            np.array(
                [
                    (u.index, u.instructions, u.cycles, u.l1d_misses, u.llc_misses)
                    for u in units
                ],
                dtype=np.float64,
            ).reshape(len(units), 5)
        )
        parts.append(np.array([len(u.stack_ids) for u in units], dtype=np.int64))
        if units:
            parts.append(
                np.concatenate(
                    [np.asarray(u.stack_ids, dtype=np.int64) for u in units]
                )
                if any(len(u.stack_ids) for u in units)
                else np.zeros(0, dtype=np.int64)
            )
            parts.append(
                np.concatenate(
                    [np.asarray(u.stack_counts, dtype=np.float64) for u in units]
                )
                if any(len(u.stack_counts) for u in units)
                else np.zeros(0, dtype=np.float64)
            )
        digest = digest_arrays(parts)
        self._content_digest = digest
        return digest
