"""Sampling units and profiles — SimProf's unit of account.

A *sampling unit* is a fixed-size instruction interval of one executor
thread (100 M instructions by default).  The profiler summarises each
unit by (a) the call-stack snapshots taken inside it and (b) its
hardware-counter totals.  A :class:`ThreadProfile` is the unit sequence
of the profiled thread; a :class:`JobProfile` adds job identity and the
interning tables needed to interpret stack ids.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.jvm.job import StageInfo
from repro.jvm.machine import MachineConfig
from repro.jvm.methods import MethodRegistry, StackTable

__all__ = ["SamplingUnit", "ThreadProfile", "JobProfile"]


@dataclass(frozen=True, slots=True)
class SamplingUnit:
    """One fixed-size instruction interval of the profiled thread.

    ``stack_ids``/``stack_counts`` hold the distinct call stacks seen by
    the snapshot poller inside the unit and how often each was seen.
    """

    index: int
    stack_ids: np.ndarray
    stack_counts: np.ndarray
    instructions: float
    cycles: float
    l1d_misses: float
    llc_misses: float

    @property
    def cpi(self) -> float:
        """Cycles per instruction of the unit."""
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def ipc(self) -> float:
        """Instructions per cycle of the unit."""
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def n_snapshots(self) -> int:
        """Number of call-stack snapshots taken in the unit."""
        return int(self.stack_counts.sum())


@dataclass
class ThreadProfile:
    """The sampling-unit sequence of one profiled executor thread."""

    thread_id: int
    unit_size: int
    snapshot_period: int
    units: list[SamplingUnit]

    def __len__(self) -> int:
        return len(self.units)

    @property
    def n_units(self) -> int:
        """Total number of sampling units (the paper's N)."""
        return len(self.units)

    def cpi(self) -> np.ndarray:
        """Per-unit CPI vector."""
        return np.array([u.cpi for u in self.units], dtype=np.float64)

    def ipc(self) -> np.ndarray:
        """Per-unit IPC vector."""
        return np.array([u.ipc for u in self.units], dtype=np.float64)

    def cycles(self) -> np.ndarray:
        """Per-unit cycle totals."""
        return np.array([u.cycles for u in self.units], dtype=np.float64)

    def llc_mpki(self) -> np.ndarray:
        """Per-unit LLC misses per kilo-instruction."""
        return np.array(
            [1000.0 * u.llc_misses / u.instructions for u in self.units],
            dtype=np.float64,
        )

    def oracle_cpi(self) -> float:
        """The paper's oracle: the mean CPI over all sampling units."""
        if not self.units:
            raise ValueError("profile has no sampling units")
        return float(self.cpi().mean())


@dataclass
class JobProfile:
    """A thread profile plus the job context needed to interpret it."""

    workload: str
    framework: str
    input_name: str
    profile: ThreadProfile
    registry: MethodRegistry
    stack_table: StackTable
    machine: MachineConfig
    stages: list[StageInfo] = field(default_factory=list)
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def label(self) -> str:
        """Paper-style short label (``wc_sp``, ``cc_hp``, …)."""
        suffix = {"hadoop": "hp", "spark": "sp"}.get(self.framework, self.framework)
        return f"{self.workload}_{suffix}"

    @property
    def n_units(self) -> int:
        """Number of sampling units in the profiled thread."""
        return self.profile.n_units

    def oracle_cpi(self) -> float:
        """Mean CPI over all units (ground truth for sampling error)."""
        return self.profile.oracle_cpi()
