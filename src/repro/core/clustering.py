"""k-means clustering and phase-count selection (Section III-B).

SimProf clusters the unit feature vectors with k-means, scores each
k ∈ [1, 20] with the silhouette coefficient, and picks the *smallest*
k whose score reaches 90 % of the best — favouring fewer phases when
the structure is flat (grep collapses to a single phase this way).

Implemented from scratch on NumPy: k-means++ seeding, Lloyd iterations
with vectorised distance computation, empty-cluster re-seeding to the
farthest point, and an exact silhouette.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "KMeansResult",
    "kmeans",
    "OnlineKMeans",
    "silhouette_score",
    "choose_k",
    "random_projection",
]


def random_projection(
    X: np.ndarray, dims: int = 15, seed: int = 0
) -> np.ndarray:
    """SimPoint-style random linear projection to ``dims`` dimensions.

    SimPoint projects its basic-block vectors to ~15 dimensions before
    clustering to keep k-means cheap on million-dimension inputs.  Our
    regression-selected space is already small, so this is offered as
    an ablation variant, not the default.  Entries are i.i.d. uniform
    on [-1, 1] as in the original; pairwise distances are preserved in
    expectation (Johnson–Lindenstrauss).
    """
    if dims <= 0:
        raise ValueError("dims must be positive")
    n_features = X.shape[1]
    if n_features <= dims:
        return X.copy()
    rng = np.random.default_rng(seed)
    P = rng.uniform(-1.0, 1.0, size=(n_features, dims))
    return X @ P / np.sqrt(dims)


@dataclass(frozen=True)
class KMeansResult:
    """Result of one k-means run."""

    centers: np.ndarray
    assignments: np.ndarray
    inertia: float

    @property
    def k(self) -> int:
        """Number of clusters."""
        return len(self.centers)

    def cluster_sizes(self) -> np.ndarray:
        """Units per cluster."""
        return np.bincount(self.assignments, minlength=self.k)


def _pairwise_sq_dists(X: np.ndarray, C: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances, ``(n, k)``."""
    # ||x||^2 + ||c||^2 - 2 x.c  (clipped: rounding can go barely negative)
    d = (
        (X**2).sum(axis=1)[:, None]
        + (C**2).sum(axis=1)[None, :]
        - 2.0 * X @ C.T
    )
    return np.maximum(d, 0.0)


def _kmeanspp_init(
    X: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding."""
    n = len(X)
    centers = np.empty((k, X.shape[1]), dtype=np.float64)
    centers[0] = X[rng.integers(0, n)]
    closest = _pairwise_sq_dists(X, centers[:1]).ravel()
    for j in range(1, k):
        total = closest.sum()
        if total <= 0:
            # All points coincide with an existing centre.
            centers[j:] = centers[0]
            return centers
        probs = closest / total
        idx = rng.choice(n, p=probs)
        centers[j] = X[idx]
        closest = np.minimum(closest, _pairwise_sq_dists(X, centers[j : j + 1]).ravel())
    return centers


def kmeans(
    X: np.ndarray,
    k: int,
    *,
    seed: int = 0,
    n_init: int = 4,
    max_iter: int = 100,
    tol: float = 1e-9,
) -> KMeansResult:
    """Lloyd's k-means with k-means++ seeding; best of ``n_init`` runs."""
    if k <= 0:
        raise ValueError("k must be positive")
    n = len(X)
    if n == 0:
        raise ValueError("cannot cluster zero points")
    k = min(k, n)
    rng = np.random.default_rng(seed)

    best: KMeansResult | None = None
    for _run in range(n_init):
        centers = _kmeanspp_init(X, k, rng)
        assignments = np.zeros(n, dtype=np.int64)
        prev_inertia = np.inf
        for _it in range(max_iter):
            dists = _pairwise_sq_dists(X, centers)
            assignments = dists.argmin(axis=1)
            inertia = float(dists[np.arange(n), assignments].sum())
            # Recompute centres; re-seed any emptied cluster on the
            # point farthest from its centre.
            for j in range(k):
                members = assignments == j
                if members.any():
                    centers[j] = X[members].mean(axis=0)
                else:
                    farthest = int(dists[np.arange(n), assignments].argmax())
                    centers[j] = X[farthest]
            if prev_inertia - inertia <= tol * max(prev_inertia, 1.0):
                break
            prev_inertia = inertia
        dists = _pairwise_sq_dists(X, centers)
        assignments = dists.argmin(axis=1)
        inertia = float(dists[np.arange(n), assignments].sum())
        if best is None or inertia < best.inertia:
            best = KMeansResult(centers.copy(), assignments, inertia)
    assert best is not None
    return best


class OnlineKMeans:
    """Incremental (mini-batch-style) k-means for streaming unit rows.

    Follows the web-scale mini-batch scheme: the first ``init_size``
    rows are buffered and seeded with k-means++, after which every row
    updates its nearest centre with a per-centre learning rate of
    ``1/count`` — the running mean of the rows assigned to it.  Unlike
    the batch :func:`kmeans` it never revisits old rows, so memory is
    O(k · features) regardless of stream length.  This powers the live
    (Pac-Sim-style) classification mode; the batch path remains the
    reference for bit-exact reproduction.
    """

    def __init__(self, k: int, *, seed: int = 0, init_size: int | None = None) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        self.k = k
        self._rng = np.random.default_rng(seed)
        self._init_size = init_size if init_size is not None else max(3 * k, 32)
        if self._init_size < 1:
            raise ValueError("init_size must be positive")
        self._buffer: list[np.ndarray] = []
        self._centers: np.ndarray | None = None
        self._counts: np.ndarray | None = None
        self._init_labels: np.ndarray | None = None
        self.n_seen = 0

    @property
    def ready(self) -> bool:
        """Whether centres exist (the warm-up buffer has been seeded)."""
        return self._centers is not None

    @property
    def centers(self) -> np.ndarray:
        """Current centres; seeds from the buffer if still warming up."""
        self._ensure_centers()
        assert self._centers is not None
        return self._centers

    def _initialize(self) -> None:
        X = np.vstack(self._buffer)
        k = min(self.k, len(X))
        self._centers = _kmeanspp_init(X, k, self._rng)
        self._counts = np.zeros(k, dtype=np.int64)
        labels = np.empty(len(X), dtype=np.int64)
        for i, x in enumerate(X):
            labels[i] = self._update(x)
        self._init_labels = labels
        self._buffer = []

    def _ensure_centers(self) -> None:
        if self._centers is not None:
            return
        if not self._buffer:
            raise ValueError("no data: the stream produced no rows")
        self._initialize()

    def _update(self, x: np.ndarray) -> int:
        assert self._centers is not None and self._counts is not None
        d = ((self._centers - x) ** 2).sum(axis=1)
        j = int(d.argmin())
        self._counts[j] += 1
        self._centers[j] += (x - self._centers[j]) / self._counts[j]
        self.n_seen += 1
        return j

    def learn_one(self, x: np.ndarray) -> int | None:
        """Fold one row in; returns its label, or ``None`` while warming up.

        The call that fills the warm-up buffer triggers seeding and
        still returns ``None`` — the labels of every buffered row
        (including that one) are then available once from
        :meth:`take_init_labels`, preserving stream order.
        """
        x = np.asarray(x, dtype=np.float64)
        if self._centers is None:
            self._buffer.append(x)
            if len(self._buffer) >= self._init_size:
                self._initialize()
            return None
        return self._update(x)

    def take_init_labels(self) -> np.ndarray | None:
        """Labels of the warm-up rows, once, right after seeding."""
        labels = self._init_labels
        self._init_labels = None
        return labels

    def partial_fit(self, X: np.ndarray) -> "OnlineKMeans":
        """Fold a batch of rows in (scikit-learn-style convenience)."""
        for x in np.asarray(X, dtype=np.float64):
            self.learn_one(x)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Nearest-centre labels for ``X`` (does not move the centres)."""
        self._ensure_centers()
        assert self._centers is not None
        return _pairwise_sq_dists(
            np.asarray(X, dtype=np.float64), self._centers
        ).argmin(axis=1)


def silhouette_score(
    X: np.ndarray, assignments: np.ndarray, *, max_points: int = 3000,
    seed: int = 0,
) -> float:
    """Mean silhouette coefficient of a clustering.

    Exact for up to ``max_points`` points; larger inputs are scored on a
    uniform subsample (distances to *all* points are still exact — only
    the averaged index set is subsampled).
    """
    n = len(X)
    labels = np.unique(assignments)
    if len(labels) < 2 or n < 3:
        return 0.0
    if n > max_points:
        rng = np.random.default_rng(seed)
        idx = np.sort(rng.choice(n, size=max_points, replace=False))
    else:
        idx = np.arange(n)

    sizes = {int(l): int((assignments == l).sum()) for l in labels}
    # Mean distance from each scored point to every cluster.
    mean_d = np.empty((len(idx), len(labels)))
    for j, lab in enumerate(labels):
        members = X[assignments == lab]
        d = np.sqrt(_pairwise_sq_dists(X[idx], members))
        mean_d[:, j] = d.mean(axis=1)

    label_pos = {int(l): j for j, l in enumerate(labels)}
    s = np.zeros(len(idx))
    for i, point in enumerate(idx):
        own = int(assignments[point])
        j_own = label_pos[own]
        size_own = sizes[own]
        if size_own <= 1:
            s[i] = 0.0
            continue
        # Within-cluster mean excludes the point itself.
        a = mean_d[i, j_own] * size_own / (size_own - 1)
        b = np.min(np.delete(mean_d[i], j_own))
        denom = max(a, b)
        s[i] = 0.0 if denom == 0 else (b - a) / denom
    return float(s.mean())


def choose_k(
    X: np.ndarray,
    *,
    k_max: int = 20,
    score_threshold: float = 0.9,
    min_structure: float = 0.40,
    seed: int = 0,
) -> tuple[int, dict[int, float]]:
    """Pick the number of phases (paper rule).

    Scores each k in [2, k_max] with the silhouette coefficient and
    returns the smallest k whose score is at least ``score_threshold``
    of the best.  If even the best silhouette is below
    ``min_structure`` — set above the ~0.35 a k-means split of one
    isotropic blob scores, so "no real cluster structure" — the run is
    a single phase (k = 1), which is how a uniform workload like grep
    ends up with one phase in Figure 9.

    Returns ``(k, scores_by_k)``.
    """
    n = len(X)
    if n < 3 or np.allclose(X, X[0]):
        return 1, {1: 0.0}
    scores: dict[int, float] = {}
    k_cap = min(k_max, n - 1)
    for k in range(2, k_cap + 1):
        result = kmeans(X, k, seed=seed)
        if len(np.unique(result.assignments)) < 2:
            scores[k] = 0.0
            continue
        scores[k] = silhouette_score(X, result.assignments, seed=seed)
    if not scores:
        return 1, {1: 0.0}
    best = max(scores.values())
    if best < min_structure:
        return 1, scores
    cutoff = score_threshold * best
    for k in sorted(scores):
        if scores[k] >= cutoff:
            return k, scores
    return max(scores, key=scores.get), scores  # pragma: no cover
