"""k-means clustering and phase-count selection (Section III-B).

SimProf clusters the unit feature vectors with k-means, scores each
k ∈ [1, 20] with the silhouette coefficient, and picks the *smallest*
k whose score reaches 90 % of the best — favouring fewer phases when
the structure is flat (grep collapses to a single phase this way).

Implemented from scratch on NumPy: k-means++ seeding, Lloyd iterations
with vectorised distance computation (squared row norms computed once
per fit and shared across restarts and iterations), empty-cluster
re-seeding to the farthest point, and a fixed-point early stop when no
centre moves between iterations.

The silhouette is computed from a :class:`SilhouetteDistances`
structure: the point-to-point distance matrix is assembled **once** per
feature matrix and shared across every silhouette evaluation of the
k-sweep, instead of being recomputed for each candidate k.  Scoring is
exact for up to ``max_points`` points; larger inputs use a seeded,
deterministic subsampled estimator — the silhouette is averaged over a
uniform without-replacement subsample of ``max_points`` scored points,
while each scored point's per-cluster mean distances remain exact over
*all* points.  Under a fixed seed the estimator is bit-stable: the
subsample indices, the distance matrix, and every derived score are
byte-identical across runs, and the serial and parallel k-sweeps
produce byte-identical ``(k, scores)`` results.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "KMeansResult",
    "kmeans",
    "OnlineKMeans",
    "SilhouetteDistances",
    "silhouette_score",
    "pick_k",
    "sweep_k",
    "select_phases",
    "choose_k",
    "random_projection",
]


def random_projection(
    X: np.ndarray, dims: int = 15, seed: int = 0
) -> np.ndarray:
    """SimPoint-style random linear projection to ``dims`` dimensions.

    SimPoint projects its basic-block vectors to ~15 dimensions before
    clustering to keep k-means cheap on million-dimension inputs.  Our
    regression-selected space is already small, so this is offered as
    an ablation variant, not the default.  Entries are i.i.d. uniform
    on [-1, 1] as in the original; pairwise distances are preserved in
    expectation (Johnson–Lindenstrauss).
    """
    if dims <= 0:
        raise ValueError("dims must be positive")
    n_features = X.shape[1]
    if n_features <= dims:
        return X.copy()
    rng = np.random.default_rng(seed)
    P = rng.uniform(-1.0, 1.0, size=(n_features, dims))
    return X @ P / np.sqrt(dims)


@dataclass(frozen=True)
class KMeansResult:
    """Result of one k-means run."""

    centers: np.ndarray
    assignments: np.ndarray
    inertia: float

    @property
    def k(self) -> int:
        """Number of clusters."""
        return len(self.centers)

    def cluster_sizes(self) -> np.ndarray:
        """Units per cluster."""
        return np.bincount(self.assignments, minlength=self.k)


def _pairwise_sq_dists(
    X: np.ndarray,
    C: np.ndarray,
    *,
    x_sq: np.ndarray | None = None,
    c_sq: np.ndarray | None = None,
) -> np.ndarray:
    """Squared Euclidean distances, ``(n, k)``.

    ``x_sq``/``c_sq`` accept precomputed squared row norms so callers
    that evaluate many distance blocks against the same points (the
    k-means restarts, the silhouette builder) pay for them once.

    Accumulated in place on the GEMM output: the fused
    ``x_sq[:, None] + c_sq[None, :] - 2 X Cᵀ`` expression materialises
    two extra ``(n, k)`` temporaries, which at silhouette-builder shape
    (3000 × 10⁵) is gigabytes of fresh pages and dominated the build
    wall-clock by ~40x.  The in-place order is deterministic — the same
    inputs always give byte-identical output — but its *rounding* order
    differs from the fused expression, so results agree with a fused
    reformulation to ``allclose``, not bitwise.
    """
    # ||x||^2 + ||c||^2 - 2 x.c  (clipped: rounding can go barely negative)
    if x_sq is None:
        x_sq = (X**2).sum(axis=1)
    if c_sq is None:
        c_sq = (C**2).sum(axis=1)
    d = X @ C.T
    d *= -2.0
    d += x_sq[:, None]
    d += c_sq[None, :]
    return np.maximum(d, 0.0, out=d)


def _kmeanspp_init(
    X: np.ndarray,
    k: int,
    rng: np.random.Generator,
    *,
    x_sq: np.ndarray | None = None,
) -> np.ndarray:
    """k-means++ seeding (row norms shared across candidate draws)."""
    n = len(X)
    if x_sq is None:
        x_sq = (X**2).sum(axis=1)
    centers = np.empty((k, X.shape[1]), dtype=np.float64)
    centers[0] = X[rng.integers(0, n)]
    closest = _pairwise_sq_dists(X, centers[:1], x_sq=x_sq).ravel()
    for j in range(1, k):
        total = closest.sum()
        if total <= 0:
            # All points coincide with an existing centre.
            centers[j:] = centers[0]
            return centers
        probs = closest / total
        idx = rng.choice(n, p=probs)
        centers[j] = X[idx]
        closest = np.minimum(
            closest,
            _pairwise_sq_dists(X, centers[j : j + 1], x_sq=x_sq).ravel(),
        )
    return centers


def kmeans(
    X: np.ndarray,
    k: int,
    *,
    seed: int = 0,
    n_init: int = 4,
    max_iter: int = 100,
    tol: float = 1e-9,
) -> KMeansResult:
    """Lloyd's k-means with k-means++ seeding; best of ``n_init`` runs.

    The squared row norms of ``X`` are computed once and reused by
    every seeding pass and Lloyd iteration of every restart.  Lloyd
    iterations stop early both on relative inertia improvement
    (``tol``) and at the exact fixed point — when no centre moved at
    all, the next iteration would reproduce the same assignments and
    inertia, so breaking immediately is bit-identical to continuing.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    n = len(X)
    if n == 0:
        raise ValueError("cannot cluster zero points")
    k = min(k, n)
    rng = np.random.default_rng(seed)
    x_sq = (X**2).sum(axis=1)

    best: KMeansResult | None = None
    for _run in range(n_init):
        centers = _kmeanspp_init(X, k, rng, x_sq=x_sq)
        assignments = np.zeros(n, dtype=np.int64)
        prev_inertia = np.inf
        for _it in range(max_iter):
            dists = _pairwise_sq_dists(X, centers, x_sq=x_sq)
            assignments = dists.argmin(axis=1)
            inertia = float(dists[np.arange(n), assignments].sum())
            # Recompute centres; re-seed any emptied cluster on the
            # point farthest from its centre.
            prev_centers = centers.copy()
            for j in range(k):
                members = assignments == j
                if members.any():
                    centers[j] = X[members].mean(axis=0)
                else:
                    farthest = int(dists[np.arange(n), assignments].argmax())
                    centers[j] = X[farthest]
            if prev_inertia - inertia <= tol * max(prev_inertia, 1.0):
                break
            if np.array_equal(centers, prev_centers):
                # Exact fixed point: a further iteration would recompute
                # identical distances and break on the inertia test.
                break
            prev_inertia = inertia
        dists = _pairwise_sq_dists(X, centers, x_sq=x_sq)
        assignments = dists.argmin(axis=1)
        inertia = float(dists[np.arange(n), assignments].sum())
        if best is None or inertia < best.inertia:
            best = KMeansResult(centers.copy(), assignments, inertia)
    assert best is not None
    return best


class OnlineKMeans:
    """Incremental (mini-batch-style) k-means for streaming unit rows.

    Follows the web-scale mini-batch scheme: the first ``init_size``
    rows are buffered and seeded with k-means++, after which every row
    updates its nearest centre with a per-centre learning rate of
    ``1/count`` — the running mean of the rows assigned to it.  Unlike
    the batch :func:`kmeans` it never revisits old rows, so memory is
    O(k · features) regardless of stream length.  This powers the live
    (Pac-Sim-style) classification mode; the batch path remains the
    reference for bit-exact reproduction.
    """

    def __init__(self, k: int, *, seed: int = 0, init_size: int | None = None) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        self.k = k
        self._rng = np.random.default_rng(seed)
        self._init_size = init_size if init_size is not None else max(3 * k, 32)
        if self._init_size < 1:
            raise ValueError("init_size must be positive")
        self._buffer: list[np.ndarray] = []
        self._centers: np.ndarray | None = None
        self._counts: np.ndarray | None = None
        self._init_labels: np.ndarray | None = None
        self.n_seen = 0

    @property
    def ready(self) -> bool:
        """Whether centres exist (the warm-up buffer has been seeded)."""
        return self._centers is not None

    @property
    def centers(self) -> np.ndarray:
        """Current centres; seeds from the buffer if still warming up."""
        self._ensure_centers()
        assert self._centers is not None
        return self._centers

    def _initialize(self) -> None:
        X = np.vstack(self._buffer)
        k = min(self.k, len(X))
        self._centers = _kmeanspp_init(X, k, self._rng)
        self._counts = np.zeros(k, dtype=np.int64)
        labels = np.empty(len(X), dtype=np.int64)
        for i, x in enumerate(X):
            labels[i] = self._update(x)
        self._init_labels = labels
        self._buffer = []

    def _ensure_centers(self) -> None:
        if self._centers is not None:
            return
        if not self._buffer:
            raise ValueError("no data: the stream produced no rows")
        self._initialize()

    def _update(self, x: np.ndarray) -> int:
        assert self._centers is not None and self._counts is not None
        d = ((self._centers - x) ** 2).sum(axis=1)
        j = int(d.argmin())
        self._counts[j] += 1
        self._centers[j] += (x - self._centers[j]) / self._counts[j]
        self.n_seen += 1
        return j

    def learn_one(self, x: np.ndarray) -> int | None:
        """Fold one row in; returns its label, or ``None`` while warming up.

        The call that fills the warm-up buffer triggers seeding and
        still returns ``None`` — the labels of every buffered row
        (including that one) are then available once from
        :meth:`take_init_labels`, preserving stream order.
        """
        x = np.asarray(x, dtype=np.float64)
        if self._centers is None:
            self._buffer.append(x)
            if len(self._buffer) >= self._init_size:
                self._initialize()
            return None
        return self._update(x)

    def take_init_labels(self) -> np.ndarray | None:
        """Labels of the warm-up rows, once, right after seeding."""
        labels = self._init_labels
        self._init_labels = None
        return labels

    def partial_fit(self, X: np.ndarray) -> "OnlineKMeans":
        """Fold a batch of rows in (scikit-learn-style convenience)."""
        for x in np.asarray(X, dtype=np.float64):
            self.learn_one(x)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Nearest-centre labels for ``X`` (does not move the centres)."""
        self._ensure_centers()
        assert self._centers is not None
        return _pairwise_sq_dists(
            np.asarray(X, dtype=np.float64), self._centers
        ).argmin(axis=1)

    # -- snapshot protocol -------------------------------------------

    def snapshot(self) -> dict:
        """Capture centres, counts, warm-up buffer and RNG position."""
        from repro.runtime.snapshot import rng_state

        return {
            "kind": "online-kmeans",
            "k": self.k,
            "init_size": self._init_size,
            "n_seen": self.n_seen,
            "rng": rng_state(self._rng),
            "buffer": list(self._buffer),
            "centers": self._centers,
            "counts": self._counts,
            "init_labels": self._init_labels,
        }

    def restore(self, state: dict) -> None:
        """Rebuild from :meth:`snapshot` output (same ``k``/``init_size``)."""
        from repro.runtime.snapshot import restore_rng

        if state.get("kind") != "online-kmeans":
            raise ValueError(f"not an online-kmeans snapshot: {state.get('kind')!r}")
        if int(state["k"]) != self.k or int(state["init_size"]) != self._init_size:
            raise ValueError(
                "snapshot configuration (k/init_size) does not match instance"
            )
        self.n_seen = int(state["n_seen"])
        self._rng = restore_rng(state["rng"])
        self._buffer = [
            np.asarray(row, dtype=np.float64) for row in state["buffer"]
        ]
        centers = state["centers"]
        self._centers = None if centers is None else np.asarray(centers, np.float64)
        counts = state["counts"]
        self._counts = None if counts is None else np.asarray(counts, np.int64)
        labels = state["init_labels"]
        self._init_labels = None if labels is None else np.asarray(labels, np.int64)


@dataclass(frozen=True)
class SilhouetteDistances:
    """Shared distance structure for silhouette scoring.

    Holds the (sub)sampled-rows-to-all-points distance matrix that
    every silhouette evaluation over the same feature matrix consumes,
    so a k-sweep assembles it once instead of once per candidate k.

    ``idx`` are the *scored* point indices: all of them when
    ``n <= max_points`` (the exact silhouette), else a seeded uniform
    without-replacement subsample of ``max_points`` indices, sorted.
    ``dist[i, j]`` is the exact Euclidean distance from scored point
    ``idx[i]`` to point ``j`` — per-cluster mean distances stay exact
    even in the subsampled estimator; only the set of points whose
    silhouette values are averaged is subsampled.  Everything here is a
    pure function of ``(X, max_points, seed)``, so two builds (e.g. in
    different sweep worker processes) are byte-identical.
    """

    idx: np.ndarray
    dist: np.ndarray
    n: int
    exact: bool

    @classmethod
    def build(
        cls, X: np.ndarray, *, max_points: int = 3000, seed: int = 0
    ) -> "SilhouetteDistances":
        """Assemble the structure for ``X`` (one distance computation)."""
        n = len(X)
        if n > max_points:
            rng = np.random.default_rng(seed)
            idx = np.sort(rng.choice(n, size=max_points, replace=False))
            exact = False
        else:
            idx = np.arange(n)
            exact = True
        x_sq = (X**2).sum(axis=1)
        dist = _pairwise_sq_dists(X[idx], X, x_sq=x_sq[idx], c_sq=x_sq)
        np.sqrt(dist, out=dist)
        return cls(idx=idx, dist=dist, n=n, exact=exact)

    def score(self, assignments: np.ndarray) -> float:
        """Mean silhouette of a clustering over the scored points.

        Fully vectorised: the per-cluster mean distances fall out of one
        GEMM against the one-hot membership matrix, so a score costs
        O(m·n·k) BLAS flops instead of k strided column gathers.  A pure
        function of ``(self, assignments)`` — repeated evaluations (and
        hence the serial and parallel sweeps) are byte-identical; only
        the summation *order* differs from a per-point loop, so loop
        reformulations agree to ``allclose`` rather than bitwise.
        """
        assignments = np.asarray(assignments)
        if len(assignments) != self.n:
            raise ValueError("assignments disagree with the distance structure")
        labels, inv = np.unique(assignments, return_inverse=True)
        if len(labels) < 2 or self.n < 3:
            return 0.0
        sizes = np.bincount(inv, minlength=len(labels))
        m = len(self.idx)
        # Mean distance from each scored point to every cluster.
        onehot = np.zeros((self.n, len(labels)))
        onehot[np.arange(self.n), inv] = 1.0
        mean_d = (self.dist @ onehot) / sizes

        rows = np.arange(m)
        own = inv[self.idx]
        size_own = sizes[own]
        scored = size_own > 1
        # Within-cluster mean excludes the point itself.
        a = np.zeros(m)
        np.divide(
            mean_d[rows, own] * size_own,
            size_own - 1,
            out=a,
            where=scored,
        )
        masked = mean_d.copy()
        masked[rows, own] = np.inf
        b = masked.min(axis=1)
        denom = np.maximum(a, b)
        s = np.zeros(m)
        np.divide(b - a, denom, out=s, where=scored & (denom != 0))
        return float(s.mean())


def silhouette_score(
    X: np.ndarray,
    assignments: np.ndarray,
    *,
    max_points: int = 3000,
    seed: int = 0,
    distances: SilhouetteDistances | None = None,
) -> float:
    """Mean silhouette coefficient of a clustering.

    Exact for up to ``max_points`` points; larger inputs are scored on
    a seeded uniform subsample (distances to *all* points are still
    exact — only the averaged index set is subsampled).  ``seed`` only
    affects the subsample selection; the exact path never draws from
    it.  Pass a prebuilt :class:`SilhouetteDistances` (which already
    fixed the index set) to share the distance computation across many
    evaluations — ``max_points``/``seed`` are then ignored.
    """
    if distances is None:
        distances = SilhouetteDistances.build(
            X, max_points=max_points, seed=seed
        )
    return distances.score(assignments)


def pick_k(
    scores: dict[int, float],
    *,
    score_threshold: float = 0.9,
    min_structure: float = 0.40,
) -> int:
    """The paper's phase-count decision rule over a silhouette table.

    Returns the smallest k whose score reaches ``score_threshold`` of
    the best; 1 when even the best score is below ``min_structure`` (no
    real cluster structure).  When no k clears the cutoff — possible
    with a threshold above 1, or all-negative scores under a permissive
    ``min_structure`` — the tie-break is explicit: the *smallest* k
    among those achieving the best score, independent of dict order.
    """
    if not scores:
        return 1
    best = max(scores.values())
    if best < min_structure:
        return 1
    cutoff = score_threshold * best
    qualifying = [k for k in sorted(scores) if scores[k] >= cutoff]
    if qualifying:
        return qualifying[0]
    return min(k for k, v in scores.items() if v == best)


def _evaluate_k(
    X: np.ndarray,
    k: int,
    *,
    seed: int,
    distances: SilhouetteDistances,
) -> tuple[float, KMeansResult]:
    """Fit one candidate k and silhouette-score it (shared distances)."""
    result = kmeans(X, k, seed=seed)
    if len(np.unique(result.assignments)) < 2:
        return 0.0, result
    return distances.score(result.assignments), result


# Per-process context for parallel sweep workers: (X, distances).  Set
# by the pool initializer; each worker builds the (deterministic)
# distance structure once and reuses it for every k it evaluates.
_SWEEP_STATE: tuple[np.ndarray, SilhouetteDistances] | None = None


def _sweep_init(X: np.ndarray, max_points: int, seed: int) -> None:
    global _SWEEP_STATE
    X = np.asarray(X, dtype=np.float64)
    _SWEEP_STATE = (
        X,
        SilhouetteDistances.build(X, max_points=max_points, seed=seed),
    )


def _sweep_task(args: tuple[int, int]) -> tuple[int, float, KMeansResult]:
    k, seed = args
    assert _SWEEP_STATE is not None, "sweep worker used before initialisation"
    X, distances = _SWEEP_STATE
    score, result = _evaluate_k(X, k, seed=seed, distances=distances)
    return k, score, result


def sweep_k(
    X: np.ndarray,
    *,
    k_max: int = 20,
    seed: int = 0,
    max_points: int = 3000,
    jobs: int | None = None,
) -> tuple[dict[int, float], dict[int, KMeansResult]]:
    """Silhouette-score every k in [2, min(k_max, n-1)].

    Returns ``(scores_by_k, results_by_k)``.  The pairwise-distance
    structure is built once and shared across all evaluations.  With
    ``jobs > 1`` (default: the ``SIMPROF_JOBS`` environment variable,
    via the :mod:`repro.runtime.runner` machinery) the candidate ks are
    evaluated concurrently in worker processes; every worker
    deterministically rebuilds the identical distance structure, so the
    parallel sweep is byte-identical to the serial one.
    """
    from repro.runtime.runner import map_tasks, resolve_jobs

    n = len(X)
    ks = list(range(2, min(k_max, n - 1) + 1))
    scores: dict[int, float] = {}
    results: dict[int, KMeansResult] = {}
    if not ks:
        return scores, results
    jobs = resolve_jobs(jobs)
    if jobs > 1 and len(ks) > 1:
        out = map_tasks(
            _sweep_task,
            [(k, seed) for k in ks],
            jobs=jobs,
            initializer=_sweep_init,
            initargs=(X, max_points, seed),
        )
        for k, score, result in out:
            scores[k] = score
            results[k] = result
        # map_tasks preserves input order, but make the ascending-k
        # iteration order of the dicts an explicit invariant.
        scores = {k: scores[k] for k in ks}
        results = {k: results[k] for k in ks}
        return scores, results
    distances = SilhouetteDistances.build(X, max_points=max_points, seed=seed)
    for k in ks:
        scores[k], results[k] = _evaluate_k(
            X, k, seed=seed, distances=distances
        )
    return scores, results


def select_phases(
    X: np.ndarray,
    *,
    k_max: int = 20,
    score_threshold: float = 0.9,
    min_structure: float = 0.40,
    seed: int = 0,
    max_points: int = 3000,
    jobs: int | None = None,
) -> tuple[int, dict[int, float], KMeansResult | None]:
    """Pick the phase count *and* return the chosen k's fitted clustering.

    The sweep already ran k-means for every candidate k, so callers
    (:meth:`repro.core.phases.PhaseModel.fit`) reuse the winning
    :class:`KMeansResult` instead of fitting again.  Returns
    ``(k, scores_by_k, result)``; ``result`` is None when k = 1 (no
    clustering was selected).
    """
    n = len(X)
    if n < 3 or np.allclose(X, X[0]):
        return 1, {1: 0.0}, None
    scores, results = sweep_k(
        X, k_max=k_max, seed=seed, max_points=max_points, jobs=jobs
    )
    if not scores:
        return 1, {1: 0.0}, None
    k = pick_k(
        scores, score_threshold=score_threshold, min_structure=min_structure
    )
    if k == 1:
        return 1, scores, None
    return k, scores, results[k]


def choose_k(
    X: np.ndarray,
    *,
    k_max: int = 20,
    score_threshold: float = 0.9,
    min_structure: float = 0.40,
    seed: int = 0,
    max_points: int = 3000,
    jobs: int | None = None,
) -> tuple[int, dict[int, float]]:
    """Pick the number of phases (paper rule).

    Scores each k in [2, k_max] with the silhouette coefficient and
    returns the smallest k whose score is at least ``score_threshold``
    of the best.  If even the best silhouette is below
    ``min_structure`` — set above the ~0.35 a k-means split of one
    isotropic blob scores, so "no real cluster structure" — the run is
    a single phase (k = 1), which is how a uniform workload like grep
    ends up with one phase in Figure 9.

    Returns ``(k, scores_by_k)``.
    """
    k, scores, _result = select_phases(
        X,
        k_max=k_max,
        score_threshold=score_threshold,
        min_structure=min_structure,
        seed=seed,
        max_points=max_points,
        jobs=jobs,
    )
    return k, scores
