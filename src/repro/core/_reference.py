"""Pre-fast-path reference implementations of the core hot paths.

These are the straightforward per-loop versions the optimised code in
:mod:`repro.core.clustering`, :mod:`repro.core.features`, and
:mod:`repro.core.profiler` replaced: a per-stack scatter-add
featurizer, a per-cluster-loop silhouette that recomputes its distance
block for every evaluation, a Lloyd loop with no fixed-point early
exit, a serial k-sweep that refits k-means for the chosen k, and the
per-segment streaming unit cutter.  They are kept for two reasons:

* **parity** — the property tests assert the fast path produces
  bit-identical feature matrices and phase selections (and
  ``allclose``-equal silhouette scores, whose summation order changed);
* **benchmarking** — ``benchmarks/bench_phase_perf.py`` times fast vs
  reference on identical inputs to report the speedup.

Nothing here is exported from :mod:`repro.core`; production code must
not import this module.
"""

from __future__ import annotations

import numpy as np

from repro.core.clustering import KMeansResult, _kmeanspp_init, _pairwise_sq_dists
from repro.core.profiler import ProfilerConfig
from repro.core.units import JobProfile, SamplingUnit
from repro.jvm.threads import TraceSegment

__all__ = [
    "reference_build_feature_matrix",
    "reference_silhouette_score",
    "reference_kmeans",
    "reference_choose_k",
    "ReferenceUnitCutter",
]


class ReferenceUnitCutter:
    """The pre-columnar per-segment unit cutter (the parity oracle).

    The scalar incremental cutter the columnar
    :class:`repro.core.profiler._UnitCutter` replaced, preserved
    verbatim: one :meth:`feed` call per :class:`TraceSegment` object,
    running float64 ``+=`` counters, one lazy RNG draw per poll gap,
    and per-boundary two-point ``np.interp`` calls.  The columnar
    parity suite feeds both cutters identical streams and asserts
    bit-identical units.
    """

    __slots__ = (
        "thread_id",
        "_cfg",
        "total",
        "_cum_i",
        "_cum_c",
        "_cum_l1",
        "_cum_llc",
        "_prev_b",
        "_prev_c",
        "_prev_l1",
        "_prev_llc",
        "_next_boundary",
        "_rng",
        "_first",
        "_gap_sum",
        "_point_int",
        "_counts",
    )

    def __init__(self, thread_id: int, cfg: ProfilerConfig) -> None:
        self.thread_id = thread_id
        self._cfg = cfg
        self.total = 0  # integer instruction counter (the JVMTI clock)
        self._cum_i = 0.0  # float64 cumulative counters (the perf columns)
        self._cum_c = 0.0
        self._cum_l1 = 0.0
        self._cum_llc = 0.0
        # Counter values interpolated at the last processed boundary.
        self._prev_b = 0
        self._prev_c = 0.0
        self._prev_l1 = 0.0
        self._prev_llc = 0.0
        # Boundary 0 goes through the same deferred machinery so a
        # zero-instruction prefix folds into its left endpoint exactly
        # as np.interp's last-duplicate rule would have it.
        self._next_boundary = 0
        # Poll timer state, mirroring StackSnapshotter._poll_points.
        self._first = cfg.snapshot_period
        if cfg.snapshot_jitter == 0.0:
            self._rng = None
            self._gap_sum = 0.0
        else:
            self._rng = np.random.default_rng(
                np.random.SeedSequence([cfg.seed, thread_id & 0x7FFFFFFF])
            )
            self._gap_sum = 0.0
        self._point_int = self._first
        # unit index -> {stack_id: count}; only units whose closing
        # boundary has not streamed past yet are resident.
        self._counts: dict[int, dict[int, int]] = {}

    def _advance_point(self) -> None:
        if self._rng is None:
            self._point_int += self._cfg.snapshot_period
            return
        cfg = self._cfg
        # One lazy draw per gap: scalar uniform() calls consume the
        # PCG64 stream exactly like the batch path's single
        # uniform(size=n) array draw, element for element.
        gap = cfg.snapshot_period * self._rng.uniform(
            1.0 - cfg.snapshot_jitter, 1.0 + cfg.snapshot_jitter
        )
        self._gap_sum += gap
        self._point_int = int(float(self._first) + self._gap_sum)

    def _emit_unit(
        self, b: int, c_b: float, l1_b: float, llc_b: float
    ) -> SamplingUnit:
        unit_size = self._cfg.unit_size
        index = b // unit_size - 1
        counts = self._counts.pop(index, None)
        if counts:
            items = sorted(counts.items())
            ids = np.array([k for k, _ in items], dtype=np.int64)
            cnt = np.array([v for _, v in items], dtype=np.int64)
        else:
            ids = np.array([], dtype=np.int64)
            cnt = np.array([], dtype=np.int64)
        unit = SamplingUnit(
            index=index,
            stack_ids=ids,
            stack_counts=cnt,
            instructions=float(b) - float(self._prev_b),
            cycles=c_b - self._prev_c,
            l1d_misses=l1_b - self._prev_l1,
            llc_misses=llc_b - self._prev_llc,
        )
        self._prev_b = b
        self._prev_c = c_b
        self._prev_l1 = l1_b
        self._prev_llc = llc_b
        self._next_boundary = b + unit_size
        return unit

    def feed(self, seg: TraceSegment) -> list[SamplingUnit]:
        """Account one segment; return any units it completed."""
        cfg = self._cfg
        x0 = self._cum_i
        c0 = self._cum_c
        l10 = self._cum_l1
        llc0 = self._cum_llc
        self._cum_i += float(seg.instructions)
        self._cum_c += float(seg.cycles)
        self._cum_l1 += float(seg.l1d_misses)
        self._cum_llc += float(seg.llc_misses)
        total_new = self.total + seg.instructions
        self.total = total_new

        # Snapshots landing in this segment: consume-when-passed.
        point = self._point_int
        if point < total_new:
            stack_id = seg.stack_id
            unit_size = cfg.unit_size
            while point < total_new:
                bucket = self._counts.setdefault(point // unit_size, {})
                bucket[stack_id] = bucket.get(stack_id, 0) + 1
                self._advance_point()
                point = self._point_int

        if total_new <= self._next_boundary:
            return []
        # Unit boundaries this segment streamed past.  np.interp over
        # the segment's own two-point window matches the global call.
        x1 = self._cum_i
        out: list[SamplingUnit] = []
        while total_new > self._next_boundary:
            b = self._next_boundary
            fb = float(b)
            xw = (x0, x1)
            c_b = float(np.interp(fb, xw, (c0, self._cum_c)))
            l1_b = float(np.interp(fb, xw, (l10, self._cum_l1)))
            llc_b = float(np.interp(fb, xw, (llc0, self._cum_llc)))
            if b == 0:
                # Boundary 0 opens the first unit; it emits nothing.
                self._prev_c = c_b
                self._prev_l1 = l1_b
                self._prev_llc = llc_b
                self._next_boundary = cfg.unit_size
            else:
                out.append(self._emit_unit(b, c_b, l1_b, llc_b))
        return out

    def flush(self) -> list[SamplingUnit]:
        """Emit a boundary sitting exactly on the final total, if any."""
        out: list[SamplingUnit] = []
        if self.total > 0 and self._next_boundary == self.total:
            # Exact-multiple trace: global interpolation at the last
            # abscissa returns the final cumulative values.
            out.append(
                self._emit_unit(
                    self._next_boundary, self._cum_c, self._cum_l1, self._cum_llc
                )
            )
        self._counts.clear()  # trailing partial unit, dropped like batch
        return out


def reference_build_feature_matrix(
    job: JobProfile, *, normalize: bool = True
) -> np.ndarray:
    """Per-unit, per-stack loop featurizer (the pre-fast-path version)."""
    n_methods = len(job.registry)
    units = job.profile.units
    X = np.zeros((len(units), n_methods), dtype=np.float64)
    frames_cache: dict[int, np.ndarray] = {}
    table = job.stack_table
    for i, unit in enumerate(units):
        row = X[i]
        for sid, count in zip(unit.stack_ids, unit.stack_counts):
            frames = frames_cache.get(int(sid))
            if frames is None:
                frames = np.fromiter(table.frames_of(int(sid)), dtype=np.intp)
                frames_cache[int(sid)] = frames
            np.add.at(row, frames, float(count))
        if normalize:
            total = row.sum()
            if total > 0:
                row /= total
    return X


def reference_silhouette_score(
    X: np.ndarray,
    assignments: np.ndarray,
    *,
    max_points: int = 3000,
    seed: int = 0,
) -> float:
    """Per-cluster-loop silhouette; rebuilds its distances every call."""
    n = len(X)
    labels = np.unique(assignments)
    if len(labels) < 2 or n < 3:
        return 0.0
    if n > max_points:
        rng = np.random.default_rng(seed)
        idx = np.sort(rng.choice(n, size=max_points, replace=False))
    else:
        idx = np.arange(n)

    sizes = {int(lab): int((assignments == lab).sum()) for lab in labels}
    mean_d = np.empty((len(idx), len(labels)))
    for j, lab in enumerate(labels):
        members = X[assignments == lab]
        d = np.sqrt(_pairwise_sq_dists(X[idx], members))
        mean_d[:, j] = d.mean(axis=1)

    label_pos = {int(lab): j for j, lab in enumerate(labels)}
    s = np.zeros(len(idx))
    for i, point in enumerate(idx):
        own = int(assignments[point])
        j_own = label_pos[own]
        size_own = sizes[own]
        if size_own <= 1:
            s[i] = 0.0
            continue
        a = mean_d[i, j_own] * size_own / (size_own - 1)
        b = np.min(np.delete(mean_d[i], j_own))
        denom = max(a, b)
        s[i] = 0.0 if denom == 0 else (b - a) / denom
    return float(s.mean())


def reference_kmeans(
    X: np.ndarray,
    k: int,
    *,
    seed: int = 0,
    n_init: int = 4,
    max_iter: int = 100,
    tol: float = 1e-9,
) -> KMeansResult:
    """Lloyd's loop without the fixed-point early exit or shared norms."""
    if k <= 0:
        raise ValueError("k must be positive")
    n = len(X)
    if n == 0:
        raise ValueError("cannot cluster zero points")
    k = min(k, n)
    rng = np.random.default_rng(seed)

    best: KMeansResult | None = None
    for _run in range(n_init):
        centers = _kmeanspp_init(X, k, rng)
        assignments = np.zeros(n, dtype=np.int64)
        prev_inertia = np.inf
        for _it in range(max_iter):
            dists = _pairwise_sq_dists(X, centers)
            assignments = dists.argmin(axis=1)
            inertia = float(dists[np.arange(n), assignments].sum())
            for j in range(k):
                members = assignments == j
                if members.any():
                    centers[j] = X[members].mean(axis=0)
                else:
                    farthest = int(dists[np.arange(n), assignments].argmax())
                    centers[j] = X[farthest]
            if prev_inertia - inertia <= tol * max(prev_inertia, 1.0):
                break
            prev_inertia = inertia
        dists = _pairwise_sq_dists(X, centers)
        assignments = dists.argmin(axis=1)
        inertia = float(dists[np.arange(n), assignments].sum())
        if best is None or inertia < best.inertia:
            best = KMeansResult(centers.copy(), assignments, inertia)
    assert best is not None
    return best


def reference_choose_k(
    X: np.ndarray,
    *,
    k_max: int = 20,
    score_threshold: float = 0.9,
    min_structure: float = 0.40,
    seed: int = 0,
) -> tuple[int, dict[int, float], KMeansResult | None]:
    """Serial sweep with per-k distance rebuilds; refits the winner.

    Returns ``(k, scores_by_k, refit_result)`` so callers can compare
    the refitted model against the fast path's reused sweep result.
    """
    n = len(X)
    if n < 3 or np.allclose(X, X[0]):
        return 1, {1: 0.0}, None
    scores: dict[int, float] = {}
    results: dict[int, KMeansResult] = {}
    k_cap = min(k_max, n - 1)
    for k in range(2, k_cap + 1):
        result = reference_kmeans(X, k, seed=seed)
        results[k] = result
        if len(np.unique(result.assignments)) < 2:
            scores[k] = 0.0
            continue
        scores[k] = reference_silhouette_score(X, result.assignments, seed=seed)
    if not scores:
        return 1, {1: 0.0}, None
    best = max(scores.values())
    if best < min_structure:
        return 1, scores, None
    cutoff = score_threshold * best
    for k in sorted(scores):
        if scores[k] >= cutoff:
            # The pre-fast-path pipeline refit k-means for the chosen k
            # (a bit-identical recomputation the fast path now skips).
            return k, scores, reference_kmeans(X, k, seed=seed)
    k = max(scores, key=scores.get)
    return k, scores, reference_kmeans(X, k, seed=seed)
