"""Pre-fast-path reference implementations of the phase-formation hot path.

These are the straightforward per-loop versions the optimised code in
:mod:`repro.core.clustering` and :mod:`repro.core.features` replaced:
a per-stack scatter-add featurizer, a per-cluster-loop silhouette that
recomputes its distance block for every evaluation, a Lloyd loop with
no fixed-point early exit, and a serial k-sweep that refits k-means for
the chosen k.  They are kept for two reasons:

* **parity** — the property tests assert the fast path produces
  bit-identical feature matrices and phase selections (and
  ``allclose``-equal silhouette scores, whose summation order changed);
* **benchmarking** — ``benchmarks/bench_phase_perf.py`` times fast vs
  reference on identical inputs to report the speedup.

Nothing here is exported from :mod:`repro.core`; production code must
not import this module.
"""

from __future__ import annotations

import numpy as np

from repro.core.clustering import KMeansResult, _kmeanspp_init, _pairwise_sq_dists
from repro.core.units import JobProfile

__all__ = [
    "reference_build_feature_matrix",
    "reference_silhouette_score",
    "reference_kmeans",
    "reference_choose_k",
]


def reference_build_feature_matrix(
    job: JobProfile, *, normalize: bool = True
) -> np.ndarray:
    """Per-unit, per-stack loop featurizer (the pre-fast-path version)."""
    n_methods = len(job.registry)
    units = job.profile.units
    X = np.zeros((len(units), n_methods), dtype=np.float64)
    frames_cache: dict[int, np.ndarray] = {}
    table = job.stack_table
    for i, unit in enumerate(units):
        row = X[i]
        for sid, count in zip(unit.stack_ids, unit.stack_counts):
            frames = frames_cache.get(int(sid))
            if frames is None:
                frames = np.fromiter(table.frames_of(int(sid)), dtype=np.intp)
                frames_cache[int(sid)] = frames
            np.add.at(row, frames, float(count))
        if normalize:
            total = row.sum()
            if total > 0:
                row /= total
    return X


def reference_silhouette_score(
    X: np.ndarray,
    assignments: np.ndarray,
    *,
    max_points: int = 3000,
    seed: int = 0,
) -> float:
    """Per-cluster-loop silhouette; rebuilds its distances every call."""
    n = len(X)
    labels = np.unique(assignments)
    if len(labels) < 2 or n < 3:
        return 0.0
    if n > max_points:
        rng = np.random.default_rng(seed)
        idx = np.sort(rng.choice(n, size=max_points, replace=False))
    else:
        idx = np.arange(n)

    sizes = {int(lab): int((assignments == lab).sum()) for lab in labels}
    mean_d = np.empty((len(idx), len(labels)))
    for j, lab in enumerate(labels):
        members = X[assignments == lab]
        d = np.sqrt(_pairwise_sq_dists(X[idx], members))
        mean_d[:, j] = d.mean(axis=1)

    label_pos = {int(lab): j for j, lab in enumerate(labels)}
    s = np.zeros(len(idx))
    for i, point in enumerate(idx):
        own = int(assignments[point])
        j_own = label_pos[own]
        size_own = sizes[own]
        if size_own <= 1:
            s[i] = 0.0
            continue
        a = mean_d[i, j_own] * size_own / (size_own - 1)
        b = np.min(np.delete(mean_d[i], j_own))
        denom = max(a, b)
        s[i] = 0.0 if denom == 0 else (b - a) / denom
    return float(s.mean())


def reference_kmeans(
    X: np.ndarray,
    k: int,
    *,
    seed: int = 0,
    n_init: int = 4,
    max_iter: int = 100,
    tol: float = 1e-9,
) -> KMeansResult:
    """Lloyd's loop without the fixed-point early exit or shared norms."""
    if k <= 0:
        raise ValueError("k must be positive")
    n = len(X)
    if n == 0:
        raise ValueError("cannot cluster zero points")
    k = min(k, n)
    rng = np.random.default_rng(seed)

    best: KMeansResult | None = None
    for _run in range(n_init):
        centers = _kmeanspp_init(X, k, rng)
        assignments = np.zeros(n, dtype=np.int64)
        prev_inertia = np.inf
        for _it in range(max_iter):
            dists = _pairwise_sq_dists(X, centers)
            assignments = dists.argmin(axis=1)
            inertia = float(dists[np.arange(n), assignments].sum())
            for j in range(k):
                members = assignments == j
                if members.any():
                    centers[j] = X[members].mean(axis=0)
                else:
                    farthest = int(dists[np.arange(n), assignments].argmax())
                    centers[j] = X[farthest]
            if prev_inertia - inertia <= tol * max(prev_inertia, 1.0):
                break
            prev_inertia = inertia
        dists = _pairwise_sq_dists(X, centers)
        assignments = dists.argmin(axis=1)
        inertia = float(dists[np.arange(n), assignments].sum())
        if best is None or inertia < best.inertia:
            best = KMeansResult(centers.copy(), assignments, inertia)
    assert best is not None
    return best


def reference_choose_k(
    X: np.ndarray,
    *,
    k_max: int = 20,
    score_threshold: float = 0.9,
    min_structure: float = 0.40,
    seed: int = 0,
) -> tuple[int, dict[int, float], KMeansResult | None]:
    """Serial sweep with per-k distance rebuilds; refits the winner.

    Returns ``(k, scores_by_k, refit_result)`` so callers can compare
    the refitted model against the fast path's reused sweep result.
    """
    n = len(X)
    if n < 3 or np.allclose(X, X[0]):
        return 1, {1: 0.0}, None
    scores: dict[int, float] = {}
    results: dict[int, KMeansResult] = {}
    k_cap = min(k_max, n - 1)
    for k in range(2, k_cap + 1):
        result = reference_kmeans(X, k, seed=seed)
        results[k] = result
        if len(np.unique(result.assignments)) < 2:
            scores[k] = 0.0
            continue
        scores[k] = reference_silhouette_score(X, result.assignments, seed=seed)
    if not scores:
        return 1, {1: 0.0}, None
    best = max(scores.values())
    if best < min_structure:
        return 1, scores, None
    cutoff = score_threshold * best
    for k in sorted(scores):
        if scores[k] >= cutoff:
            # The pre-fast-path pipeline refit k-means for the chosen k
            # (a bit-identical recomputation the fast path now skips).
            return k, scores, reference_kmeans(X, k, seed=seed)
    k = max(scores, key=scores.get)
    return k, scores, reference_kmeans(X, k, seed=seed)
