"""Stage coverage of a sample.

The paper's core criticism of the SECOND baseline is qualitative:
"in most cases, the sample is not representative since it does not
cover all the execution stages.  For example, SECOND is not able to
cover the reduce stage for all Hadoop workloads."  This module makes
that claim measurable: map each sampling unit to the stages whose
segments it overlaps, then score any sample by the fraction of stage
activity it covers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.jvm.job import JobTrace
from repro.jvm.threads import ThreadTrace

__all__ = ["StageCoverage", "unit_stage_matrix", "stage_coverage"]


def unit_stage_matrix(
    trace: ThreadTrace, unit_size: int
) -> tuple[np.ndarray, np.ndarray]:
    """Per-unit instruction mass per stage.

    Returns ``(stage_ids, matrix)`` where ``matrix[u, s]`` is the number
    of instructions unit ``u`` spent in ``stage_ids[s]`` (−1 collects
    out-of-task work such as GC).
    """
    arrays = trace.to_arrays()
    insts = arrays["instructions"].astype(np.float64)
    stages = arrays["stage_id"]
    ends = np.cumsum(insts)
    starts = ends - insts
    n_units = int(ends[-1] // unit_size) if len(ends) else 0
    stage_ids = np.unique(stages)
    index_of = {int(s): i for i, s in enumerate(stage_ids)}
    matrix = np.zeros((n_units, len(stage_ids)))
    for seg_start, seg_end, stage in zip(starts, ends, stages):
        col = index_of[int(stage)]
        first = int(seg_start // unit_size)
        last = int(min((seg_end - 1e-9) // unit_size, n_units - 1))
        for unit in range(first, last + 1):
            if unit >= n_units:
                break
            lo = max(seg_start, unit * unit_size)
            hi = min(seg_end, (unit + 1) * unit_size)
            if hi > lo:
                matrix[unit, col] += hi - lo
    return stage_ids, matrix


@dataclass(frozen=True)
class StageCoverage:
    """Coverage of a sample over the job's stages."""

    stage_ids: np.ndarray
    covered: np.ndarray  # bool per stage
    stage_weights: np.ndarray  # instruction share per stage

    @property
    def n_stages(self) -> int:
        """Stages with any activity on the profiled thread."""
        return len(self.stage_ids)

    @property
    def n_covered(self) -> int:
        """Stages the sample touches."""
        return int(self.covered.sum())

    @property
    def covered_weight(self) -> float:
        """Instruction share of the covered stages."""
        return float(self.stage_weights[self.covered].sum())

    @property
    def missed_stages(self) -> list[int]:
        """Stage ids the sample never touches."""
        return [int(s) for s in self.stage_ids[~self.covered]]


def stage_coverage(
    job_trace: JobTrace,
    thread_id: int,
    selected_units: np.ndarray,
    unit_size: int,
    *,
    min_fraction: float = 0.01,
) -> StageCoverage:
    """Which stages does a sample of units cover?

    A unit "covers" a stage if at least ``min_fraction`` of the unit's
    instructions belong to it (so one stray segment does not count as
    stage coverage).  Framework/GC work outside any task (stage −1) is
    excluded from the stage list.
    """
    trace = job_trace.thread(thread_id)
    stage_ids, matrix = unit_stage_matrix(trace, unit_size)
    keep = stage_ids >= 0
    stage_ids = stage_ids[keep]
    matrix = matrix[:, keep]

    total_per_stage = matrix.sum(axis=0)
    weights = total_per_stage / max(1.0, total_per_stage.sum())

    selected = np.asarray(selected_units, dtype=np.intp)
    selected = selected[selected < len(matrix)]
    unit_totals = matrix[selected].sum(axis=1, keepdims=True)
    fractions = matrix[selected] / np.maximum(unit_totals, 1.0)
    covered = (fractions >= min_fraction).any(axis=0)
    return StageCoverage(
        stage_ids=stage_ids, covered=covered, stage_weights=weights
    )
