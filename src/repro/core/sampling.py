"""Stratified random sampling with optimal allocation (Section III-C).

Given phases (strata) with sizes ``N_h`` and CPI standard deviations
``σ_h``, SimProf allocates a total sample of ``n`` simulation points as

    n_h = n · (N_h σ_h) / Σ_i (N_i σ_i)                      (Eq. 1)

then draws a simple random sample inside each phase.  The stratified
estimator of the mean CPI is ``Σ_h (N_h/N) ȳ_h`` with standard error

    SE = (1/N) sqrt( Σ_h N_h² (1 − n_h/N_h) s_h² / n_h )     (Eq. 4)

and the confidence interval ``ȳ ± z · SE`` (Eqs. 2–3).  The sample-size
solver inverts the same formula for a target relative error, which is
how the Figure 8 sample sizes are produced.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

__all__ = [
    "optimal_allocation",
    "stratified_sample",
    "stratified_standard_error",
    "required_sample_size",
    "StratifiedEstimate",
    "z_for_confidence",
]


def z_for_confidence(confidence: float) -> float:
    """Two-sided normal z-score for a confidence level (0.997 → ≈3)."""
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    return float(stats.norm.ppf(0.5 + confidence / 2.0))


def optimal_allocation(
    stratum_sizes: np.ndarray, stratum_stds: np.ndarray, n: int
) -> np.ndarray:
    """Eq. 1: Neyman allocation of ``n`` points over the strata.

    Refinements a usable implementation needs on top of the formula:

    * at least one point per non-empty stratum (the stratified mean is
      undefined for an unsampled stratum),
    * no more points than a stratum has units (sampling is without
      replacement),
    * all-zero variances fall back to proportional allocation,
    * integer rounding by largest remainder.
    """
    N_h = np.asarray(stratum_sizes, dtype=np.float64)
    s_h = np.asarray(stratum_stds, dtype=np.float64)
    if len(N_h) != len(s_h):
        raise ValueError("sizes and stds disagree on stratum count")
    if np.any(N_h < 0) or np.any(s_h < 0):
        raise ValueError("sizes and stds must be non-negative")
    nonempty = N_h > 0
    n_min = int(nonempty.sum())
    if n < n_min:
        raise ValueError(
            f"sample size {n} cannot cover {n_min} non-empty strata"
        )
    n = min(n, int(N_h.sum()))

    weights = N_h * s_h
    if weights.sum() <= 0:
        weights = N_h.astype(np.float64)
    weights = np.where(nonempty, weights, 0.0)

    alloc = np.where(nonempty, 1.0, 0.0)  # the minimum-one floor
    remaining = n - alloc.sum()
    # Distribute the remainder by Neyman weights, respecting caps, in a
    # few passes (each pass re-normalises over uncapped strata).
    for _pass in range(len(N_h) + 1):
        if remaining <= 0:
            break
        room = np.maximum(N_h - alloc, 0.0)
        w = np.where(room > 0, weights, 0.0)
        if w.sum() <= 0:
            w = np.where(room > 0, room, 0.0)
            if w.sum() <= 0:
                break
        share = np.minimum(remaining * w / w.sum(), room)
        # Largest-remainder integerisation of this pass's share.
        floor = np.floor(share)
        leftover = int(round(min(remaining, share.sum()) - floor.sum()))
        frac_order = np.argsort(-(share - floor), kind="stable")
        add = floor.copy()
        for idx in frac_order[:max(0, leftover)]:
            if add[idx] < room[idx]:
                add[idx] += 1
        alloc += add
        remaining = n - alloc.sum()
        if add.sum() == 0:
            break
    return alloc.astype(np.int64)


def multimetric_allocation(
    stratum_sizes: np.ndarray,
    stratum_stds_per_metric: np.ndarray,
    metric_means: np.ndarray,
    n: int,
) -> np.ndarray:
    """Allocation that bounds the *worst* metric's relative error.

    Single-metric Neyman allocation (Eq. 1) optimises one variance; a
    sample tuned for CPI can leave a second counter (e.g. LLC MPKI)
    poorly estimated when its variance sits in different strata.  This
    greedy marginal allocation starts from one point per non-empty
    stratum and repeatedly gives the next point to the stratum that
    most reduces the currently-worst metric's relative standard error —
    a minimax version of optimal allocation.

    Parameters
    ----------
    stratum_sizes:
        ``N_h`` per stratum.
    stratum_stds_per_metric:
        Array of shape ``(n_metrics, n_strata)``: ``σ`` of each metric
        within each stratum.
    metric_means:
        Population mean per metric (normalises the errors so metrics on
        different scales are comparable).
    n:
        Total sample size.
    """
    N_h = np.asarray(stratum_sizes, dtype=np.float64)
    stds = np.atleast_2d(np.asarray(stratum_stds_per_metric, dtype=np.float64))
    means = np.asarray(metric_means, dtype=np.float64)
    if stds.shape[1] != len(N_h):
        raise ValueError("stds and sizes disagree on stratum count")
    if len(means) != len(stds):
        raise ValueError("means and stds disagree on metric count")
    if np.any(means <= 0):
        raise ValueError("metric means must be positive for normalisation")
    nonempty = N_h > 0
    n_min = int(nonempty.sum())
    if n < n_min:
        raise ValueError(f"sample size {n} cannot cover {n_min} strata")
    n = min(n, int(N_h.sum()))

    alloc = np.where(nonempty, 1.0, 0.0)
    N = N_h.sum()

    def rel_variances(a: np.ndarray) -> np.ndarray:
        with np.errstate(divide="ignore", invalid="ignore"):
            terms = np.where(
                a > 0,
                N_h**2 * (1.0 - a / np.maximum(N_h, 1.0))
                * stds**2 / np.maximum(a, 1.0),
                0.0,
            )
        return terms.sum(axis=1) / (N**2 * means**2)

    for _ in range(int(n - alloc.sum())):
        current = rel_variances(alloc)
        worst = int(np.argmax(current))
        # Marginal gain of one more point in each stratum, for the
        # worst metric.
        room = (alloc < N_h) & nonempty
        if not room.any():
            break
        gains = np.full(len(N_h), -np.inf)
        for h in np.nonzero(room)[0]:
            trial = alloc.copy()
            trial[h] += 1
            gains[h] = current[worst] - rel_variances(trial)[worst]
        alloc[int(np.argmax(gains))] += 1
    return alloc.astype(np.int64)


def stratified_standard_error(
    stratum_sizes: np.ndarray,
    sample_sizes: np.ndarray,
    sample_stds: np.ndarray,
) -> float:
    """Eq. 4: SE of the stratified mean (with finite-population term).

    Strata with a single sample contribute zero (their s_h is
    undefined; the conventional conservative choice would inflate SE,
    but the paper takes s_h from the profiled CPIs where available, so
    callers normally pass population stds).
    """
    N_h = np.asarray(stratum_sizes, dtype=np.float64)
    n_h = np.asarray(sample_sizes, dtype=np.float64)
    s_h = np.asarray(sample_stds, dtype=np.float64)
    N = N_h.sum()
    if N <= 0:
        raise ValueError("empty population")
    mask = n_h > 0
    with np.errstate(divide="ignore", invalid="ignore"):
        terms = np.where(
            mask,
            N_h**2 * (1.0 - n_h / np.maximum(N_h, 1.0)) * s_h**2 / np.maximum(n_h, 1.0),
            0.0,
        )
    return float(np.sqrt(terms.sum()) / N)


@dataclass(frozen=True)
class StratifiedEstimate:
    """A drawn sample and its stratified estimator."""

    selected: np.ndarray  # unit indices (the simulation points)
    allocation: np.ndarray  # n_h per phase
    stratum_sizes: np.ndarray
    estimate: float  # stratified mean CPI
    standard_error: float

    @property
    def sample_size(self) -> int:
        """Total number of simulation points."""
        return int(self.allocation.sum())

    def margin_of_error(self, confidence: float = 0.997) -> float:
        """Eq. 3: z · SE at the given confidence level."""
        return z_for_confidence(confidence) * self.standard_error

    def confidence_interval(self, confidence: float = 0.997) -> tuple[float, float]:
        """Eq. 2: estimate ± margin of error."""
        m = self.margin_of_error(confidence)
        return (self.estimate - m, self.estimate + m)


def stratified_sample(
    assignments: np.ndarray,
    cpi: np.ndarray,
    n: int,
    *,
    rng: np.random.Generator | None = None,
    k: int | None = None,
) -> StratifiedEstimate:
    """Draw the SimProf sample: optimal allocation + per-phase SRS.

    ``assignments`` maps units to phases; ``cpi`` is the profiled CPI of
    every unit (used for the allocation σ_h and for the estimate of the
    selected points — in a real deployment the selected points would be
    *simulated* and their CPI measured there).
    """
    if rng is None:
        rng = np.random.default_rng(0)
    if len(assignments) != len(cpi):
        raise ValueError("assignments and cpi disagree on unit count")
    k = k if k is not None else int(assignments.max()) + 1
    N_h = np.array(
        [(assignments == h).sum() for h in range(k)], dtype=np.int64
    )
    s_h = np.array(
        [
            cpi[assignments == h].std(ddof=1) if N_h[h] > 1 else 0.0
            for h in range(k)
        ]
    )
    alloc = optimal_allocation(N_h, s_h, n)

    selected: list[int] = []
    means = np.zeros(k)
    sample_stds = np.zeros(k)
    for h in range(k):
        if alloc[h] == 0:
            continue
        members = np.nonzero(assignments == h)[0]
        chosen = rng.choice(members, size=int(alloc[h]), replace=False)
        selected.extend(int(c) for c in chosen)
        vals = cpi[chosen]
        means[h] = vals.mean()
        sample_stds[h] = vals.std(ddof=1) if len(vals) > 1 else 0.0

    N = N_h.sum()
    estimate = float((N_h / N) @ means)
    # The SE uses the profiled (population) stds, as the paper does.
    se = stratified_standard_error(N_h, alloc, s_h)
    return StratifiedEstimate(
        selected=np.array(sorted(selected), dtype=np.int64),
        allocation=alloc,
        stratum_sizes=N_h,
        estimate=estimate,
        standard_error=se,
    )


def required_sample_size(
    stratum_sizes: np.ndarray,
    stratum_stds: np.ndarray,
    population_mean: float,
    *,
    relative_error: float,
    confidence: float = 0.997,
    n_max: int | None = None,
) -> int:
    """Smallest n with z·SE ≤ relative_error · mean under Eq. 1 + Eq. 4.

    Starts from the closed-form Neyman solution with finite-population
    correction and walks to the exact minimum under the integer
    allocation (the min-one-per-stratum floor makes the closed form an
    approximation).
    """
    if relative_error <= 0:
        raise ValueError("relative_error must be positive")
    N_h = np.asarray(stratum_sizes, dtype=np.float64)
    s_h = np.asarray(stratum_stds, dtype=np.float64)
    N = N_h.sum()
    n_total = int(N)
    n_min = int((N_h > 0).sum())
    if n_max is None:
        n_max = n_total
    z = z_for_confidence(confidence)
    target_se = relative_error * population_mean / z

    def se_at(n: int) -> float:
        alloc = optimal_allocation(N_h, s_h, n)
        return stratified_standard_error(N_h, alloc, s_h)

    # Closed form: n0 = (Σ N_h s_h)^2 / (N^2 V + Σ N_h s_h^2).
    V = target_se**2
    num = float((N_h * s_h).sum()) ** 2
    den = N**2 * V + float((N_h * s_h**2).sum())
    n0 = int(np.ceil(num / den)) if den > 0 else n_min
    n = int(np.clip(n0, n_min, n_max))

    if se_at(n) <= target_se:
        while n > n_min and se_at(n - 1) <= target_se:
            n -= 1
        return n
    while n < n_max and se_at(n) > target_se:
        n = min(n_max, max(n + 1, int(n * 1.1)))
    # Walk back to the boundary.
    while n > n_min and se_at(n - 1) <= target_se:
        n -= 1
    return n
