"""Instrumented algorithms shared by the framework simulators."""

from repro.algos.quicksort import instrumented_quicksort

__all__ = ["instrumented_quicksort"]
