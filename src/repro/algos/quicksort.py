"""Instrumented quicksort.

Both frameworks sort key-value pairs before handing them to a reducer
(Hadoop: `sortAndSpill`; Spark: `sortByKey`).  Section III-B.1 singles
out quicksort as a canonical source of *non-homogeneous* phase
behaviour: every sampling unit of a sort phase runs the same code, but
units sorting large partitions miss the caches while units sorting
small leaf partitions do not.

This module runs a real (vectorised, explicit-stack) quicksort over the
keys and reports every partitioning pass to an ``emit`` callback with
the pass's element count and working-set size — so the trace carries
the genuine partition-size sequence of the recursion, not a synthetic
distribution.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["instrumented_quicksort"]

# Below this size a partition is finished with a library sort (the
# classic introsort-style leaf cutoff).
DEFAULT_LEAF_SIZE = 2048

# Emit callback: (n_elements_processed, working_set_elements, is_leaf)
EmitFn = Callable[[int, int, bool], None]


def instrumented_quicksort(
    keys: np.ndarray,
    emit: EmitFn,
    *,
    leaf_size: int = DEFAULT_LEAF_SIZE,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Sort ``keys`` and return the permutation that sorts them.

    Each internal partitioning pass over ``m`` elements calls
    ``emit(m, m, False)``; each leaf sort of ``m`` elements calls
    ``emit(m, m, True)``.  The caller converts these into trace
    segments (instructions ∝ elements, working set ∝ elements).

    The sort is a textbook two-way quicksort with median-of-three
    pivots, expressed with NumPy masks so a million keys sort in
    milliseconds; the *recursion structure* (and hence the emitted
    partition-size sequence) is identical to the scalar algorithm's.

    Parameters
    ----------
    keys:
        1-D array of sortable keys (numeric or fixed-width strings).
    emit:
        Instrumentation callback, called in recursion (LIFO) order.
    leaf_size:
        Partitions at or below this size are finished with ``argsort``.
    rng:
        Optional generator used only to break pathological pivot ties.
    """
    n = len(keys)
    order = np.arange(n, dtype=np.int64)
    if n == 0:
        return order
    if rng is None:
        rng = np.random.default_rng(0)

    # Explicit stack of (start, stop) half-open ranges over `order`.
    stack: list[tuple[int, int]] = [(0, n)]
    while stack:
        start, stop = stack.pop()
        m = stop - start
        if m <= 1:
            continue
        if m <= leaf_size:
            view = order[start:stop]
            order[start:stop] = view[np.argsort(keys[view], kind="stable")]
            emit(m, m, True)
            continue

        # Copy: the partition writes below target order[start:stop], so
        # reading through a live view would see half-written data.
        view = order[start:stop].copy()
        seg_keys = keys[view]
        # Median-of-three pivot over first/middle/last.
        cand = np.array([seg_keys[0], seg_keys[m // 2], seg_keys[m - 1]])
        pivot = np.sort(cand)[1]

        less = seg_keys < pivot
        equal = seg_keys == pivot
        n_less = int(less.sum())
        n_equal = int(equal.sum())
        if n_equal == m:
            # All keys identical: nothing left to do in this range.
            emit(m, m, False)
            continue
        if n_less == 0 and n_equal == 0:
            # Degenerate pivot (smaller than everything); fall back to a
            # random pivot to guarantee progress.
            pivot = seg_keys[int(rng.integers(0, m))]
            less = seg_keys < pivot
            equal = seg_keys == pivot
            n_less = int(less.sum())
            n_equal = int(equal.sum())

        greater = ~(less | equal)
        order[start : start + n_less] = view[less]
        order[start + n_less : start + n_less + n_equal] = view[equal]
        order[start + n_less + n_equal : stop] = view[greater]
        emit(m, m, False)

        # Push larger side first so the smaller is processed next
        # (bounds the stack, and matches typical implementations).
        left = (start, start + n_less)
        right = (start + n_less + n_equal, stop)
        if left[1] - left[0] > right[1] - right[0]:
            stack.append(left)
            stack.append(right)
        else:
            stack.append(right)
            stack.append(left)
    return order
