"""The user-facing MapReduce API (Mapper / Reducer / Context).

Mirrors ``org.apache.hadoop.mapreduce``: a mapper is called once per
input record, a reducer once per key group, and both emit through a
:class:`Context`.  Workloads subclass these; the runtime drives them.
"""

from __future__ import annotations

from typing import Any, Iterable

__all__ = ["Context", "Mapper", "Reducer"]


class Context:
    """Collects ``write`` output and user counters for the runtime."""

    def __init__(self) -> None:
        self.records: list[tuple[Any, Any]] = []
        self.counters: dict[tuple[str, str], int] = {}

    def write(self, key: Any, value: Any) -> None:
        """Emit one key-value record."""
        self.records.append((key, value))

    def increment_counter(self, group: str, name: str, amount: int = 1) -> None:
        """Bump a user counter (Hadoop's ``context.getCounter`` API)."""
        key = (group, name)
        self.counters[key] = self.counters.get(key, 0) + amount

    def drain(self) -> list[tuple[Any, Any]]:
        """Take and clear the buffered records."""
        out = self.records
        self.records = []
        return out


class Mapper:
    """Base mapper: override :meth:`map`.

    ``frames`` names the class/method JVMTI shows while the mapper runs;
    subclasses override it so the profile carries the real workload
    method (e.g. ``WordCount$TokenizerMapper.map``).
    """

    frames: tuple[tuple[str, str], ...] = (
        ("org.apache.hadoop.mapreduce.Mapper", "run"),
        ("repro.hadoop.IdentityMapper", "map"),
    )
    inst_per_record: float = 260_000.0

    def setup(self) -> None:
        """Called once per task before the first record."""

    def map(self, key: Any, value: Any, context: Context) -> None:
        """Process one input record (default: identity)."""
        context.write(key, value)

    def cleanup(self, context: Context) -> None:
        """Called once per task after the last record."""


class Reducer:
    """Base reducer: override :meth:`reduce`.

    Used both as the combiner (map side) and the reducer (reduce side),
    as in Hadoop itself.
    """

    frames: tuple[tuple[str, str], ...] = (
        ("org.apache.hadoop.mapreduce.Reducer", "run"),
        ("repro.hadoop.IdentityReducer", "reduce"),
    )
    inst_per_record: float = 280_000.0

    def setup(self) -> None:
        """Called once per task before the first group."""

    def reduce(self, key: Any, values: Iterable[Any], context: Context) -> None:
        """Process one key group (default: identity pass-through)."""
        for v in values:
            context.write(key, v)

    def cleanup(self, context: Context) -> None:
        """Called once per task after the last group."""
