"""Hadoop-like MapReduce simulator.

Models the classic MapReduce execution pipeline at the fidelity the
paper's analysis needs: record-at-a-time mappers feeding a sort buffer,
sort-and-spill with an instrumented quicksort, an optional combiner
(map-side reduce), compressed spill output, a fetch/merge shuffle, and
record-at-a-time reducers writing to HDFS.

Unlike Spark, executor threads are short-lived — one per task — so the
runtime merges the traces of tasks that ran on the same core into one
long pseudo-thread, exactly as the paper's profiler does (Section III-A).
The paper's Hadoop tuning (bigger sort buffers, compressed map output)
is the default configuration here as well.
"""

from repro.hadoop.api import Context, Mapper, Reducer
from repro.hadoop.job import HadoopJobConf
from repro.hadoop.runtime import HadoopCluster

__all__ = ["Context", "HadoopCluster", "HadoopJobConf", "Mapper", "Reducer"]
