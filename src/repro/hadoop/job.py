"""Job configuration for the MapReduce simulator."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hadoop.api import Mapper, Reducer

__all__ = ["HadoopJobConf"]


@dataclass
class HadoopJobConf:
    """Everything a MapReduce job needs.

    Defaults reflect the paper's tuned Hadoop setup: a large map-output
    sort buffer (fewer spills) and compressed map output.  ``n_reduces``
    defaults to the slot count so the reduce stage fills the machine.
    """

    name: str
    mapper: Mapper
    reducer: Reducer | None = None
    combiner: Reducer | None = None
    n_reduces: int = 8
    # Map-output buffer capacity (estimated bytes) before sort-and-spill.
    sort_buffer_bytes: float = 64e6
    # Compressed spill output (mapreduce.map.output.compress=true).
    compress_map_output: bool = True
    compression_ratio: float = 0.35
    # Simulated-instruction costs of the framework paths.
    inst_collect_per_record: float = 60_000.0
    inst_sort_per_element: float = 26_000.0
    inst_partition_per_record: float = 30_000.0
    inst_merge_per_record: float = 40_000.0
    # Per-byte path costs: Hadoop is disk-IO heavy (the paper keeps IO
    # prominent even after its buffer/compression tuning, and finds the
    # Hadoop implementations spend more time on IO than Spark's).
    inst_compress_per_byte: float = 120.0
    io_read_inst_per_byte: float = 1500.0
    io_write_inst_per_byte: float = 1650.0
    shuffle_inst_per_byte: float = 1800.0
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n_reduces < 0:
            raise ValueError("n_reduces must be non-negative")
        if self.sort_buffer_bytes <= 0:
            raise ValueError("sort_buffer_bytes must be positive")
        if not 0.0 < self.compression_ratio <= 1.0:
            raise ValueError("compression_ratio must be in (0, 1]")

    @property
    def is_map_only(self) -> bool:
        """Jobs with no reducer skip sort/spill/shuffle entirely."""
        return self.reducer is None or self.n_reduces == 0
