"""Canonical Hadoop call-stack frames.

Counterpart to :mod:`repro.spark.stacks` for the MapReduce pipeline:
YarnChild task entry, the map-output buffer, sort-and-spill, the
combiner runner, the shuffle fetcher/merger, and the output writer —
the vocabulary behind the paper's Figure 15 phase analysis.
"""

from __future__ import annotations

from repro.jvm.methods import CallStack, MethodRegistry

__all__ = ["HadoopFrames"]

Frame = tuple[str, str]

TASK_BASE: tuple[Frame, ...] = (
    ("org.apache.hadoop.mapred.YarnChild", "main"),
    ("org.apache.hadoop.mapred.Task", "run"),
)

MAP_TASK: tuple[Frame, ...] = (
    ("org.apache.hadoop.mapred.MapTask", "run"),
    ("org.apache.hadoop.mapred.MapTask", "runNewMapper"),
)

REDUCE_TASK: tuple[Frame, ...] = (
    ("org.apache.hadoop.mapred.ReduceTask", "run"),
)

HDFS_READ: tuple[Frame, ...] = (
    ("org.apache.hadoop.mapreduce.lib.input.LineRecordReader", "nextKeyValue"),
    ("org.apache.hadoop.hdfs.DFSInputStream", "read"),
)

COLLECT: tuple[Frame, ...] = (
    ("org.apache.hadoop.mapred.MapTask$MapOutputBuffer", "collect"),
)

SORT_SPILL: tuple[Frame, ...] = (
    ("org.apache.hadoop.mapred.MapTask$MapOutputBuffer", "sortAndSpill"),
    ("org.apache.hadoop.util.QuickSort", "sort"),
)

COMBINE: tuple[Frame, ...] = (
    ("org.apache.hadoop.mapred.MapTask$MapOutputBuffer", "sortAndSpill"),
    ("org.apache.hadoop.mapred.Task$NewCombinerRunner", "combine"),
)

SPILL_WRITE: tuple[Frame, ...] = (
    ("org.apache.hadoop.mapred.MapTask$MapOutputBuffer", "sortAndSpill"),
    ("org.apache.hadoop.mapred.IFile$Writer", "append"),
    ("org.apache.hadoop.io.compress.SnappyCodec", "compress"),
)

MERGE_SPILLS: tuple[Frame, ...] = (
    ("org.apache.hadoop.mapred.MapTask$MapOutputBuffer", "mergeParts"),
    ("org.apache.hadoop.mapred.Merger$MergeQueue", "merge"),
)

FETCH: tuple[Frame, ...] = (
    ("org.apache.hadoop.mapreduce.task.reduce.Shuffle", "run"),
    ("org.apache.hadoop.mapreduce.task.reduce.Fetcher", "copyFromHost"),
)

REDUCE_MERGE: tuple[Frame, ...] = (
    ("org.apache.hadoop.mapreduce.task.reduce.MergeManagerImpl", "close"),
    ("org.apache.hadoop.mapred.Merger$MergeQueue", "merge"),
)

OUTPUT_WRITE: tuple[Frame, ...] = (
    ("org.apache.hadoop.mapred.TextOutputFormat$LineRecordWriter", "write"),
    ("org.apache.hadoop.hdfs.DFSOutputStream", "write"),
)

GC: tuple[Frame, ...] = (
    ("jvm.internal.SafepointSynchronize", "begin"),
    ("jvm.gc.ParallelScavengeHeap", "collect"),
)


class HadoopFrames:
    """Interns the canonical MapReduce frames against one registry."""

    def __init__(self, registry: MethodRegistry) -> None:
        self.registry = registry
        self._task_base = self._intern(TASK_BASE)
        self._map_task = self._intern(MAP_TASK)
        self._reduce_task = self._intern(REDUCE_TASK)

    def _intern(self, frames: tuple[Frame, ...]) -> tuple[int, ...]:
        return tuple(self.registry.intern(c, m) for c, m in frames)

    def map_task_stack(self) -> CallStack:
        """Base stack of a running map task."""
        return CallStack(self._task_base + self._map_task)

    def reduce_task_stack(self) -> CallStack:
        """Base stack of a running reduce task."""
        return CallStack(self._task_base + self._reduce_task)

    def with_frames(self, base: CallStack, frames: tuple[Frame, ...]) -> CallStack:
        """Push named frames (interning them) onto ``base``."""
        return base.push_all(self._intern(frames))

    def hdfs_read(self, base: CallStack) -> CallStack:
        """Inside the input record reader."""
        return self.with_frames(base, HDFS_READ)

    def mapper(self, base: CallStack, mapper_frames: tuple[Frame, ...]) -> CallStack:
        """Inside the user mapper, ending in the collect path."""
        return self.with_frames(base, mapper_frames + COLLECT)

    def sort_spill(self, base: CallStack) -> CallStack:
        """Inside the spill quicksort."""
        return self.with_frames(base, SORT_SPILL)

    def combiner(
        self, base: CallStack, combiner_frames: tuple[Frame, ...]
    ) -> CallStack:
        """Inside the combiner run during a spill."""
        return self.with_frames(base, COMBINE + combiner_frames)

    def spill_write(self, base: CallStack) -> CallStack:
        """Writing (compressing) a spill file."""
        return self.with_frames(base, SPILL_WRITE)

    def merge_spills(self, base: CallStack) -> CallStack:
        """Final merge of multiple spill files on the map side."""
        return self.with_frames(base, MERGE_SPILLS)

    def fetch(self, base: CallStack) -> CallStack:
        """Reduce-side shuffle fetch."""
        return self.with_frames(base, FETCH)

    def reduce_merge(self, base: CallStack) -> CallStack:
        """Reduce-side merge of sorted map outputs."""
        return self.with_frames(base, REDUCE_MERGE)

    def reducer(
        self, base: CallStack, reducer_frames: tuple[Frame, ...]
    ) -> CallStack:
        """Inside the user reducer."""
        return self.with_frames(base, reducer_frames)

    def output_write(self, base: CallStack) -> CallStack:
        """Writing final output records to HDFS."""
        return self.with_frames(base, OUTPUT_WRITE)

    def gc_stack(self, base: CallStack) -> CallStack:
        """Stop-the-world GC during a task."""
        return self.with_frames(base, GC)
