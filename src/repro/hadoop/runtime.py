"""The MapReduce runtime: task scheduling, spills, shuffle, merge.

Runs jobs the way a tuned single-node Hadoop deployment does:

* one short-lived executor thread per task, scheduled in waves onto the
  machine's hardware-thread slots (wave size = LLC contention);
* mappers stream records into a sort buffer; when the buffer fills, a
  *sort-and-spill* runs the instrumented quicksort over the buffered
  keys, applies the combiner per key group, compresses and writes the
  spill — the exact mechanism behind Figure 15's map/combine/sort
  phases;
* reducers fetch map outputs, merge the sorted runs, and stream key
  groups through the user reducer into HDFS.

Because each task thread dies with its task, :meth:`HadoopCluster.job_trace`
merges the traces of every task that ran on the same slot into one long
pseudo-thread, as the paper's profiler does for Hadoop.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from itertools import groupby
from typing import Any, Callable

import numpy as np

from repro.algos.quicksort import instrumented_quicksort
from repro.faults.inject import ClusterFaultInjector, TaskFaults
from repro.faults.plan import FaultPlan
from repro.faults.report import FaultReport
from repro.hadoop.api import Context, Reducer
from repro.hadoop.job import HadoopJobConf
from repro.hadoop.stacks import HadoopFrames
from repro.hdfs.filesystem import SimulatedHDFS, estimate_record_bytes
from repro.jvm.job import JobTrace, StageInfo
from repro.jvm.machine import AccessPattern, HardwareModel, MachineConfig, OpKind
from repro.jvm.methods import CallStack, MethodRegistry, StackTable
from repro.jvm.stream import (
    JobEnd,
    StageEvent,
    ThreadStart,
    TraceEvent,
    TraceStream,
    pump_events,
    sequenced_batch,
)
from repro.jvm.threads import ThreadTrace, TraceBuilder
from repro.spark.shuffle import ShuffleManager, stable_hash

__all__ = ["HadoopClusterConfig", "HadoopCluster"]

# Heap bytes one buffered key-value pair occupies beyond its payload
# (object headers, boxed fields, kvmeta slots).
JVM_PAIR_OVERHEAD = 48


class _NoKey:
    """Sentinel: no reduce group open yet."""

    __slots__ = ()


_NO_KEY = _NoKey()


@dataclass(frozen=True, slots=True)
class HadoopClusterConfig:
    """Cluster-level knobs (slots ≈ the testbed's hardware threads)."""

    n_slots: int = 8
    seed: int = 0
    machine: MachineConfig = field(default_factory=MachineConfig)
    gc_threshold_bytes: float = 32e6
    gc_inst: float = 2.5e6
    max_segment_inst: float = 4e6

    def __post_init__(self) -> None:
        if self.n_slots <= 0:
            raise ValueError("need at least one task slot")


class _TaskRun:
    """Trace-emission context of one short-lived task thread."""

    def __init__(
        self,
        cluster: "HadoopCluster",
        conf: HadoopJobConf,
        slot: int,
        base_stack: CallStack,
        contention: int,
    ) -> None:
        self.cluster = cluster
        self.conf = conf
        self.slot = slot
        self.base_stack = base_stack
        cluster._thread_counter += 1
        self.builder = TraceBuilder(
            cluster.stack_table,
            cluster.hardware,
            cluster._slot_rngs[slot],
            thread_id=cluster._thread_counter,
            core_id=slot,
            start_cycle=cluster._slot_clock[slot],
        )
        self.builder.set_contention(contention)
        self._alloc = 0.0

    def emit(
        self,
        stack: CallStack,
        kind: OpKind,
        access: AccessPattern,
        instructions: float,
        stage_id: int,
        task_id: int,
    ) -> None:
        """Emit chunked segments for one operation."""
        if instructions <= 0:
            return
        self.builder.emit_chunked(
            stack,
            kind,
            access,
            instructions,
            max_segment=self.cluster.config.max_segment_inst,
            stage_id=stage_id,
            task_id=task_id,
        )

    def account_alloc(self, nbytes: float, stage_id: int, task_id: int) -> None:
        """Allocation accounting with stop-the-world GC segments."""
        cfg = self.cluster.config
        self._alloc += nbytes
        if self._alloc >= cfg.gc_threshold_bytes:
            rng = self.cluster._slot_rngs[self.slot]
            live = 0.5 * cfg.gc_threshold_bytes * (0.8 + 0.4 * rng.random())
            self.emit(
                self.cluster.frames.gc_stack(self.base_stack),
                OpKind.GC,
                AccessPattern.pointer(live),
                cfg.gc_inst,
                stage_id,
                task_id,
            )
            self._alloc = 0.0

    def finish(self) -> ThreadTrace:
        """Close the task: advance the slot clock, return the trace."""
        trace = self.builder.trace
        cluster = self.cluster
        cluster._slot_clock[self.slot] = trace.end_cycle
        emit = cluster._stream_emit
        if emit is None:
            cluster._task_traces[self.slot].append(trace)
            return trace
        # Streaming mode: the slot's merged pseudo-thread is delivered
        # event by event instead of being retained.  The ThreadStart of
        # a slot goes out when its first task finishes; slot clocks are
        # monotonic and waves fill slots in ascending order, so this
        # matches job_trace()'s ThreadTrace.merged ordering exactly.
        if self.slot not in cluster._streamed_slots:
            cluster._streamed_slots.add(self.slot)
            emit(ThreadStart(self.slot, self.slot, trace.start_cycle))
        if trace.segments:
            seq = cluster._stream_seq.get(self.slot, 0)
            cluster._stream_seq[self.slot] = seq + 1
            # Columnar flush: pack the task's segments once and clear.
            emit(sequenced_batch(self.slot, trace.drain_structured(), seq))
        return trace


class HadoopCluster:
    """A simulated single-node Hadoop deployment."""

    def __init__(
        self,
        config: HadoopClusterConfig | None = None,
        fs: SimulatedHDFS | None = None,
        faults: FaultPlan | None = None,
    ) -> None:
        self.config = config or HadoopClusterConfig()
        self.fs = fs or SimulatedHDFS()
        # Null plans stay None so the fault-free path is untouched.
        self.faults: ClusterFaultInjector | None = None
        if faults is not None and faults.cluster_active:
            self.faults = ClusterFaultInjector(faults, "hadoop")
        self.registry = MethodRegistry()
        self.stack_table = StackTable(self.registry)
        self.frames = HadoopFrames(self.registry)
        self.hardware = HardwareModel(self.config.machine)
        self.shuffle = ShuffleManager()
        self._stages: list[StageInfo] = []
        # User counters aggregated per job: {job: {(group, name): value}}.
        self.counters: dict[str, dict[tuple[str, str], int]] = {}
        self._thread_counter = 0
        self._stage_counter = 0
        self._shuffle_counter = 0
        self._task_counter = 0
        self._slot_clock = [0] * self.config.n_slots
        self._task_traces: list[list[ThreadTrace]] = [
            [] for _ in range(self.config.n_slots)
        ]
        # Streaming mode: event sink plus the set of slots whose
        # ThreadStart has been emitted, and per-slot batch sequence
        # numbers.
        self._stream_emit: Callable[[TraceEvent], None] | None = None
        self._streamed_slots: set[int] = set()
        self._stream_seq: dict[int, int] = {}
        seeds = np.random.SeedSequence(self.config.seed).spawn(self.config.n_slots)
        self._slot_rngs = [np.random.default_rng(s) for s in seeds]

    # -- helpers -----------------------------------------------------------

    def _batch_size(self, inst_per_record: float) -> int:
        # max_segment_inst is in final (post-instruction_scale) terms;
        # scale the per-record cost accordingly so batches stay well
        # below the profiler's snapshot period.
        scaled = inst_per_record * self.config.machine.instruction_scale
        if scaled <= 0:
            return 1024
        return max(1, min(4096, int(self.config.max_segment_inst / scaled)))

    def _waves(self, n_tasks: int) -> list[list[int]]:
        n = self.config.n_slots
        return [
            list(range(s, min(s + n, n_tasks))) for s in range(0, n_tasks, n)
        ]

    def _merge_counters(self, job_name: str, ctx: Context) -> None:
        """Fold one task context's counters into the job totals."""
        if not ctx.counters:
            return
        job = self.counters.setdefault(job_name, {})
        for key, value in ctx.counters.items():
            job[key] = job.get(key, 0) + value
        ctx.counters = {}

    def _record_stage(self, info: StageInfo) -> None:
        """Log stage metadata (and emit it when streaming)."""
        self._stages.append(info)
        if self._stream_emit is not None:
            self._stream_emit(StageEvent(info))

    @staticmethod
    def _as_kv(record: Any, offset: int) -> tuple[Any, Any]:
        """Input record convention: pairs pass through; anything else
        becomes ``(byte_offset, record)`` like TextInputFormat."""
        if isinstance(record, tuple) and len(record) == 2:
            return record
        return (offset, record)

    # -- job execution -------------------------------------------------------

    def run_job(
        self, conf: HadoopJobConf, input_path: str, output_path: str
    ) -> None:
        """Run one MapReduce job from ``input_path`` to ``output_path``."""
        n_maps = self.fs.stat(input_path).n_blocks
        shuffle_id = self._shuffle_counter
        self._shuffle_counter += 1

        map_stage = self._stage_counter
        self._stage_counter += 1
        self._record_stage(StageInfo(map_stage, f"{conf.name}:map", n_maps))
        for wave in self._waves(n_maps):
            contention = len(wave)
            for slot, map_idx in zip(range(len(wave)), wave):
                tf = self._task_faults(map_stage, map_idx)
                for _ in range(tf.n_failures if tf else 0):
                    self._run_doomed_map_attempt(
                        conf, input_path, map_idx, slot, contention,
                        map_stage, tf,
                    )
                self._run_map_task(
                    conf,
                    input_path,
                    output_path,
                    map_idx,
                    shuffle_id,
                    slot,
                    contention,
                    map_stage,
                    faults=tf,
                )

        if conf.is_map_only:
            return

        reduce_stage = self._stage_counter
        self._stage_counter += 1
        self._record_stage(
            StageInfo(reduce_stage, f"{conf.name}:reduce", conf.n_reduces)
        )
        for wave in self._waves(conf.n_reduces):
            contention = len(wave)
            for slot, reduce_idx in zip(range(len(wave)), wave):
                tf = self._task_faults(reduce_stage, reduce_idx)
                for _ in range(tf.n_failures if tf else 0):
                    self._run_doomed_reduce_attempt(
                        conf, reduce_idx, shuffle_id, slot, contention,
                        reduce_stage, tf,
                    )
                self._run_reduce_task(
                    conf,
                    output_path,
                    reduce_idx,
                    shuffle_id,
                    slot,
                    contention,
                    reduce_stage,
                    faults=tf,
                )

    # -- fault injection ----------------------------------------------------

    def _task_faults(self, stage_id: int, split: int) -> TaskFaults | None:
        if self.faults is None:
            return None
        return self.faults.task_faults(stage_id, split)

    def _run_doomed_map_attempt(
        self,
        conf: HadoopJobConf,
        input_path: str,
        map_idx: int,
        slot: int,
        contention: int,
        stage_id: int,
        tf: TaskFaults,
    ) -> None:
        """A failed map attempt: read the split, burn map work, die.

        The attempt re-reads its input split and gets through
        ``tf.wasted_fraction`` of the map cost before the (simulated)
        JVM dies.  Nothing is spilled, shuffled, or counted — the real
        attempt that follows redoes everything, so job outputs match a
        fault-free run exactly.
        """
        task_id = self._task_counter  # the real attempt reuses this id
        base = self.frames.map_task_stack()
        run = _TaskRun(self, conf, slot, base, contention)
        records, nbytes = self.fs.read_block(input_path, map_idx)
        run.account_alloc(nbytes, stage_id, task_id)
        run.emit(
            self.frames.hdfs_read(base),
            OpKind.IO,
            AccessPattern.sequential(max(1.0, float(nbytes))),
            nbytes * conf.io_read_inst_per_byte,
            stage_id,
            task_id,
        )
        run.emit(
            self.frames.mapper(base, conf.mapper.frames),
            OpKind.MAP,
            AccessPattern.sequential(max(1.0, _list_bytes(records))),
            conf.mapper.inst_per_record * len(records) * tf.wasted_fraction,
            stage_id,
            task_id,
        )
        run.finish()
        assert self.faults is not None
        self.faults.report.record(
            "hadoop.map",
            "task_failure",
            "reexecuted",
            thread_id=slot,
            stage_id=stage_id,
            index=map_idx,
            detail=f"wasted {tf.wasted_fraction:.2f} of map cost",
        )

    def _run_doomed_reduce_attempt(
        self,
        conf: HadoopJobConf,
        reduce_idx: int,
        shuffle_id: int,
        slot: int,
        contention: int,
        stage_id: int,
        tf: TaskFaults,
    ) -> None:
        """A failed reduce attempt: re-fetch map output partway, die."""
        task_id = self._task_counter  # the real attempt reuses this id
        base = self.frames.reduce_task_stack()
        run = _TaskRun(self, conf, slot, base, contention)
        fetch_stack = self.frames.fetch(base)
        for _recs, nbytes in self.shuffle.fetch(shuffle_id, reduce_idx):
            fetched = (
                nbytes * conf.compression_ratio
                if conf.compress_map_output
                else nbytes
            )
            run.emit(
                fetch_stack,
                OpKind.SHUFFLE,
                AccessPattern.sequential(max(1.0, float(fetched))),
                fetched * conf.shuffle_inst_per_byte * tf.wasted_fraction,
                stage_id,
                task_id,
            )
        run.finish()
        assert self.faults is not None
        self.faults.report.record(
            "hadoop.reduce",
            "task_failure",
            "reexecuted",
            thread_id=slot,
            stage_id=stage_id,
            index=reduce_idx,
            detail=f"wasted {tf.wasted_fraction:.2f} of fetch cost",
        )

    def _apply_task_faults(
        self,
        run: _TaskRun,
        tf: TaskFaults | None,
        stage_id: int,
        task_id: int,
    ) -> None:
        """Append straggler stall / GC pause to a finishing task."""
        if tf is None or self.faults is None:
            return
        plan = self.faults.plan
        if tf.straggler_factor:
            scale = self.config.machine.instruction_scale
            extra = (tf.straggler_factor - 1.0) * run.builder.retired
            run.emit(
                self.frames.with_frames(
                    run.base_stack,
                    (("org.apache.hadoop.mapred.Task", "reportProgress"),),
                ),
                OpKind.FRAMEWORK,
                AccessPattern.pointer(48e6),
                extra / scale,
                stage_id,
                task_id,
            )
            self.faults.report.record(
                "hadoop.task",
                "straggler",
                "absorbed",
                thread_id=run.slot,
                stage_id=stage_id,
                index=task_id,
                detail=f"slowdown x{tf.straggler_factor}",
            )
        if tf.gc_pause:
            run.emit(
                self.frames.gc_stack(run.base_stack),
                OpKind.GC,
                AccessPattern.pointer(0.75 * self.config.gc_threshold_bytes),
                plan.gc_pause_inst,
                stage_id,
                task_id,
            )
            self.faults.report.record(
                "hadoop.task",
                "gc_pause",
                "absorbed",
                thread_id=run.slot,
                stage_id=stage_id,
                index=task_id,
            )

    # -- map side ---------------------------------------------------------------

    def _run_map_task(
        self,
        conf: HadoopJobConf,
        input_path: str,
        output_path: str,
        map_idx: int,
        shuffle_id: int,
        slot: int,
        contention: int,
        stage_id: int,
        faults: TaskFaults | None = None,
    ) -> None:
        task_id = self._task_counter
        self._task_counter += 1
        base = self.frames.map_task_stack()
        run = _TaskRun(self, conf, slot, base, contention)

        records, nbytes = self.fs.read_block(input_path, map_idx)
        run.account_alloc(nbytes, stage_id, task_id)

        mapper = conf.mapper
        mapper.setup()
        map_stack = self.frames.mapper(base, mapper.frames)
        ctx = Context()
        buffer: list[tuple[Any, Any]] = []
        buffer_bytes = 0.0
        # One sorted-per-partition run per spill.
        spills: list[dict[int, list[tuple[Any, Any]]]] = []
        offset = 0
        bsize = self._batch_size(mapper.inst_per_record)
        n_batches = max(1, (len(records) + bsize - 1) // bsize)
        read_inst_per_batch = nbytes * conf.io_read_inst_per_byte / n_batches
        read_stack = self.frames.hdfs_read(base)
        for i in range(0, len(records), bsize):
            batch = records[i : i + bsize]
            # The record reader streams: input IO interleaves with map.
            run.emit(
                read_stack,
                OpKind.IO,
                AccessPattern.sequential(max(1.0, _list_bytes(batch))),
                read_inst_per_batch,
                stage_id,
                task_id,
            )
            for rec in batch:
                k, v = self._as_kv(rec, offset)
                offset += estimate_record_bytes(rec)
                mapper.map(k, v, ctx)
            out = ctx.drain()
            run.emit(
                map_stack,
                OpKind.MAP,
                AccessPattern.sequential(
                    max(1.0, _list_bytes(batch) + _list_bytes(out))
                ),
                mapper.inst_per_record * len(batch)
                + conf.inst_collect_per_record * len(out),
                stage_id,
                task_id,
            )
            if out:
                buffer.extend(out)
                out_bytes = _list_bytes(out)
                buffer_bytes += out_bytes
                run.account_alloc(out_bytes, stage_id, task_id)
            if not conf.is_map_only and buffer_bytes >= conf.sort_buffer_bytes:
                spills.append(
                    self._sort_and_spill(run, conf, buffer, stage_id, task_id)
                )
                buffer, buffer_bytes = [], 0.0
        mapper.cleanup(ctx)
        tail = ctx.drain()
        if tail:
            buffer.extend(tail)

        self._merge_counters(conf.name, ctx)
        if conf.is_map_only:
            self._write_output(run, conf, buffer, output_path, task_id, stage_id, "m")
            self._apply_task_faults(run, faults, stage_id, task_id)
            run.finish()
            return

        if buffer:
            spills.append(self._sort_and_spill(run, conf, buffer, stage_id, task_id))

        merged = self._merge_spills(run, conf, spills, stage_id, task_id)
        for part, recs in merged.items():
            self.shuffle.write_block(shuffle_id, map_idx, part, recs)
        self._apply_task_faults(run, faults, stage_id, task_id)
        run.finish()

    def _sort_and_spill(
        self,
        run: _TaskRun,
        conf: HadoopJobConf,
        buffer: list[tuple[Any, Any]],
        stage_id: int,
        task_id: int,
    ) -> dict[int, list[tuple[Any, Any]]]:
        """Partition + quicksort + combine one full map-output buffer."""
        base = run.base_stack
        # Partition pass: route each record to its reducer.
        parts: dict[int, list[tuple[Any, Any]]] = {}
        for rec in buffer:
            parts.setdefault(stable_hash(rec[0]) % conf.n_reduces, []).append(rec)
        run.emit(
            self.frames.with_frames(
                base, (("org.apache.hadoop.mapred.MapTask$MapOutputBuffer", "partition"),)
            ),
            OpKind.SHUFFLE,
            AccessPattern.sequential(max(1.0, _list_bytes(buffer))),
            conf.inst_partition_per_record * len(buffer),
            stage_id,
            task_id,
        )

        sort_stack = self.frames.sort_spill(base)
        out: dict[int, list[tuple[Any, Any]]] = {}
        for part, recs in sorted(parts.items()):
            # JVM object overhead: a buffered key-value pair costs far
            # more than its payload (headers, boxed fields, kvmeta).
            rec_bytes = estimate_record_bytes(recs[0]) + JVM_PAIR_OVERHEAD
            keys = np.array([k for k, _v in recs])

            def emit_pass(n: int, ws: int, _leaf: bool, _rb: int = rec_bytes) -> None:
                run.emit(
                    sort_stack,
                    OpKind.SORT,
                    AccessPattern.random(max(1.0, ws * _rb)),
                    conf.inst_sort_per_element * n,
                    stage_id,
                    task_id,
                )

            order = instrumented_quicksort(
                keys, emit_pass, rng=self.cluster_rng(run.slot)
            )
            sorted_recs = [recs[int(i)] for i in order]
            if conf.combiner is not None:
                sorted_recs = self._run_combiner(
                    run, conf, sorted_recs, stage_id, task_id
                )
            # IFile append runs as each partition finishes, so the spill
            # write interleaves with the sorting/combining of the next
            # partition (these sub-operations are "tightly coupled").
            raw = sum(estimate_record_bytes(r) for r in sorted_recs)
            comp = raw * conf.compression_ratio if conf.compress_map_output else raw
            run.emit(
                self.frames.spill_write(base),
                OpKind.IO,
                AccessPattern.sequential(max(1.0, raw)),
                raw * conf.inst_compress_per_byte
                + comp * conf.io_write_inst_per_byte,
                stage_id,
                task_id,
            )
            out[part] = sorted_recs
        return out

    def _run_combiner(
        self,
        run: _TaskRun,
        conf: HadoopJobConf,
        sorted_recs: list[tuple[Any, Any]],
        stage_id: int,
        task_id: int,
    ) -> list[tuple[Any, Any]]:
        combiner = conf.combiner
        assert combiner is not None
        stack = self.frames.combiner(run.base_stack, combiner.frames)
        ctx = Context()
        consumed = 0
        bsize = self._batch_size(combiner.inst_per_record)
        for _key, group in groupby(sorted_recs, key=lambda r: r[0]):
            values = [v for _k, v in group]
            combiner.reduce(_key, values, ctx)
            consumed += len(values)
            if consumed >= bsize:
                run.emit(
                    stack,
                    OpKind.REDUCE,
                    AccessPattern.random(max(1.0, _list_bytes(sorted_recs) * 0.5)),
                    combiner.inst_per_record * consumed,
                    stage_id,
                    task_id,
                )
                consumed = 0
        if consumed:
            run.emit(
                stack,
                OpKind.REDUCE,
                AccessPattern.random(max(1.0, _list_bytes(sorted_recs) * 0.5)),
                combiner.inst_per_record * consumed,
                stage_id,
                task_id,
            )
        return ctx.drain()

    def _merge_spills(
        self,
        run: _TaskRun,
        conf: HadoopJobConf,
        spills: list[dict[int, list[tuple[Any, Any]]]],
        stage_id: int,
        task_id: int,
    ) -> dict[int, list[tuple[Any, Any]]]:
        """Merge multiple sorted spill runs per partition (map side)."""
        if not spills:
            return {}
        if len(spills) == 1:
            return spills[0]
        merged: dict[int, list[tuple[Any, Any]]] = {}
        merge_stack = self.frames.merge_spills(run.base_stack)
        for part in sorted({p for s in spills for p in s}):
            runs = [s.get(part, []) for s in spills]
            out = list(heapq.merge(*runs, key=lambda r: r[0]))
            merged[part] = out
            run.emit(
                merge_stack,
                OpKind.SORT,
                AccessPattern.sequential(max(1.0, _list_bytes(out))),
                conf.inst_merge_per_record * len(out),
                stage_id,
                task_id,
            )
        return merged

    # -- reduce side --------------------------------------------------------------

    def _run_reduce_task(
        self,
        conf: HadoopJobConf,
        output_path: str,
        reduce_idx: int,
        shuffle_id: int,
        slot: int,
        contention: int,
        stage_id: int,
        faults: TaskFaults | None = None,
    ) -> None:
        task_id = self._task_counter
        self._task_counter += 1
        base = self.frames.reduce_task_stack()
        run = _TaskRun(self, conf, slot, base, contention)

        blocks = self.shuffle.fetch(shuffle_id, reduce_idx)
        fetch_stack = self.frames.fetch(base)
        total_bytes = 0.0
        for recs, nbytes in blocks:
            fetched = (
                nbytes * conf.compression_ratio
                if conf.compress_map_output
                else nbytes
            )
            total_bytes += nbytes
            run.emit(
                fetch_stack,
                OpKind.SHUFFLE,
                AccessPattern.sequential(max(1.0, float(fetched))),
                fetched * conf.shuffle_inst_per_byte
                + (nbytes * conf.inst_compress_per_byte if conf.compress_map_output else 0.0),
                stage_id,
                task_id,
            )
        run.account_alloc(total_bytes, stage_id, task_id)

        # The final merge feeds the reducer's iterator directly, and the
        # record writer flushes as groups complete: merge, reduce, and
        # output IO interleave at batch granularity (they are one
        # "reduce" phase in the paper's Hadoop analysis).
        runs_sorted = [recs for recs, _ in blocks]
        merged = list(heapq.merge(*runs_sorted, key=lambda r: r[0]))

        reducer = conf.reducer
        assert reducer is not None
        reducer.setup()
        merge_stack = self.frames.reduce_merge(base)
        reduce_stack = self.frames.reducer(base, reducer.frames)
        write_stack = self.frames.output_write(base)
        ctx = Context()
        lines: list[str] = []
        bsize = self._batch_size(
            conf.inst_merge_per_record + reducer.inst_per_record
        )
        cur_key: Any = _NO_KEY
        cur_vals: list[Any] = []
        for i in range(0, len(merged), bsize):
            batch = merged[i : i + bsize]
            run.emit(
                merge_stack,
                OpKind.SORT,
                AccessPattern.random(max(1.0, total_bytes * 0.25)),
                conf.inst_merge_per_record * len(batch),
                stage_id,
                task_id,
            )
            for k, v in batch:
                if k != cur_key:
                    if cur_key is not _NO_KEY:
                        reducer.reduce(cur_key, cur_vals, ctx)
                    cur_key, cur_vals = k, []
                cur_vals.append(v)
            run.emit(
                reduce_stack,
                OpKind.REDUCE,
                AccessPattern.random(max(1.0, total_bytes)),
                reducer.inst_per_record * len(batch),
                stage_id,
                task_id,
            )
            drained = ctx.drain()
            if drained:
                out_lines = [f"{k}\t{v}" for k, v in drained]
                nbytes = sum(len(s) + 1 for s in out_lines)
                lines.extend(out_lines)
                run.emit(
                    write_stack,
                    OpKind.IO,
                    AccessPattern.sequential(max(1.0, float(nbytes))),
                    nbytes * conf.io_write_inst_per_byte,
                    stage_id,
                    task_id,
                )
                run.account_alloc(float(nbytes), stage_id, task_id)
        if cur_key is not _NO_KEY:
            reducer.reduce(cur_key, cur_vals, ctx)
        reducer.cleanup(ctx)
        tail = ctx.drain()
        if tail:
            out_lines = [f"{k}\t{v}" for k, v in tail]
            nbytes = sum(len(s) + 1 for s in out_lines)
            lines.extend(out_lines)
            run.emit(
                write_stack,
                OpKind.IO,
                AccessPattern.sequential(max(1.0, float(nbytes))),
                nbytes * conf.io_write_inst_per_byte,
                stage_id,
                task_id,
            )
        self._merge_counters(conf.name, ctx)
        self.fs.append_block(f"{output_path}/part-r-{reduce_idx:05d}", lines)
        self._apply_task_faults(run, faults, stage_id, task_id)
        run.finish()

    def _write_output(
        self,
        run: _TaskRun,
        conf: HadoopJobConf,
        records: list[tuple[Any, Any]],
        output_path: str,
        task_idx: int,
        stage_id: int,
        kind: str,
    ) -> None:
        """TextOutputFormat: serialise records and write to HDFS."""
        lines = [f"{k}\t{v}" for k, v in records]
        nbytes = self.fs.append_block(
            f"{output_path}/part-{kind}-{task_idx:05d}", lines
        )
        run.emit(
            self.frames.output_write(run.base_stack),
            OpKind.IO,
            AccessPattern.sequential(max(1.0, float(nbytes))),
            nbytes * conf.io_write_inst_per_byte,
            stage_id,
            task_idx,
        )

    def cluster_rng(self, slot: int) -> np.random.Generator:
        """The RNG bound to a slot (deterministic per seed)."""
        return self._slot_rngs[slot]

    # -- trace export -----------------------------------------------------------

    def _trace_meta(self) -> dict[str, Any]:
        """Job-level metadata shared by the batch and streaming exports."""
        meta = {
            "n_slots": self.config.n_slots,
            "n_tasks": self._task_counter,
            "hdfs_bytes_read": self.fs.bytes_read,
            "hdfs_bytes_written": self.fs.bytes_written,
            "shuffle_bytes": self.shuffle.bytes_written,
        }
        if self.faults is not None:
            FaultReport.merged_meta(meta, self.faults.report)
        return meta

    def job_trace(self, workload: str, input_name: str = "default") -> JobTrace:
        """Merge per-slot task traces into pseudo-threads and package.

        The paper: "the profiler merges the profiled results from the
        executor threads running on the same core to mimic a long
        running executor thread in Spark."
        """
        merged = [
            ThreadTrace.merged(traces, thread_id=slot)
            for slot, traces in enumerate(self._task_traces)
            if traces
        ]
        return JobTrace(
            framework="hadoop",
            workload=workload,
            input_name=input_name,
            registry=self.registry,
            stack_table=self.stack_table,
            machine=self.config.machine,
            traces=merged,
            stages=list(self._stages),
            meta=self._trace_meta(),
        )

    def stream_trace(
        self,
        run: Callable[[], None],
        workload: str,
        input_name: str = "default",
        *,
        max_queue: int = 256,
    ) -> TraceStream:
        """Run ``run()`` while streaming its trace as events.

        Per-slot pseudo-threads (the batch path's ``ThreadTrace.merged``)
        are assembled incrementally: each finished task's segments go
        out as one batch under its slot's thread id, and the segments
        are dropped instead of retained, so a later :meth:`job_trace`
        sees no threads.
        """
        if self._stream_emit is not None:
            raise RuntimeError("a trace stream is already active on this cluster")

        def produce(emit: Callable[[TraceEvent], None]) -> None:
            self._stream_emit = emit
            self._streamed_slots = set()
            self._stream_seq = {}
            try:
                run()
                emit(JobEnd(self._trace_meta()))
            finally:
                self._stream_emit = None

        return TraceStream(
            framework="hadoop",
            workload=workload,
            input_name=input_name,
            registry=self.registry,
            stack_table=self.stack_table,
            machine=self.config.machine,
            events=pump_events(produce, max_queue=max_queue),
        )


def _list_bytes(records: list[Any]) -> float:
    """Estimated bytes of a record list (first record × count)."""
    if not records:
        return 0.0
    return float(estimate_record_bytes(records[0]) * len(records))
