"""Per-stage instrumentation for the SimProf pipeline.

A process-wide registry of named stages (``trace-gen``, ``profiling``,
``feature-selection``, ``k-means``, ``sampling``) that accumulates wall
time, call counts and arbitrary numeric counters.  The core pipeline
wraps each stage in :func:`stage_timer`; the runtime store captures the
per-computation deltas into artifact manifests; ``simprof stats``
aggregates them back for the user.

The registry deliberately lives here — at the bottom of the runtime
package — so ``repro.core`` can import it without a cycle.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = [
    "StageStats",
    "StageRecord",
    "Instrumentation",
    "ThroughputMeter",
    "get_instrumentation",
    "stage_timer",
    "record_stage",
]


@dataclass
class StageStats:
    """Accumulated totals for one pipeline stage."""

    calls: int = 0
    seconds: float = 0.0
    counters: dict[str, float] = field(default_factory=dict)

    def add(self, seconds: float, counters: dict[str, float] | None = None) -> None:
        """Fold one stage execution into the totals."""
        self.calls += 1
        self.seconds += seconds
        for name, value in (counters or {}).items():
            self.counters[name] = self.counters.get(name, 0.0) + float(value)

    def copy(self) -> "StageStats":
        """An independent snapshot of the totals."""
        return StageStats(
            calls=self.calls, seconds=self.seconds, counters=dict(self.counters)
        )


class StageRecord:
    """Mutable handle yielded by :meth:`Instrumentation.stage`.

    Lets the instrumented code attach counters discovered mid-stage
    (``rec.add(units=n)``) before the elapsed time is recorded.
    """

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}

    def add(self, **counters: float) -> None:
        """Attach (or accumulate) named counters to this execution."""
        for name, value in counters.items():
            self.counters[name] = self.counters.get(name, 0.0) + float(value)


class ThroughputMeter:
    """Per-item emission metering for streaming stages.

    Wraps a :class:`StageRecord` and turns ``tick()`` calls into two
    counters: the item count (``item_key``) and the cumulative
    wall-clock spent between ticks (``latency_key``).  ``simprof
    stats`` divides them back into items/s and mean per-item latency.
    """

    def __init__(
        self,
        record: StageRecord | None,
        *,
        item_key: str = "units",
        latency_key: str = "unit_seconds",
    ) -> None:
        self._record = record
        self._item_key = item_key
        self._latency_key = latency_key
        self._last = time.perf_counter()
        self._items = 0
        self._seconds = 0.0

    def tick(self, n: int = 1) -> None:
        """Record ``n`` items emitted since the previous tick."""
        now = time.perf_counter()
        elapsed = now - self._last
        self._last = now
        self._items += n
        self._seconds += elapsed
        if self._record is not None:
            self._record.add(**{self._item_key: n, self._latency_key: elapsed})

    @property
    def items(self) -> int:
        """Items metered so far."""
        return self._items

    # -- snapshot protocol -------------------------------------------

    def snapshot(self) -> dict:
        """Capture the counters; the interval clock is wall-time.

        ``_last`` is deliberately absent: a restored meter restarts its
        inter-tick clock at restore time, so resumed runs accumulate
        only wall-clock they actually spend (checkpoint identity covers
        results, never timings).
        """
        return {
            "kind": "throughput-meter",
            "items": self._items,
            "seconds": self._seconds,
        }

    def restore(self, state: dict) -> None:
        if state.get("kind") != "throughput-meter":
            raise ValueError(
                f"not a throughput-meter snapshot: {state.get('kind')!r}"
            )
        self._items = int(state["items"])
        self._seconds = float(state["seconds"])
        self._last = time.perf_counter()

    @property
    def items_per_second(self) -> float:
        """Throughput over the metered intervals (0 before any tick)."""
        return self._items / self._seconds if self._seconds > 0 else 0.0


class Instrumentation:
    """Thread-safe accumulator of per-stage timings and counters."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._stages: dict[str, StageStats] = {}

    def record(
        self,
        stage: str,
        seconds: float,
        counters: dict[str, float] | None = None,
    ) -> None:
        """Record one execution of ``stage``."""
        with self._lock:
            self._stages.setdefault(stage, StageStats()).add(seconds, counters)

    @contextmanager
    def stage(self, name: str) -> Iterator[StageRecord]:
        """Time a block as one execution of stage ``name``."""
        rec = StageRecord()
        start = time.perf_counter()
        try:
            yield rec
        finally:
            self.record(name, time.perf_counter() - start, rec.counters)

    def snapshot(self) -> dict[str, StageStats]:
        """Independent copy of all stage totals."""
        with self._lock:
            return {name: stats.copy() for name, stats in self._stages.items()}

    def reset(self) -> None:
        """Drop all accumulated stats."""
        with self._lock:
            self._stages.clear()

    @contextmanager
    def capture(self) -> Iterator[dict[str, StageStats]]:
        """Yield a dict that, on exit, holds the stage deltas of the block.

        Used by the artifact store to attribute stage time to one cached
        computation::

            with instrumentation.capture() as stages:
                value = compute()
            manifest.stages = {k: v.seconds for k, v in stages.items()}
        """
        before = self.snapshot()
        delta: dict[str, StageStats] = {}
        try:
            yield delta
        finally:
            after = self.snapshot()
            for name, stats in after.items():
                prev = before.get(name, StageStats())
                if stats.calls == prev.calls and stats.seconds == prev.seconds:
                    continue
                counters = {
                    k: v - prev.counters.get(k, 0.0)
                    for k, v in stats.counters.items()
                    if v != prev.counters.get(k, 0.0)
                }
                delta[name] = StageStats(
                    calls=stats.calls - prev.calls,
                    seconds=stats.seconds - prev.seconds,
                    counters=counters,
                )


_GLOBAL = Instrumentation()


def get_instrumentation() -> Instrumentation:
    """The process-wide instrumentation registry."""
    return _GLOBAL


def stage_timer(name: str):
    """Shorthand: time a block against the global registry."""
    return _GLOBAL.stage(name)


def record_stage(
    stage: str, seconds: float, counters: dict[str, float] | None = None
) -> None:
    """Shorthand: record one execution against the global registry."""
    _GLOBAL.record(stage, seconds, counters)
