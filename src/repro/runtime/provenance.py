"""Stage-level provenance: the cache as a dataflow graph.

PROBE-style lineage capture for the artifact store.  Every artifact
written through the provenance plane records, in its manifest, the full
identity of the computation that produced it:

* the **logical node** it belongs to (``graph/name``),
* the **parameter digest** of the stage's declared parameters,
* the **upstream artifact keys** it consumed (which recursively encode
  *their* provenance — a Merkle chain over the whole pipeline), and
* a **code fingerprint**: the digest of every project module reachable
  from the stage's declared code roots through the import graph (the
  analysis engine's :class:`~repro.analysis.index.ModuleIndex` supplies
  both the per-file digests and the import edges).

The artifact key is derived from exactly this material, so a stage is
recomputed *iff* its parameters, its reachable code, or anything
upstream of it actually changed — a one-line edit to one estimator
re-executes only the stages whose closure contains that module, and a
warm re-run of an unchanged pipeline touches nothing at all.

Orchestration modules (:data:`ORCHESTRATION_PREFIXES`) are excluded
from closures, the way a build system's own code is not an input to
the artifacts it builds: the runner, the store, the fault plane and the
experiment glue only *move* data between stages, and the movement is
captured structurally by the graph itself.  Stage functions therefore
call the specific subsystems they fingerprint (the profiler, the
featurizer, the samplers) rather than the all-importing facade.

Vocabulary
----------

``stage_fn``
    decorator declaring a stage function: its canonical stage name,
    the external inputs it is allowed to read (enforced by analysis
    rule SPA013) and extra code roots beyond its own module.
``StageGraph`` / ``StageNode``
    a named DAG of stage invocations; nodes carry parameters, named
    upstream edges, and optional *publish aliases* — classic
    ``(kind, params)`` store keys the node's value is also written
    under so the per-spec ``get_profile``/``get_model`` paths
    interoperate with graph-produced artifacts.
``plan_graph``
    resolves every node to its content-addressed key in topological
    order and classifies each miss (``new`` / ``params`` / ``code`` /
    ``upstream``) against the latest prior manifest of the same
    logical node.
``ExperimentRunner.run_graph``
    (in :mod:`repro.runtime.runner`) executes a plan: ready misses fan
    out over ``map_tasks``, workers materialise into the shared store
    and return keys, so serial and parallel runs are byte-identical.
"""

from __future__ import annotations

import importlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, Mapping

from repro.runtime.store import (
    ArtifactManifest,
    ArtifactStore,
    _atomic_write_bytes,
    _jsonable,
    default_store,
    stable_hash,
)

__all__ = [
    "PROVENANCE_VERSION",
    "STAGE_KIND",
    "MODINDEX_KIND",
    "ORCHESTRATION_PREFIXES",
    "CANONICAL_STAGES",
    "CodeIndex",
    "StageNode",
    "StageGraph",
    "NodePlan",
    "stage_fn",
    "stage_spec",
    "fn_ref",
    "resolve_stage_fn",
    "plan_graph",
    "execute_payload",
    "explain_key",
    "lineage",
    "invalidated_entries",
    "provenance_stats",
    "record_graph_run",
]

#: Bump when the key-material schema or the closure semantics change,
#: so entries planned by older engines never alias new ones.
PROVENANCE_VERSION = 1

#: Store kind of graph-produced artifacts (one per stage node).
STAGE_KIND = "stage"

#: Store kind of cached per-module indexes (pass-1 of the analysis
#: engine, reused here for import edges + file digests).
MODINDEX_KIND = "modindex"

#: The pipeline's canonical stage order (documentation + display).
CANONICAL_STAGES = (
    "trace-gen",
    "profile",
    "featurize",
    "phase-fit",
    "estimate",
    "report",
)

#: Module prefixes excluded from code closures: orchestration moves
#: artifacts between stages but never changes their values, exactly as
#: a build tool's own version is not an input to the objects it builds.
#: (``repro.experiments.common`` is the drivers' glue layer; the
#: drivers themselves — ``repro.experiments.fig07_errors`` & co — stay
#: fingerprintable.)
ORCHESTRATION_PREFIXES = (
    "repro.runtime",
    "repro.analysis",
    "repro.faults",
    "repro.cli",
    "repro.experiments.common",
)

#: Attribute carrying a stage function's declaration.
STAGE_ATTR = "__simprof_stage__"

#: Sidecar (non-manifest) file accumulating run_graph counters for
#: ``simprof cache stats``; never part of any cache key.
_STATS_FILE = "provenance_stats.json"

_CAUSES = ("new", "params", "code", "upstream")


# -- stage functions ----------------------------------------------------------


def stage_fn(
    stage: str,
    *,
    reads: tuple[str, ...] = (),
    code: tuple[str, ...] = (),
) -> Callable[[Callable], Callable]:
    """Declare a stage function.

    ``stage`` is the canonical stage name; ``reads`` lists the external
    inputs the body may read beyond its ``(inputs, params)`` arguments,
    as ``"env:NAME"`` / ``"file:path"`` / ``"global:module.NAME"``
    entries (analysis rule SPA013 flags undeclared ones); ``code``
    names extra code-root modules fingerprinted into the stage's
    closure beyond the function's own module.

    A stage function must be a module-level callable with signature
    ``fn(inputs: Mapping[str, Any], params: Mapping[str, Any]) -> Any``
    so pool workers can re-resolve it from its dotted reference.
    """

    def decorate(fn: Callable) -> Callable:
        setattr(
            fn,
            STAGE_ATTR,
            {"stage": stage, "reads": tuple(reads), "code": tuple(code)},
        )
        return fn

    return decorate


def stage_spec(fn: Callable) -> dict[str, Any]:
    """The declaration attached by :func:`stage_fn` (raises if absent)."""
    spec = getattr(fn, STAGE_ATTR, None)
    if spec is None:
        raise TypeError(
            f"{getattr(fn, '__qualname__', fn)!r} is not a stage function "
            "(missing @stage_fn declaration)"
        )
    return spec


def fn_ref(fn: Callable) -> str:
    """Dotted ``module:qualname`` reference of a module-level callable."""
    return f"{fn.__module__}:{fn.__qualname__}"


def resolve_stage_fn(ref: str) -> Callable:
    """Inverse of :func:`fn_ref` (used by pool workers and planners)."""
    module_name, _, qualname = ref.partition(":")
    obj: Any = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    return obj


# -- the code index -----------------------------------------------------------


class CodeIndex:
    """Per-stage code fingerprints from the project import graph.

    Walks the *forward* import closure from a stage's declared code
    roots — project modules only, orchestration prefixes excluded —
    and hashes the sorted ``(module, file digest)`` pairs.  Per-module
    parsing goes through the analysis engine's
    :func:`~repro.analysis.index.build_module_index` and is cached in
    the artifact store under the file's digest, so a warm planning
    pass costs one digest + one store read per reachable module.
    """

    def __init__(
        self,
        store: ArtifactStore | None = None,
        *,
        src_root: str | Path | None = None,
    ) -> None:
        if src_root is None:
            import repro

            src_root = Path(repro.__file__).resolve().parent.parent
        self.src_root = Path(src_root)
        self.store = store
        self._info: dict[str, tuple[str, tuple[str, ...]] | None] = {}
        self._closures: dict[tuple[str, ...], dict[str, str]] = {}

    # -- module resolution ---------------------------------------------------

    def module_path(self, module: str) -> Path | None:
        """Source file of a project module, or None if not a module."""
        base = self.src_root.joinpath(*module.split("."))
        init = base / "__init__.py"
        if init.is_file():
            return init
        path = base.with_suffix(".py")
        return path if path.is_file() else None

    @staticmethod
    def included(module: str) -> bool:
        """Whether a module participates in closures (not orchestration)."""
        if not (module == "repro" or module.startswith("repro.")):
            return False
        return not any(
            module == p or module.startswith(p + ".")
            for p in ORCHESTRATION_PREFIXES
        )

    def _as_module(self, candidate: str) -> str | None:
        """Resolve an import candidate (may name a symbol) to a module."""
        if self.module_path(candidate) is not None:
            return candidate
        parent = candidate.rpartition(".")[0]
        if parent and self.module_path(parent) is not None:
            return parent
        return None

    def _load_info(self, module: str) -> tuple[str, tuple[str, ...]] | None:
        """``(digest, imported project modules)`` for one module."""
        if module in self._info:
            return self._info[module]
        path = self.module_path(module)
        if path is None:
            self._info[module] = None
            return None
        from repro.analysis.index import (
            INDEX_VERSION,
            build_module_index,
            file_digest,
        )

        digest = file_digest(path)

        def compute() -> dict:
            from repro.analysis.base import ModuleContext

            ctx = ModuleContext(
                path.read_text(encoding="utf-8"), path=str(path), module=module
            )
            return build_module_index(ctx, digest=digest).to_dict()

        if self.store is not None:
            data = self.store.get_or_compute(
                MODINDEX_KIND,
                {"module": module, "digest": digest, "index": INDEX_VERSION},
                compute,
            )
        else:
            data = compute()
        deps = []
        for candidate in data["import_modules"]:
            resolved = self._as_module(candidate)
            if resolved is not None and resolved != module:
                deps.append(resolved)
        info = (digest, tuple(sorted(set(deps))))
        self._info[module] = info
        return info

    # -- closures ------------------------------------------------------------

    def closure(self, roots: Iterable[str]) -> dict[str, str]:
        """``module -> digest`` over the reachable, fingerprinted set."""
        key = tuple(sorted(set(roots)))
        if key in self._closures:
            return dict(self._closures[key])
        out: dict[str, str] = {}
        frontier = [m for m in key if self.included(m)]
        while frontier:
            module = frontier.pop()
            if module in out:
                continue
            info = self._load_info(module)
            if info is None:
                continue
            digest, deps = info
            out[module] = digest
            for dep in deps:
                if dep not in out and self.included(dep):
                    frontier.append(dep)
        self._closures[key] = dict(out)
        return out

    def fingerprint(self, roots: Iterable[str]) -> tuple[str, dict[str, str]]:
        """``(digest, modules)`` of the closure from ``roots``."""
        modules = self.closure(roots)
        digest = stable_hash(sorted(modules.items()))[:20]
        return digest, modules


# -- the stage graph ----------------------------------------------------------


@dataclass
class StageNode:
    """One stage invocation in a :class:`StageGraph`."""

    name: str
    stage: str
    fn: str  # dotted "module:qualname" reference
    params: dict[str, Any] = field(default_factory=dict)
    deps: dict[str, str] = field(default_factory=dict)  # input -> node name
    code: tuple[str, ...] = ()  # extra code roots
    publish: tuple[tuple[str, dict[str, Any]], ...] = ()
    reads: tuple[str, ...] = ()


class StageGraph:
    """A named DAG of stage invocations."""

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        self.nodes: dict[str, StageNode] = {}

    def node(
        self,
        name: str,
        fn: Callable | str,
        *,
        params: Mapping[str, Any] | None = None,
        deps: Mapping[str, str] | None = None,
        code: tuple[str, ...] = (),
        publish: Iterable[tuple[str, Mapping[str, Any]]] = (),
    ) -> str:
        """Add a node; returns its name (for wiring downstream deps).

        ``fn`` is a :func:`stage_fn`-decorated callable (or its dotted
        reference); ``deps`` maps the function's input names to
        upstream node names; ``publish`` lists classic ``(kind,
        params)`` aliases the value is also stored under.
        """
        if name in self.nodes:
            raise ValueError(f"duplicate stage node {name!r}")
        func = resolve_stage_fn(fn) if isinstance(fn, str) else fn
        spec = stage_spec(func)
        for dep in (deps or {}).values():
            if dep not in self.nodes:
                raise ValueError(
                    f"node {name!r} depends on unknown node {dep!r}"
                )
        self.nodes[name] = StageNode(
            name=name,
            stage=spec["stage"],
            fn=fn_ref(func),
            params=dict(params or {}),
            deps=dict(deps or {}),
            code=tuple(spec["code"]) + tuple(code),
            publish=tuple((k, dict(p)) for k, p in publish),
            reads=tuple(spec["reads"]),
        )
        return name

    def topo(self) -> list[StageNode]:
        """Topological order, name-sorted within ranks (deterministic)."""
        indeg = {n: 0 for n in self.nodes}
        dependants: dict[str, list[str]] = {n: [] for n in self.nodes}
        for node in self.nodes.values():
            for dep in set(node.deps.values()):
                indeg[node.name] += 1
                dependants[dep].append(node.name)
        ready = sorted(n for n, d in indeg.items() if d == 0)
        order: list[StageNode] = []
        while ready:
            name = ready.pop(0)
            order.append(self.nodes[name])
            grew = False
            for dependant in dependants[name]:
                indeg[dependant] -= 1
                if indeg[dependant] == 0:
                    ready.append(dependant)
                    grew = True
            if grew:
                ready.sort()
        if len(order) != len(self.nodes):
            stuck = sorted(set(self.nodes) - {n.name for n in order})
            raise ValueError(f"stage graph has a cycle through {stuck}")
        return order


# -- planning -----------------------------------------------------------------


@dataclass
class NodePlan:
    """One node's resolved identity: key, lineage record, hit/miss."""

    node: StageNode
    key: str
    material: dict[str, Any]
    record: dict[str, Any]
    depth: int
    cached: bool
    cause: str | None  # None when cached, else new/params/code/upstream

    @property
    def name(self) -> str:
        return self.node.name


def _node_id(graph_name: str, node_name: str) -> str:
    return f"{graph_name}/{node_name}"


def _latest_by_node(store: ArtifactStore) -> dict[str, ArtifactManifest]:
    """Latest stage manifest per logical node id (for miss diagnosis)."""
    latest: dict[str, ArtifactManifest] = {}
    for manifest in store.entries():
        if manifest.kind != STAGE_KIND:
            continue
        node_id = (manifest.provenance or {}).get("node")
        if not node_id:
            continue
        prior = latest.get(node_id)
        if prior is None or manifest.created > prior.created:
            latest[node_id] = manifest
    return latest


def _miss_cause(
    prior: ArtifactManifest | None, record: dict[str, Any]
) -> str:
    """Why a node misses, against the latest prior run of the same node."""
    if prior is None or not prior.provenance:
        return "new"
    old = prior.provenance
    if old.get("params_digest") != record["params_digest"]:
        return "params"
    if (old.get("code") or {}).get("fingerprint") != record["code"][
        "fingerprint"
    ]:
        return "code"
    old_up = {k: v.get("key") for k, v in (old.get("upstream") or {}).items()}
    new_up = {k: v["key"] for k, v in record["upstream"].items()}
    if old_up != new_up:
        return "upstream"
    return "new"  # schema/version drift


def plan_graph(
    graph: StageGraph,
    store: ArtifactStore | None = None,
    *,
    code: CodeIndex | None = None,
) -> list[NodePlan]:
    """Resolve every node's key and provenance record, in topo order."""
    store = store or default_store()
    code = code or CodeIndex(store)
    prior: dict[str, ArtifactManifest] | None = None
    plans: list[NodePlan] = []
    keys: dict[str, str] = {}
    depths: dict[str, int] = {}
    for node in graph.topo():
        fn = resolve_stage_fn(node.fn)
        roots = set(node.code)
        if CodeIndex.included(fn.__module__):
            roots.add(fn.__module__)
        fingerprint, modules = code.fingerprint(roots)
        upstream = {
            inp: {"node": dep, "key": keys[dep]}
            for inp, dep in sorted(node.deps.items())
        }
        material = {
            "v": PROVENANCE_VERSION,
            "stage": node.stage,
            "fn": node.fn,
            "params": dict(node.params),
            "code": fingerprint,
            "upstream": {inp: up["key"] for inp, up in upstream.items()},
        }
        key = store.key_for(STAGE_KIND, material)
        depth = (
            1 + max(depths[dep] for dep in node.deps.values())
            if node.deps
            else 0
        )
        record = {
            "v": PROVENANCE_VERSION,
            "node": _node_id(graph.name, node.name),
            "stage": node.stage,
            "fn": node.fn,
            "reads": list(node.reads),
            "params_digest": stable_hash(dict(node.params))[:20],
            "code": {
                "roots": sorted(roots),
                "fingerprint": fingerprint,
                "modules": dict(sorted(modules.items())),
            },
            "upstream": upstream,
            "depth": depth,
        }
        cached = store.contains(key)
        cause: str | None = None
        if not cached:
            if prior is None:
                prior = _latest_by_node(store)
            cause = _miss_cause(prior.get(record["node"]), record)
        keys[node.name] = key
        depths[node.name] = depth
        plans.append(
            NodePlan(
                node=node,
                key=key,
                material=material,
                record=record,
                depth=depth,
                cached=cached,
                cause=cause,
            )
        )
    return plans


# -- execution ----------------------------------------------------------------


def worker_payload(plan: NodePlan, store: ArtifactStore) -> dict[str, Any]:
    """Self-contained, picklable execution request for one miss."""
    return {
        "store_root": str(store.root),
        "key": plan.key,
        "fn": plan.node.fn,
        "stage": plan.node.stage,
        "params": dict(plan.node.params),
        "dep_keys": {
            inp: up["key"] for inp, up in plan.record["upstream"].items()
        },
        "material": plan.material,
        "record": plan.record,
        "publish": [[k, dict(p)] for k, p in plan.node.publish],
    }


def execute_payload(payload: dict[str, Any]) -> str:
    """Materialise one stage node into the store; return its key.

    The pool entry point of ``run_graph`` (module-level, picklable).
    Values never travel back over the pipe: the parent re-reads the
    store, so serial and parallel executions are byte-identical.  The
    node's value is also written under every publish alias so the
    classic per-spec paths (``get_profile``/``get_model``) hit.
    """
    import time

    from repro.runtime.instrument import get_instrumentation

    store = ArtifactStore(payload["store_root"])
    key = payload["key"]
    value: Any = None
    computed = False
    if not store.contains(key):
        inputs = {
            inp: store.get(dep_key)
            for inp, dep_key in sorted(payload["dep_keys"].items())
        }
        fn = resolve_stage_fn(payload["fn"])
        start = time.perf_counter()
        with get_instrumentation().capture() as stage_delta:
            value = fn(inputs, payload["params"])
        elapsed = time.perf_counter() - start
        store.put(
            key,
            value,
            kind=STAGE_KIND,
            params=payload["material"],
            compute_seconds=elapsed,
            stages={name: s.seconds for name, s in stage_delta.items()},
            counters={
                name: dict(s.counters)
                for name, s in stage_delta.items()
                if s.counters
            },
            provenance=payload["record"],
        )
        computed = True
    for kind, params in payload["publish"]:
        alias = store.key_for(kind, params)
        if store.contains(alias):
            continue
        if not computed:
            value = store.get(key)
            computed = True
        store.put(
            alias,
            value,
            kind=kind,
            params=params,
            provenance=payload["record"],
        )
    return key


# -- store-backed introspection (CLI, stats) ----------------------------------


def lineage(
    store: ArtifactStore, key: str, *, _seen: set[str] | None = None
) -> Iterator[tuple[int, ArtifactManifest]]:
    """Walk a key's recorded ancestry: ``(distance, manifest)`` pairs.

    Depth-first over the upstream keys recorded in each manifest;
    missing ancestors (swept by GC) are silently skipped — lineage is
    an explanation, not an integrity check (``cache verify`` is).
    """
    seen = _seen if _seen is not None else set()
    if key in seen:
        return
    seen.add(key)
    manifest = store.manifest(key)
    if manifest is None:
        return
    yield 0, manifest
    for inp in sorted((manifest.provenance or {}).get("upstream", {})):
        up = manifest.provenance["upstream"][inp]
        for dist, ancestor in lineage(store, up["key"], _seen=seen):
            yield dist + 1, ancestor


def explain_key(store: ArtifactStore, key: str) -> dict[str, Any]:
    """``cache graph --why KEY``: the record plus a diff vs its
    predecessor manifest of the same logical node (if any)."""
    manifest = store.manifest(key)
    if manifest is None or not manifest.provenance:
        raise KeyError(f"no provenance recorded for {key}")
    record = manifest.provenance
    predecessor: ArtifactManifest | None = None
    for other in store.entries():
        if (
            other.kind == STAGE_KIND
            and other.key != key
            and (other.provenance or {}).get("node") == record.get("node")
            and other.created <= manifest.created
        ):
            if predecessor is None or other.created > predecessor.created:
                predecessor = other
    out: dict[str, Any] = {
        "key": key,
        "record": record,
        "predecessor": predecessor.key if predecessor else None,
        "changed": [],
    }
    if predecessor is not None:
        old = predecessor.provenance or {}
        if old.get("params_digest") != record.get("params_digest"):
            out["changed"].append({"what": "params"})
        old_mods = (old.get("code") or {}).get("modules", {})
        new_mods = (record.get("code") or {}).get("modules", {})
        if old_mods != new_mods:
            touched = sorted(
                m
                for m in set(old_mods) | set(new_mods)
                if old_mods.get(m) != new_mods.get(m)
            )
            out["changed"].append({"what": "code", "modules": touched})
        old_up = {
            k: v.get("key") for k, v in (old.get("upstream") or {}).items()
        }
        new_up = {
            k: v.get("key")
            for k, v in (record.get("upstream") or {}).items()
        }
        if old_up != new_up:
            out["changed"].append(
                {
                    "what": "upstream",
                    "inputs": sorted(
                        k
                        for k in set(old_up) | set(new_up)
                        if old_up.get(k) != new_up.get(k)
                    ),
                }
            )
    return out


def invalidated_entries(
    store: ArtifactStore, *, code: CodeIndex | None = None
) -> list[dict[str, Any]]:
    """Stage entries whose recorded code fingerprint is stale *now*.

    Re-fingerprints each stored stage manifest's recorded code roots
    against the current tree: an entry listed here would miss on the
    next planning pass with cause ``code`` (``cache graph
    --invalidated``).
    """
    code = code or CodeIndex(store)
    out: list[dict[str, Any]] = []
    for manifest in sorted(store.entries(), key=lambda m: m.key):
        if manifest.kind != STAGE_KIND or not manifest.provenance:
            continue
        recorded = manifest.provenance.get("code") or {}
        roots = recorded.get("roots") or []
        fingerprint, modules = code.fingerprint(roots)
        if fingerprint == recorded.get("fingerprint"):
            continue
        old_mods = recorded.get("modules", {})
        out.append(
            {
                "key": manifest.key,
                "node": manifest.provenance.get("node", ""),
                "stage": manifest.provenance.get("stage", ""),
                "modules": sorted(
                    m
                    for m in set(old_mods) | set(modules)
                    if old_mods.get(m) != modules.get(m)
                ),
            }
        )
    return out


def provenance_stats(store: ArtifactStore) -> dict[str, Any]:
    """Provenance counters for ``simprof cache stats``.

    Store-derived: stage-entry counts per stage and the lineage depth
    range; plus the accumulated ``run_graph`` session counters (graph
    runs, hits, misses, miss causes) from the stats sidecar.
    """
    per_stage: dict[str, int] = {}
    max_depth = 0
    entries = 0
    for manifest in store.entries():
        if manifest.kind != STAGE_KIND or not manifest.provenance:
            continue
        entries += 1
        stage = manifest.provenance.get("stage", "?")
        per_stage[stage] = per_stage.get(stage, 0) + 1
        max_depth = max(max_depth, int(manifest.provenance.get("depth", 0)))
    counters = {"runs": 0, "hits": 0, "misses": 0, "causes": {}}
    path = store.root / _STATS_FILE
    if path.exists():
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
            counters.update(
                {
                    "runs": int(data.get("runs", 0)),
                    "hits": int(data.get("hits", 0)),
                    "misses": int(data.get("misses", 0)),
                    "causes": {
                        str(k): int(v)
                        for k, v in (data.get("causes") or {}).items()
                    },
                }
            )
        except (OSError, ValueError):
            pass
    return {
        "entries": entries,
        "per_stage": dict(sorted(per_stage.items())),
        "max_depth": max_depth,
        **counters,
    }


def record_graph_run(store: ArtifactStore, plans: list[NodePlan]) -> None:
    """Fold one ``run_graph`` outcome into the stats sidecar.

    Best-effort and non-transactional — these are operator-facing
    counters, not cache-key material; a lost update under concurrent
    writers only undercounts.
    """
    path = store.root / _STATS_FILE
    data: dict[str, Any] = {"runs": 0, "hits": 0, "misses": 0, "causes": {}}
    if path.exists():
        try:
            loaded = json.loads(path.read_text(encoding="utf-8"))
            if isinstance(loaded, dict):
                data.update(loaded)
                data["causes"] = dict(loaded.get("causes") or {})
        except (OSError, ValueError):
            pass
    data["runs"] = int(data.get("runs", 0)) + 1
    data["hits"] = int(data.get("hits", 0)) + sum(p.cached for p in plans)
    data["misses"] = int(data.get("misses", 0)) + sum(
        not p.cached for p in plans
    )
    for plan in plans:
        if plan.cause is not None:
            data["causes"][plan.cause] = data["causes"].get(plan.cause, 0) + 1
    try:
        _atomic_write_bytes(
            path,
            (json.dumps(_jsonable(data), indent=2, sort_keys=True) + "\n").encode(),
        )
    except OSError:
        pass
