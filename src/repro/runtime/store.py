"""Content-addressed artifact store.

Replaces the ad-hoc pickle cache that used to live in
``repro.experiments.common``.  Every artifact (workload profile, phase
model, …) is stored under a key derived from a *stable* hash of the full
parameter set that produced it:

* nested dicts/lists/tuples/dataclasses are canonicalised recursively
  (dict keys sorted at every level — the old ``repr(sorted(...))``
  scheme only sorted the top level and fragmented the cache),
* keys include a store version so recalibrations invalidate cleanly,
* values are written atomically via a unique temporary file +
  ``os.replace``, so concurrent writers (the parallel runner, or two
  benchmark sessions) never observe torn entries,
* every entry carries a JSON manifest: the parameters, when and how long
  it took to compute, per-stage timings, payload size, and a hit
  counter.

The store location defaults to ``~/.cache/simprof-repro`` and is
overridden by ``SIMPROF_CACHE_DIR``.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import time
from dataclasses import dataclass, field, fields, is_dataclass
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator

import numpy as np

from repro.runtime.instrument import get_instrumentation

__all__ = [
    "STORE_VERSION",
    "stable_hash",
    "canonical_repr",
    "digest_arrays",
    "ArtifactManifest",
    "CacheStats",
    "ArtifactStore",
    "default_store",
    "reset_default_stores",
]

# Bump when simulator calibration or the key schema changes so stale
# artifacts stop being served.  (v6 was the last experiments/common.py
# pickle-cache version; v7 is the first store version.)
STORE_VERSION = "v7"


# -- stable hashing -----------------------------------------------------------


def canonical_repr(obj: Any) -> str:
    """Deterministic text encoding of a nested parameter structure.

    Dict keys are sorted at *every* nesting level, dataclasses are
    encoded field-by-field, and floats use ``repr`` (shortest
    round-trip), so two structurally equal parameter sets always encode
    identically regardless of construction order.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return repr(obj)
    if isinstance(obj, float):
        return repr(obj)
    if isinstance(obj, bytes):
        return f"bytes:{obj.hex()}"
    if isinstance(obj, dict):
        items = sorted(
            (canonical_repr(k), canonical_repr(v)) for k, v in obj.items()
        )
        return "{" + ",".join(f"{k}:{v}" for k, v in items) + "}"
    if isinstance(obj, (list, tuple)):
        return "[" + ",".join(canonical_repr(v) for v in obj) + "]"
    if isinstance(obj, (set, frozenset)):
        return "set[" + ",".join(sorted(canonical_repr(v) for v in obj)) + "]"
    if is_dataclass(obj) and not isinstance(obj, type):
        body = {f.name: getattr(obj, f.name) for f in fields(obj)}
        return type(obj).__name__ + canonical_repr(body)
    if isinstance(obj, np.generic):
        return canonical_repr(obj.item())
    if isinstance(obj, np.ndarray):
        return "ndarray" + canonical_repr(obj.tolist())
    if isinstance(obj, Path):
        return f"path:{obj}"
    raise TypeError(
        f"cannot canonicalise {type(obj).__name__!r} for cache hashing; "
        "pass plain dicts/lists/scalars/dataclasses"
    )


def stable_hash(obj: Any) -> str:
    """SHA-256 over the canonical encoding of ``obj``."""
    return hashlib.sha256(canonical_repr(obj).encode()).hexdigest()


def digest_arrays(parts: Iterable[Any]) -> str:
    """SHA-256 over a sequence of scalars, strings and ndarrays.

    The fast-path sibling of :func:`stable_hash` for bulk numeric
    content (e.g. a profile's per-unit arrays): ndarrays are hashed
    from their raw buffer (dtype and shape included, C-order enforced)
    instead of being canonicalised element by element, which keeps
    digesting a 10⁵-unit profile in the milliseconds.  Scalars and
    strings hash via ``repr``; every part is length-framed so adjacent
    parts cannot collide by concatenation.
    """
    h = hashlib.sha256()
    for part in parts:
        if isinstance(part, np.ndarray):
            arr = np.ascontiguousarray(part)
            head = f"nd:{arr.dtype.str}:{arr.shape}:".encode()
            h.update(head)
            h.update(arr.tobytes())
        elif isinstance(part, bytes):
            h.update(b"b:")
            h.update(part)
        else:
            h.update(b"s:" + repr(part).encode())
        h.update(b"\x00")
    return h.hexdigest()


def _jsonable(obj: Any) -> Any:
    """Best-effort conversion of params to JSON for the manifest."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, dict):
        # Key-sorted so the manifest bytes do not depend on insertion
        # order (json.dumps sort_keys only helps once keys are strings).
        return {
            str(k): _jsonable(v)
            for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))
        }
    if isinstance(obj, (set, frozenset)):
        # Sets have no stable iteration order; sort the rendered items
        # so two runs produce byte-identical manifests.
        return sorted((_jsonable(v) for v in obj), key=repr)
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if is_dataclass(obj) and not isinstance(obj, type):
        return {f.name: _jsonable(getattr(obj, f.name)) for f in fields(obj)}
    if isinstance(obj, np.generic):
        return obj.item()
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    return repr(obj)


# -- manifests ----------------------------------------------------------------


@dataclass
class ArtifactManifest:
    """Sidecar metadata for one store entry."""

    key: str
    kind: str
    version: str = STORE_VERSION
    params: dict[str, Any] = field(default_factory=dict)
    created: float = 0.0
    compute_seconds: float = 0.0
    size_bytes: int = 0
    hits: int = 0
    stages: dict[str, float] = field(default_factory=dict)
    # Per-stage numeric counters captured during the compute (e.g. the
    # streaming profiler's units / unit_seconds), keyed stage → counter.
    counters: dict[str, dict[str, float]] = field(default_factory=dict)
    # SHA-256 of the pickled payload; empty on entries written before
    # integrity checking existed (those read as "unverified").
    payload_sha256: str = ""
    # Stage-level lineage (see repro.runtime.provenance): the logical
    # node id, upstream artifact keys, parameter digest, and the code
    # fingerprint of the stage's reachable-module closure.  Empty for
    # artifacts written outside the provenance plane.
    provenance: dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps(
            {
                "key": self.key,
                "kind": self.kind,
                "version": self.version,
                "params": self.params,
                "created": self.created,
                "compute_seconds": self.compute_seconds,
                "size_bytes": self.size_bytes,
                "hits": self.hits,
                "stages": self.stages,
                "counters": self.counters,
                "payload_sha256": self.payload_sha256,
                "provenance": self.provenance,
            },
            indent=2,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "ArtifactManifest":
        data = json.loads(text)
        return cls(
            key=data["key"],
            kind=data["kind"],
            version=data.get("version", "?"),
            params=data.get("params", {}),
            created=data.get("created", 0.0),
            compute_seconds=data.get("compute_seconds", 0.0),
            size_bytes=data.get("size_bytes", 0),
            hits=data.get("hits", 0),
            stages=data.get("stages", {}),
            counters=data.get("counters", {}),
            payload_sha256=data.get("payload_sha256", ""),
            provenance=data.get("provenance", {}),
        )


@dataclass
class CacheStats:
    """Per-process hit/miss counters for one store instance."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    puts: int = 0

    def snapshot(self) -> "CacheStats":
        return CacheStats(self.memory_hits, self.disk_hits, self.misses, self.puts)


# -- the store ----------------------------------------------------------------


def _atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (unique tempfile + replace).

    Safe under concurrent writers: each writer gets its own temporary
    file in the same directory, and ``os.replace`` is atomic on POSIX,
    so readers see either the old complete entry or the new one.
    """
    fd = tempfile.NamedTemporaryFile(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp", delete=False
    )
    try:
        fd.write(data)
        fd.flush()
        fd.close()
        os.replace(fd.name, path)
    except BaseException:
        fd.close()
        with _suppress_oserror():
            os.unlink(fd.name)
        raise


class _suppress_oserror:
    def __enter__(self):  # pragma: no cover - trivial
        return self

    def __exit__(self, exc_type, exc, tb):
        return exc_type is not None and issubclass(exc_type, OSError)


class ArtifactStore:
    """Content-addressed pickle store with manifests and a memory tier."""

    def __init__(self, root: str | Path | None = None) -> None:
        if root is None:
            root = os.environ.get("SIMPROF_CACHE_DIR") or (
                Path.home() / ".cache" / "simprof-repro"
            )
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()
        self._memory: dict[str, Any] = {}

    # -- keys -----------------------------------------------------------------

    def key_for(self, kind: str, params: dict[str, Any]) -> str:
        """Content-addressed key: kind + store version + stable hash."""
        return f"{kind}-{STORE_VERSION}-{stable_hash(params)[:20]}"

    # -- paths ----------------------------------------------------------------

    def _value_path(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    def _manifest_path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    # -- core operations ------------------------------------------------------

    def contains(self, key: str) -> bool:
        """True if the entry is in memory or on disk."""
        return key in self._memory or self._value_path(key).exists()

    def get(self, key: str) -> Any:
        """Load an entry, or raise ``KeyError``.

        Disk hits are promoted to the memory tier and bump the
        manifest's hit counter (best-effort, atomic).
        """
        if key in self._memory:
            self.stats.memory_hits += 1
            return self._memory[key]
        path = self._value_path(key)
        try:
            payload = path.read_bytes()
        except OSError:
            raise KeyError(key) from None
        manifest = self.manifest(key)
        if (
            manifest is not None
            and manifest.payload_sha256
            and hashlib.sha256(payload).hexdigest() != manifest.payload_sha256
        ):
            # Bit-rot or truncation: never unpickle bytes that fail the
            # manifest digest — park the evidence and let the caller
            # recompute.
            self.quarantine(key)
            raise KeyError(key)
        try:
            value = pickle.loads(payload)
        except Exception:
            # Corrupt entry (torn write from a killed process, version
            # drift): drop it so the caller recomputes.
            self.delete(key)
            raise KeyError(key) from None
        self.stats.disk_hits += 1
        self._memory[key] = value
        self._record_hit(key)
        return value

    def put(
        self,
        key: str,
        value: Any,
        *,
        kind: str | None = None,
        params: dict[str, Any] | None = None,
        compute_seconds: float = 0.0,
        stages: dict[str, float] | None = None,
        counters: dict[str, dict[str, float]] | None = None,
        provenance: dict[str, Any] | None = None,
    ) -> ArtifactManifest:
        """Store a value and its manifest atomically."""
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        manifest = ArtifactManifest(
            key=key,
            kind=kind or key.split("-", 1)[0],
            params=_jsonable(params or {}),
            created=time.time(),
            compute_seconds=compute_seconds,
            size_bytes=len(payload),
            stages=stages or {},
            counters=counters or {},
            payload_sha256=hashlib.sha256(payload).hexdigest(),
            provenance=_jsonable(provenance or {}),
        )
        _atomic_write_bytes(self._value_path(key), payload)
        _atomic_write_bytes(
            self._manifest_path(key), manifest.to_json().encode()
        )
        self._memory[key] = value
        self.stats.puts += 1
        return manifest

    def get_or_compute(
        self,
        kind: str,
        params: dict[str, Any],
        compute: Callable[[], Any],
        *,
        provenance: dict[str, Any] | None = None,
    ) -> Any:
        """The one-call workhorse: load by derived key or compute-and-store.

        Stage timings recorded (via the global instrumentation) while
        ``compute`` runs are captured into the entry's manifest.
        """
        key = self.key_for(kind, params)
        try:
            return self.get(key)
        except KeyError:
            pass
        self.stats.misses += 1
        instrumentation = get_instrumentation()
        start = time.perf_counter()
        with instrumentation.capture() as stage_delta:
            value = compute()
        elapsed = time.perf_counter() - start
        self.put(
            key,
            value,
            kind=kind,
            params=params,
            compute_seconds=elapsed,
            stages={name: s.seconds for name, s in stage_delta.items()},
            counters={
                name: dict(s.counters)
                for name, s in stage_delta.items()
                if s.counters
            },
            provenance=provenance,
        )
        return value

    def read_payload(self, key: str) -> bytes:
        """Raw on-disk payload bytes for ``key``, or raise ``KeyError``.

        The replication plane ships entries byte-for-byte — no
        unpickle, no digest check (the caller verifies against the
        manifest), no hit-counter bump.
        """
        try:
            return self._value_path(key).read_bytes()
        except OSError:
            raise KeyError(key) from None

    def install_payload(
        self, key: str, payload: bytes, manifest: ArtifactManifest
    ) -> None:
        """Adopt already-serialised bytes + manifest verbatim.

        The write path for pulled replicas: the exact payload the
        origin store produced is placed on disk (never re-pickled, so
        digests keep matching across stores), and any stale memory-tier
        object for the key is dropped so the next ``get`` deserialises
        the installed bytes.
        """
        _atomic_write_bytes(self._value_path(key), payload)
        _atomic_write_bytes(
            self._manifest_path(key), manifest.to_json().encode()
        )
        self._memory.pop(key, None)

    def delete(self, key: str) -> None:
        """Remove an entry (value + manifest + memory tier)."""
        self._memory.pop(key, None)
        self._value_path(key).unlink(missing_ok=True)
        self._manifest_path(key).unlink(missing_ok=True)

    def wipe(self) -> int:
        """Destroy *everything*: entries, quarantine, transfers, memory.

        The disaster-recovery drill's "lost disk" primitive — after a
        wipe the store is indistinguishable from a brand-new empty
        root.  Returns the number of files removed.
        """
        removed = 0
        self._memory.clear()
        for pattern in ("*.pkl", "*.json", ".*.tmp"):
            for path in list(self.root.glob(pattern)):
                with _suppress_oserror():
                    path.unlink()
                    removed += 1
        for sub in ("quarantine", "transfer"):
            subdir = self.root / sub
            if subdir.is_dir():
                for path in list(subdir.iterdir()):
                    with _suppress_oserror():
                        path.unlink()
                        removed += 1
                with _suppress_oserror():
                    subdir.rmdir()
        return removed

    def quarantine(self, key: str) -> None:
        """Move an entry's files into ``<root>/quarantine/`` for autopsy.

        Unlike :meth:`delete` the bytes survive (same filenames, new
        directory), but the entry stops being served: the next ``get``
        misses and the caller recomputes.
        """
        qdir = self.root / "quarantine"
        qdir.mkdir(exist_ok=True)
        self._memory.pop(key, None)
        for path in (self._value_path(key), self._manifest_path(key)):
            if path.exists():
                with _suppress_oserror():
                    os.replace(path, qdir / path.name)

    def verify(self, *, repair: bool = False) -> dict[str, list[str]]:
        """Integrity-check every on-disk payload against its manifest.

        Returns ``{"ok": [...], "corrupt": [...], "unverified": [...]}``
        (entry keys, sorted).  ``corrupt`` means the payload bytes no
        longer match the manifest's recorded SHA-256; ``unverified``
        means no digest was recorded (entry predates integrity
        checking, or its manifest is missing/corrupt).  With
        ``repair=True`` corrupt entries are quarantined.
        """
        out: dict[str, list[str]] = {"ok": [], "corrupt": [], "unverified": []}
        for path in sorted(self.root.glob("*.pkl")):
            key = path.stem
            manifest = self.manifest(key)
            if manifest is None or not manifest.payload_sha256:
                out["unverified"].append(key)
                continue
            try:
                digest = hashlib.sha256(path.read_bytes()).hexdigest()
            except OSError:
                # Deleted between glob and read — nothing left to check.
                continue
            if digest == manifest.payload_sha256:
                out["ok"].append(key)
            else:
                out["corrupt"].append(key)
                if repair:
                    self.quarantine(key)
        return out

    def clear_memory(self) -> None:
        """Drop the in-process tier (disk entries survive)."""
        self._memory.clear()

    # -- manifests and maintenance -------------------------------------------

    def manifest(self, key: str) -> ArtifactManifest | None:
        """The manifest for ``key``, or None if absent/corrupt."""
        try:
            return ArtifactManifest.from_json(self._manifest_path(key).read_text())
        except Exception:
            return None

    def manifest_status(self, key: str) -> str:
        """``"ok"``, ``"missing"``, or ``"corrupt"`` for the manifest file.

        Lets callers (``simprof stats``, ``simprof cache ls``) count a
        half-written manifest separately from an absent one instead of
        crashing on it.
        """
        path = self._manifest_path(key)
        try:
            ArtifactManifest.from_json(path.read_text())
        except FileNotFoundError:
            return "missing"
        except Exception:
            return "corrupt"
        return "ok"

    def _record_hit(self, key: str) -> None:
        """Bump the on-disk hit counter (best-effort)."""
        manifest = self.manifest(key)
        if manifest is None:
            return
        manifest.hits += 1
        try:
            _atomic_write_bytes(
                self._manifest_path(key), manifest.to_json().encode()
            )
        except OSError:  # pragma: no cover - read-only cache dirs etc.
            pass

    def entries(self) -> Iterator[ArtifactManifest]:
        """Manifests of all on-disk entries (synthesised if missing)."""
        for path in sorted(self.root.glob("*.pkl")):
            key = path.stem
            manifest = self.manifest(key)
            if manifest is None:
                parts = key.split("-")
                try:
                    stat = path.stat()
                except OSError:
                    # Entry vanished between glob and stat (concurrent
                    # gc): skip it rather than crash the listing.
                    continue
                manifest = ArtifactManifest(
                    key=key,
                    kind=parts[0] if parts else "?",
                    version=parts[1] if len(parts) > 2 else "?",
                    size_bytes=stat.st_size,
                    created=stat.st_mtime,
                )
            yield manifest

    #: Orphaned writer tempfiles younger than this survive ``gc`` — a
    #: live concurrent writer's in-flight file must not be reaped.
    TMP_GRACE_SECONDS = 3600.0

    def gc(
        self,
        *,
        max_age_days: float | None = None,
        kind: str | None = None,
        stale_only: bool = False,
        everything: bool = False,
        dry_run: bool = False,
        tmp_grace_seconds: float | None = None,
    ) -> tuple[int, int]:
        """Delete entries; returns (entries removed, bytes reclaimed).

        ``stale_only`` removes entries from other store versions;
        ``max_age_days`` removes entries older than that; ``everything``
        removes all (optionally filtered by ``kind``).  Orphaned
        ``.*.tmp`` files are only reaped once older than
        ``tmp_grace_seconds`` (default :data:`TMP_GRACE_SECONDS`), so a
        concurrent writer's half-written file is never destroyed.
        """
        now = time.time()
        removed = 0
        reclaimed = 0
        for manifest in list(self.entries()):
            if kind is not None and manifest.kind != kind:
                continue
            dead = everything
            if stale_only and manifest.version != STORE_VERSION:
                dead = True
            if (
                max_age_days is not None
                and manifest.created
                and now - manifest.created > max_age_days * 86400.0
            ):
                dead = True
            if not dead:
                continue
            removed += 1
            reclaimed += manifest.size_bytes or 0
            if not dry_run:
                self.delete(manifest.key)
        # Sweep orphaned temp files from crashed writers — but only
        # past the grace period: a young tempfile may belong to a live
        # writer about to os.replace() it into place.
        if not dry_run:
            grace = (
                self.TMP_GRACE_SECONDS
                if tmp_grace_seconds is None
                else max(0.0, tmp_grace_seconds)
            )
            for tmp in self.root.glob(".*.tmp"):
                with _suppress_oserror():
                    if now - tmp.stat().st_mtime > grace:
                        tmp.unlink()
        return removed, reclaimed


# -- default store registry ---------------------------------------------------

_DEFAULT_STORES: dict[Path, ArtifactStore] = {}


def default_store() -> ArtifactStore:
    """The process-default store for the current ``SIMPROF_CACHE_DIR``.

    One instance (and hence one memory tier and one stats counter) per
    resolved root, so tests that point ``SIMPROF_CACHE_DIR`` at a tmp
    dir are isolated automatically.
    """
    root = os.environ.get("SIMPROF_CACHE_DIR") or str(
        Path.home() / ".cache" / "simprof-repro"
    )
    path = Path(root)
    store = _DEFAULT_STORES.get(path)
    if store is None:
        store = ArtifactStore(path)
        _DEFAULT_STORES[path] = store
    return store


def reset_default_stores() -> None:
    """Forget all default-store instances (used by tests)."""
    _DEFAULT_STORES.clear()
