"""The pipeline's stage functions and per-spec graph wiring.

Each function here is one declared stage of the SimProf pipeline
(``trace-gen → profile → featurize → phase-fit → estimate``), shaped
for the provenance plane: ``fn(inputs, params) -> value``, module-level
and picklable, calling the *specific* subsystem it fingerprints rather
than the all-importing :class:`~repro.core.pipeline.SimProf` facade —
so a stage's declared code roots stay tight and a one-line edit to an
estimator never invalidates trace generation.

This module itself lives under ``repro.runtime`` and is therefore
orchestration (excluded from closures); the ``code=`` declarations on
each stage name what actually computes the value.

:func:`spec_nodes` wires the chain for one :class:`RunSpec` into a
:class:`~repro.runtime.provenance.StageGraph`, publishing the classic
``("profile", …)`` / ``("model", …)`` aliases so per-spec callers
(``get_profile``/``get_model``, the batch runner) hit artifacts the
graph produced and vice versa.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.runtime.instrument import stage_timer
from repro.runtime.provenance import StageGraph, stage_fn
from repro.runtime.runner import RunSpec

__all__ = [
    "stage_trace_gen",
    "stage_profile",
    "stage_featurize",
    "stage_phase_fit",
    "stage_estimate",
    "spec_label",
    "spec_nodes",
    "trace_params",
]


@stage_fn(
    "trace-gen",
    reads=("global:repro.datagen.seeds.GRAPH_INPUTS",),
    code=("repro.workloads", "repro.datagen"),
)
def stage_trace_gen(
    inputs: Mapping[str, Any], params: Mapping[str, Any]
) -> Any:
    """Run the workload; the raw job trace is the artifact."""
    from repro.datagen.seeds import GRAPH_INPUTS
    from repro.workloads import run_workload

    graph = GRAPH_INPUTS[params["graph"]] if params["graph"] else None
    with stage_timer("trace-gen"):
        return run_workload(
            params["workload"],
            params["framework"],
            scale=params["scale"],
            seed=params["seed"],
            graph=graph,
            input_name=params["input_name"],
            params=dict(params["params"]) or None,
        )


@stage_fn("profile", code=("repro.core.profiler",))
def stage_profile(inputs: Mapping[str, Any], params: Mapping[str, Any]) -> Any:
    """Profile the trace's busiest thread into per-unit vectors."""
    from repro.core.profiler import SimProfProfiler

    profiler = SimProfProfiler(params["profiler"])
    with stage_timer("profiling") as rec:
        job = profiler.profile(inputs["trace"])
        rec.add(units=job.n_units)
    return job


@stage_fn("featurize", code=("repro.core.features",))
def stage_featurize(
    inputs: Mapping[str, Any], params: Mapping[str, Any]
) -> Any:
    """Select the feature space and assemble the training matrix."""
    from repro.core.features import FeatureSpace

    with stage_timer("feature-selection") as rec:
        space, matrix = FeatureSpace.fit(inputs["job"], top_k=params["top_k"])
        rec.add(features=space.n_features)
    return (space, matrix)


@stage_fn("phase-fit", code=("repro.core.phases",))
def stage_phase_fit(
    inputs: Mapping[str, Any], params: Mapping[str, Any]
) -> Any:
    """Cluster the featurized units into phases (silhouette k-sweep)."""
    from repro.core.phases import PhaseModel

    # jobs=1: graph-level parallelism owns the fan-out; pool workers
    # must never nest process pools.
    return PhaseModel.fit(
        inputs["job"],
        top_k=params["top_k"],
        max_phases=params["max_phases"],
        score_threshold=params["score_threshold"],
        seed=params["seed"],
        jobs=1,
        features=inputs["features"],
    )


@stage_fn("estimate", code=("repro.core.sampling",))
def stage_estimate(
    inputs: Mapping[str, Any], params: Mapping[str, Any]
) -> Any:
    """Stratified point selection with optimal allocation."""
    import numpy as np

    from repro.core.sampling import stratified_sample

    job = inputs["job"]
    model = inputs["model"]
    cpi = job.profile.cpi()
    n = max(min(params["n_points"], len(cpi)), model.k)
    # The seed IS a parameter — it arrives via the stage's params
    # mapping (spec.simprof.seed), which the provenance key hashes.
    rng = np.random.default_rng(params["seed"])  # simprof: ignore[SPA003] -- seeded from stage params, part of the cache key
    with stage_timer("sampling") as rec:
        est = stratified_sample(model.assignments, cpi, n, rng=rng, k=model.k)
        rec.add(points=len(est.selected))
    return est


# -- per-spec wiring ----------------------------------------------------------


def spec_label(spec: RunSpec) -> str:
    """Graph-unique display label for one spec's node chain."""
    suffix = spec.input_name or spec.graph_name
    return f"{spec.label}@{suffix}" if suffix else spec.label


def trace_params(spec: RunSpec) -> dict[str, Any]:
    """The trace-gen stage's parameters for one spec.

    Deliberately *excludes* the SimProf knobs: the raw trace depends
    only on the workload request, so retuning clustering or sampling
    never regenerates traces.
    """
    return {
        "workload": spec.workload,
        "framework": spec.framework,
        "scale": spec.scale,
        "seed": spec.seed,
        "graph": spec.graph_name or "",
        "input_name": spec.input_name or spec.graph_name or "default",
        "params": dict(spec.params or {}),
    }


def _ensure(
    graph: StageGraph, name: str, fn, **kwargs: Any
) -> str:
    """Add a node, or reuse an identical existing one.

    Several figures share the same twelve specs; building them into one
    suite graph must collapse the shared chains to single nodes.  A
    same-named node with *different* wiring is a real conflict.
    """
    existing = graph.nodes.get(name)
    if existing is None:
        return graph.node(name, fn, **kwargs)
    probe = StageGraph(graph.name)
    probe.nodes = dict(graph.nodes)
    del probe.nodes[name]
    probe.node(name, fn, **kwargs)
    if probe.nodes[name] != existing:
        raise ValueError(f"conflicting definitions for stage node {name!r}")
    return name


def spec_nodes(
    graph: StageGraph,
    spec: RunSpec,
    *,
    want: str = "model",
    n_points: int | None = None,
) -> dict[str, str]:
    """Wire one spec's stage chain into ``graph``; return node names.

    Returns ``{"trace": …, "profile": …}`` plus ``"features"`` and
    ``"model"`` when ``want="model"``, plus ``"estimate"`` when
    ``n_points`` is given.  Chains already present (another figure
    shares the spec) are reused.
    """
    label = spec_label(spec)
    cfg = spec.simprof
    trace = _ensure(
        graph,
        f"trace-gen:{label}",
        stage_trace_gen,
        params=trace_params(spec),
    )
    profile = _ensure(
        graph,
        f"profile:{label}",
        stage_profile,
        params={"profiler": cfg.profiler_config()},
        deps={"trace": trace},
        publish=[("profile", spec.profile_params())],
    )
    nodes = {"trace": trace, "profile": profile}
    if want == "model":
        from repro.core.features import FEATURIZER_VERSION

        features = _ensure(
            graph,
            f"featurize:{label}",
            stage_featurize,
            params={
                "top_k": cfg.top_k_methods,
                "featurizer": FEATURIZER_VERSION,
            },
            deps={"job": profile},
        )
        model = _ensure(
            graph,
            f"phase-fit:{label}",
            stage_phase_fit,
            params={
                "top_k": cfg.top_k_methods,
                "max_phases": cfg.max_phases,
                "score_threshold": cfg.silhouette_threshold,
                "seed": cfg.seed,
            },
            deps={"job": profile, "features": features},
            publish=[("model", spec.model_params())],
        )
        nodes.update(features=features, model=model)
        if n_points is not None:
            estimate = _ensure(
                graph,
                f"estimate:{label}",
                stage_estimate,
                params={"n_points": int(n_points), "seed": cfg.seed},
                deps={"job": profile, "model": model},
            )
            nodes["estimate"] = estimate
    return nodes
