"""Versioned, byte-stable snapshot codec for suspendable pipelines.

Every stateful component of the streaming pipeline implements the
:class:`Snapshotable` protocol: ``snapshot()`` captures the complete
mutable state as a plain dict, and ``restore(state)`` on a
freshly-constructed instance of the same configuration rebuilds it so
that subsequent behaviour is bit-identical — same units, same phases,
same RNG draws.

The codec here turns those dicts into canonical bytes:

* dict keys are sorted, separators are fixed, output is ASCII — the
  same logical state always encodes to the same byte string, so
  checkpoints are content-addressable and ``state_digest`` is a
  meaningful identity;
* ``numpy`` arrays are tagged base64 payloads carrying dtype and shape
  (bit-exact round-trip, including structured dtypes such as
  ``SEGMENT_DTYPE``);
* ``bytes`` values are tagged base64;
* PCG64 bit-generator state rides as plain JSON integers — Python ints
  are arbitrary precision, so the 128-bit ``state``/``inc`` words
  round-trip exactly.

``SNAPSHOT_VERSION`` stamps every checkpoint manifest; decoding a
payload whose embedded version differs is refused rather than
misinterpreted.
"""

from __future__ import annotations

import base64
import hashlib
import json
from typing import Any, Protocol, runtime_checkable

import numpy as np

__all__ = [
    "SNAPSHOT_VERSION",
    "Snapshotable",
    "SnapshotError",
    "decode_state",
    "encode_state",
    "restore_rng",
    "rng_state",
    "state_digest",
]

SNAPSHOT_VERSION = "v1"

_NDARRAY_TAG = "__ndarray__"
_BYTES_TAG = "__bytes__"
_VERSION_KEY = "__snapshot_version__"


class SnapshotError(ValueError):
    """A snapshot payload could not be encoded or decoded."""


@runtime_checkable
class Snapshotable(Protocol):
    """Common protocol for suspendable pipeline components.

    ``snapshot()`` must capture *all* mutable state; ``restore(state)``
    must accept the exact dict a prior ``snapshot()`` returned (or its
    ``encode_state``/``decode_state`` round-trip) and leave the
    instance behaviourally bit-identical to the one snapshotted.
    ``restore(snapshot())`` is a fixed point: snapshotting again
    yields an equal state dict.
    """

    def snapshot(self) -> dict: ...

    def restore(self, state: dict) -> None: ...


def _to_jsonable(obj: Any) -> Any:
    """Recursively convert ``obj`` into canonical-JSON-safe values."""
    if isinstance(obj, np.ndarray):
        if not obj.flags.c_contiguous:
            obj = np.ascontiguousarray(obj)
        return {
            _NDARRAY_TAG: obj.dtype.str
            if obj.dtype.names is None
            else json.loads(json.dumps(obj.dtype.descr)),
            "shape": list(obj.shape),
            "data": base64.b64encode(obj.tobytes()).decode("ascii"),
        }
    if isinstance(obj, (bytes, bytearray)):
        return {_BYTES_TAG: base64.b64encode(bytes(obj)).decode("ascii")}
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.bool_):
        return bool(obj)
    if isinstance(obj, dict):
        out = {}
        for key in obj:
            if not isinstance(key, str):
                raise SnapshotError(
                    f"snapshot dict keys must be str, got {type(key).__name__}"
                )
            out[key] = _to_jsonable(obj[key])
        return out
    if isinstance(obj, (list, tuple)):
        return [_to_jsonable(item) for item in obj]
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise SnapshotError(f"cannot snapshot value of type {type(obj).__name__}")


def _from_jsonable(obj: Any) -> Any:
    if isinstance(obj, dict):
        if _NDARRAY_TAG in obj:
            descr = obj[_NDARRAY_TAG]
            dtype = np.dtype(
                [tuple(fld) for fld in descr] if isinstance(descr, list) else descr
            )
            raw = base64.b64decode(obj["data"])
            return np.frombuffer(raw, dtype=dtype).reshape(obj["shape"]).copy()
        if _BYTES_TAG in obj:
            return base64.b64decode(obj[_BYTES_TAG])
        return {key: _from_jsonable(value) for key, value in sorted(obj.items())}
    if isinstance(obj, list):
        return [_from_jsonable(item) for item in obj]
    return obj


def encode_state(state: dict) -> bytes:
    """Serialize a snapshot dict to canonical, byte-stable JSON bytes."""
    if not isinstance(state, dict):
        raise SnapshotError("snapshot state must be a dict")
    payload = _to_jsonable(state)
    payload[_VERSION_KEY] = SNAPSHOT_VERSION
    try:
        text = json.dumps(
            payload,
            sort_keys=True,
            separators=(",", ":"),
            ensure_ascii=True,
            allow_nan=False,
        )
    except ValueError as exc:  # non-finite float slipped through
        raise SnapshotError(f"snapshot state is not JSON-encodable: {exc}") from exc
    return text.encode("ascii")


def decode_state(data: bytes) -> dict:
    """Inverse of :func:`encode_state`; refuses version mismatches."""
    try:
        payload = json.loads(data.decode("ascii"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SnapshotError(f"snapshot payload is corrupt: {exc}") from exc
    if not isinstance(payload, dict):
        raise SnapshotError("snapshot payload is not a dict")
    version = payload.pop(_VERSION_KEY, None)
    if version != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"snapshot version mismatch: payload {version!r}, "
            f"expected {SNAPSHOT_VERSION!r}"
        )
    return _from_jsonable(payload)


def state_digest(state: dict | bytes) -> str:
    """SHA-256 hex digest of the canonical encoding of ``state``."""
    data = state if isinstance(state, bytes) else encode_state(state)
    return hashlib.sha256(data).hexdigest()


def rng_state(gen: np.random.Generator) -> dict:
    """JSON-safe capture of a Generator's bit-generator state.

    PCG64's 128-bit ``state``/``inc`` words are Python ints and encode
    exactly through JSON (arbitrary-precision), so restoring leaves the
    draw stream at the identical position.
    """
    return json.loads(json.dumps(gen.bit_generator.state))


def restore_rng(state: dict) -> np.random.Generator:
    """Rebuild a Generator positioned exactly at ``state``."""
    name = state.get("bit_generator", "PCG64")
    bit_generator = getattr(np.random, name)()
    bit_generator.state = state
    return np.random.Generator(bit_generator)
