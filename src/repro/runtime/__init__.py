"""The execution engine: artifact store, batch runner, instrumentation.

Three layers every experiment driver builds on:

* :mod:`repro.runtime.store` — content-addressed artifact store with
  stable parameter hashing, atomic writes, versioned manifests and hit
  counters (``SIMPROF_CACHE_DIR`` sets the location);
* :mod:`repro.runtime.runner` — batch execution of
  :class:`~repro.runtime.runner.RunSpec` lists across a process pool
  (``SIMPROF_JOBS``), cache-aware and deterministic;
* :mod:`repro.runtime.instrument` — per-stage timing/counter hooks
  threaded through the core pipeline and surfaced in manifests and
  ``simprof stats``.

The runner symbols are re-exported lazily (PEP 562): ``repro.core``
imports the instrumentation hooks from here, and the runner imports
``repro.core`` back, so loading it eagerly at package-init time would
create a cycle.
"""

from repro.runtime.checkpoint import (
    CHECKPOINT_KIND,
    CheckpointManager,
    CheckpointPolicy,
    WorkerKilled,
    checkpoint_job_key,
    drive_session,
)
from repro.runtime.instrument import (
    Instrumentation,
    StageRecord,
    StageStats,
    get_instrumentation,
    record_stage,
    stage_timer,
)
from repro.runtime.snapshot import (
    SNAPSHOT_VERSION,
    Snapshotable,
    SnapshotError,
    decode_state,
    encode_state,
    restore_rng,
    rng_state,
    state_digest,
)
from repro.runtime.store import (
    STORE_VERSION,
    ArtifactManifest,
    ArtifactStore,
    CacheStats,
    canonical_repr,
    default_store,
    reset_default_stores,
    stable_hash,
)

_RUNNER_EXPORTS = (
    "ExperimentRunner",
    "RunResult",
    "RunSpec",
    "RunnerError",
    "resolve_jobs",
    "run_specs",
    "spec_stream",
)

# The replication plane imports the fault-plan RNG (for deterministic
# backoff jitter), which lives above the runtime layer — re-exported
# lazily for the same reason as the runner.
_REPLICATE_EXPORTS = (
    "FilesystemPeer",
    "FlakyPeer",
    "FlakyPlan",
    "ReplicationPolicy",
    "ReplicationStatus",
    "RetryPolicy",
    "StorePeer",
    "pull_fleet",
    "pull_job",
    "push_key",
    "replicate_store",
    "resolve_replication",
    "restore_fleet",
)

__all__ = [
    "CHECKPOINT_KIND",
    "SNAPSHOT_VERSION",
    "STORE_VERSION",
    "ArtifactManifest",
    "ArtifactStore",
    "CacheStats",
    "CheckpointManager",
    "CheckpointPolicy",
    "Instrumentation",
    "Snapshotable",
    "SnapshotError",
    "StageRecord",
    "StageStats",
    "WorkerKilled",
    "canonical_repr",
    "checkpoint_job_key",
    "decode_state",
    "default_store",
    "drive_session",
    "encode_state",
    "get_instrumentation",
    "record_stage",
    "reset_default_stores",
    "restore_rng",
    "rng_state",
    "stable_hash",
    "stage_timer",
    "state_digest",
    *_RUNNER_EXPORTS,
    *_REPLICATE_EXPORTS,
]


def __getattr__(name: str):
    if name in _RUNNER_EXPORTS:
        from repro.runtime import runner

        return getattr(runner, name)
    if name in _REPLICATE_EXPORTS:
        from repro.runtime import replicate

        return getattr(replicate, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
