"""Content-addressed checkpoints for in-flight streaming jobs.

A checkpoint is the canonical :mod:`repro.runtime.snapshot` encoding of
a pipeline session's state, stored in the :class:`ArtifactStore` under
``kind="checkpoint"`` and keyed on *(job key, stream position)*:

* the **job key** identifies the logical job — a stable hash of the
  parameters that fully determine the stream (workload, framework,
  scale, seed, profiler config, fault plan), so two workers computing
  the same job address the same checkpoint chain;
* the **position** is the number of raw trace events already consumed.
  Resuming restores the latest snapshot and fast-forwards a freshly
  recreated stream past exactly that many events — the substrates are
  deterministic, so the discarded prefix is byte-identical to what the
  killed run saw, and everything after it continues bit-identically.

Checkpoint payloads are the encoded bytes themselves (not re-pickled
object graphs), so the store's SHA-256 payload digest doubles as the
snapshot identity: same logical state, same bytes, same digest.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass
from typing import Any, Iterator

from repro.runtime.snapshot import (
    SNAPSHOT_VERSION,
    SnapshotError,
    decode_state,
    encode_state,
    state_digest,
)
from repro.runtime.store import ArtifactManifest, ArtifactStore, stable_hash

__all__ = [
    "CHECKPOINT_KIND",
    "CheckpointManager",
    "CheckpointPolicy",
    "WorkerKilled",
    "checkpoint_job_key",
    "drive_session",
    "iter_checkpoint_manifests",
    "verify_checkpoints",
]

CHECKPOINT_KIND = "checkpoint"


class WorkerKilled(RuntimeError):
    """Raised when a seeded chaos kill fires mid-stream.

    Models abrupt worker death: the in-memory session is lost and only
    checkpoints already persisted to the store survive.
    """


def checkpoint_job_key(params: dict[str, Any]) -> str:
    """Stable job identity for a checkpoint chain.

    Derived from the job *inputs* (not the result — the result does not
    exist yet when the first checkpoint is cut), namespaced by the
    snapshot version so incompatible encodings never cross-resume.
    """
    return stable_hash({"job": params, "snapshot": SNAPSHOT_VERSION})[:20]


class CheckpointManager:
    """Save/load the checkpoint chain of one job in an ArtifactStore.

    ``replicate`` (a :class:`~repro.runtime.replicate.ReplicationPolicy`,
    duck-typed to avoid an import cycle) mirrors every fresh save to a
    remote peer and retires the chain there when the job completes.
    Replication is strictly off the correctness path: a missing or
    unreachable peer changes nothing about what this manager stores or
    loads locally.
    """

    def __init__(
        self, store: ArtifactStore, job_key: str, *, replicate=None
    ) -> None:
        self.store = store
        self.job_key = job_key
        self.replicate = replicate

    def save(self, position: int, state: dict) -> str:
        """Persist ``state`` at stream ``position``; returns the store key.

        Idempotent: re-saving the same (job, position) is a no-op, so a
        resumed run crossing an already-checkpointed position does not
        churn the store (or re-ship bytes the peer already holds).
        """
        blob = encode_state(state)
        params = {
            "job": self.job_key,
            "position": int(position),
            "snapshot": SNAPSHOT_VERSION,
            "state_digest": state_digest(blob),
        }
        key = self.store.key_for(CHECKPOINT_KIND, params)
        if not self.store.contains(key):
            self.store.put(key, blob, kind=CHECKPOINT_KIND, params=params)
            if self.replicate is not None:
                self.replicate.submit(self.store, key)
        return key

    def manifests(self) -> list[ArtifactManifest]:
        """This job's checkpoint manifests, oldest position first."""
        found = [
            m
            for m in iter_checkpoint_manifests(self.store)
            if m.params.get("job") == self.job_key
            and m.params.get("snapshot") == SNAPSHOT_VERSION
        ]
        found.sort(key=lambda m: int(m.params.get("position", -1)))
        return found

    def latest(self) -> tuple[int, dict] | None:
        """``(position, state)`` of the newest *loadable* checkpoint.

        An entry whose payload survives the store's byte-level digest
        check but fails snapshot-level validation — wrong
        ``state_digest``, not an encoded snapshot at all, or a blob
        :func:`decode_state` rejects — is quarantined and the chain
        falls back to the previous position.  A truncated or corrupt
        checkpoint is therefore never resumable; the worst case is
        re-consuming the events since the last good snapshot.
        """
        for manifest in reversed(self.manifests()):
            try:
                blob = self.store.get(manifest.key)
            except KeyError:
                continue  # quarantined or deleted under us; try older
            want = str(manifest.params.get("state_digest") or "")
            try:
                if not isinstance(blob, (bytes, bytearray)):
                    raise SnapshotError(
                        f"checkpoint payload for {manifest.key} is not an "
                        "encoded snapshot"
                    )
                blob = bytes(blob)
                if want and state_digest(blob) != want:
                    raise SnapshotError(
                        f"checkpoint {manifest.key} fails its recorded "
                        "state digest"
                    )
                state = decode_state(blob)
            except SnapshotError:
                self.store.quarantine(manifest.key)
                continue
            return int(manifest.params["position"]), state
        return None

    def clear(self) -> int:
        """Delete this job's checkpoints (job finished); returns count.

        With replication attached the retirement propagates to the
        peer (best-effort, async) so finished jobs do not accumulate
        stale chains there.
        """
        removed: list[str] = []
        for manifest in self.manifests():
            self.store.delete(manifest.key)
            removed.append(manifest.key)
        if self.replicate is not None and removed:
            self.replicate.retire(removed)
        return len(removed)


def iter_checkpoint_manifests(store: ArtifactStore) -> Iterator[ArtifactManifest]:
    """All checkpoint manifests in ``store``, any job, unsorted."""
    for manifest in store.entries():
        if manifest.kind == CHECKPOINT_KIND:
            yield manifest


def verify_checkpoints(
    store: ArtifactStore, *, repair: bool = False
) -> dict[str, list[str]]:
    """Deep-verify every checkpoint entry; optionally quarantine bad ones.

    The store's generic :meth:`~ArtifactStore.verify` only proves the
    payload bytes match the manifest digest.  Checkpoints carry a
    second integrity layer — the snapshot-level ``state_digest`` and
    the canonical encoding itself — and an entry can pass the byte
    check while being unresumable (e.g. a snapshot truncated *before*
    it was stored, so the digest faithfully records garbage).  This
    check unpickles the payload, verifies the recorded
    ``state_digest``, and decodes the snapshot; anything that fails is
    reported ``corrupt`` and, with ``repair=True``, routed through the
    store's quarantine so it can never be loaded again.

    Returns ``{"ok": [...], "corrupt": [...], "unverified": [...]}``
    with sorted key lists, mirroring ``ArtifactStore.verify``.
    """
    out: dict[str, list[str]] = {"ok": [], "corrupt": [], "unverified": []}
    for manifest in iter_checkpoint_manifests(store):
        key = manifest.key
        if not manifest.payload_sha256:
            out["unverified"].append(key)
            continue
        try:
            payload = store.read_payload(key)
        except KeyError:
            continue  # vanished between listing and read
        healthy = False
        try:
            if hashlib.sha256(payload).hexdigest() == manifest.payload_sha256:
                blob = pickle.loads(payload)
                if isinstance(blob, (bytes, bytearray)):
                    blob = bytes(blob)
                    want = str(manifest.params.get("state_digest") or "")
                    if not want or state_digest(blob) == want:
                        decode_state(blob)
                        healthy = True
        except Exception:
            # Any unpickle/decode failure means corrupt, recorded below.
            healthy = False
        if healthy:
            out["ok"].append(key)
        else:
            out["corrupt"].append(key)
            if repair:
                store.quarantine(key)
    for keys in out.values():
        keys.sort()
    return out


@dataclass(frozen=True, slots=True)
class CheckpointPolicy:
    """How a streaming consume loop checkpoints and resumes.

    ``every`` counts raw ``SegmentBatch`` events between checkpoint
    writes.  ``resume`` restores from the manager's latest checkpoint
    before consuming.  ``kill_after`` is the deterministic kill switch
    used by the chaos mode: after that many raw events have been
    consumed the loop raises :class:`WorkerKilled`, exactly as if the
    worker process died there.
    """

    manager: CheckpointManager
    every: int = 1
    resume: bool = True
    kill_after: int | None = None

    def __post_init__(self) -> None:
        if self.every < 1:
            raise ValueError("checkpoint interval must be >= 1")
        if self.kill_after is not None and self.kill_after < 0:
            raise ValueError("kill_after must be >= 0")


def drive_session(session, stream, policy: CheckpointPolicy, *, meter=None) -> int:
    """Feed ``stream`` into ``session`` under ``policy``; returns events fed.

    The session is any push-mode pipeline (``feed``/``finish``/
    ``snapshot``/``restore`` plus a ``batches_fed`` counter — the
    :class:`~repro.core.profiler.ProfilerSession` shape).  Behaviour:

    * **resume** — restore the latest checkpoint and fast-forward the
      freshly recreated stream past exactly ``position`` raw events;
      the substrates (and the fault injector) are deterministic, so the
      discarded prefix is byte-identical to what the suspended run
      consumed and everything after continues bit-identically;
    * **checkpoint** — after every ``policy.every``-th batch, persist
      ``{"position", "session"}`` through the manager;
    * **kill** — when ``policy.kill_after`` is set and the absolute
      event position reaches it *within this run*, raise
      :class:`WorkerKilled` (the chaos mode's deterministic stand-in
      for abrupt worker death).  A resume already past the offset
      simply completes.

    ``meter`` (a :class:`~repro.runtime.instrument.ThroughputMeter`)
    ticks per emitted unit, matching the plain consume loop.
    """
    start = 0
    if policy.resume:
        found = policy.manager.latest()
        if found is not None:
            start, state = found
            if int(state.get("position", -1)) != start:
                raise ValueError(
                    f"checkpoint position mismatch: manifest {start}, "
                    f"payload {state.get('position')}"
                )
            session.restore(state["session"])
    position = 0
    events = iter(stream)
    while position < start:
        try:
            next(events)
        except StopIteration:
            raise ValueError(
                f"stream ended at event {position} while fast-forwarding "
                f"to checkpoint position {start}; the checkpoint belongs "
                "to a different job"
            ) from None
        position += 1
    last_batches = session.batches_fed
    for event in events:
        position += 1
        emitted = session.feed(event)
        if meter is not None and emitted:
            meter.tick(len(emitted))
        if session.batches_fed != last_batches:
            last_batches = session.batches_fed
            if last_batches % policy.every == 0:
                policy.manager.save(
                    position,
                    {"position": position, "session": session.snapshot()},
                )
        if policy.kill_after is not None and position == policy.kill_after:
            raise WorkerKilled(
                f"chaos kill at stream position {position} "
                f"(job {policy.manager.job_key})"
            )
    emitted = session.finish()
    if meter is not None and emitted:
        meter.tick(len(emitted))
    return position
