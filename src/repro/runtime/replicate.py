"""Checkpoint replication between stores and fleet-wide restore.

PR 7 made a *single* in-flight streaming job suspendable: its snapshots
live as content-addressed checkpoints in the local
:class:`~repro.runtime.store.ArtifactStore`.  That still ties every
in-flight job to one disk — lose the disk (or the preempted host it is
attached to) and every chain on it dies.  This module is the missing
replication plane:

* :class:`StorePeer` — a digest-verified push/pull endpoint for store
  entries.  :class:`FilesystemPeer` lays the peer out exactly like an
  ``ArtifactStore`` root (``<key>.pkl`` + ``<key>.json``), so a
  disaster-recovery site can mount it directly.  Transfers are chunked
  and **resumable**: an interrupted push leaves a partial file under
  ``transfer/`` and the next attempt continues from that offset; a
  completed transfer is committed only after its SHA-256 matches the
  manifest, otherwise the bytes are **quarantined** on the receiving
  side and the transfer restarts.
* :class:`FlakyPeer` — a fault-injectable wrapper (seeded drops,
  stalls, payload corruption) used by the chaos drills to attack the
  transfer path the same way :mod:`repro.faults` attacks everything
  else: deterministically.
* :class:`RetryPolicy` — bounded retries with exponential backoff and
  **deterministic jitter** (``site_rng(seed, "replicate.backoff", …)``),
  plus a per-transfer timeout so a stalled peer cannot wedge a job.
* :class:`ReplicationPolicy` — hooked into
  :meth:`~repro.runtime.checkpoint.CheckpointManager.save`: every fresh
  checkpoint write is pushed to the peer asynchronously with bounded
  lag.  An unreachable peer **never fails the job**: the policy
  degrades to local-only and records the replication lag instead.
* the **inflight journal**: ``kind="inflight"`` store entries carrying
  each streaming job's full spec payload, written when the job starts
  checkpointing and retired on completion.  Because the journal lives
  *in the store*, it replicates like any other entry — a remote peer
  knows not just the chains but the jobs they belong to.
* :func:`restore_fleet` — discovers every inflight job in a (possibly
  just pulled) store's journal and restores them in parallel over
  :func:`repro.runtime.runner.map_tasks`, byte-identical to a serial
  restore.

A spot-preempted worker's successor therefore needs **no shared
filesystem**: it pulls the chains and journal from the peer
(:func:`pull_fleet`) and resumes the whole fleet bit-identically.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
import zlib
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro.runtime.store import (
    ArtifactManifest,
    ArtifactStore,
    _atomic_write_bytes,
    default_store,
)

__all__ = [
    "INFLIGHT_KIND",
    "REPLICATION_KINDS",
    "FilesystemPeer",
    "FlakyPeer",
    "FlakyPlan",
    "FleetRestore",
    "PeerError",
    "PeerPayloadMismatch",
    "PeerUnreachable",
    "ReplicationPolicy",
    "ReplicationReport",
    "ReplicationStatus",
    "RetryPolicy",
    "StorePeer",
    "TransferOutcome",
    "clear_inflight",
    "inflight_store_key",
    "iter_inflight",
    "pull_fleet",
    "pull_job",
    "pull_key",
    "push_key",
    "register_inflight",
    "replicate_store",
    "resolve_replication",
    "restore_fleet",
]

#: Store kind of the inflight-job journal entries.
INFLIGHT_KIND = "inflight"

#: Kinds replicated by default: the checkpoint chains, the journal
#: that names the jobs they belong to, and the provenance-carrying
#: stage artifacts — a restored fleet must answer ``cache graph
#: --why`` (lineage, invalidation causes) without recomputing every
#: stage.  Published aliases (profiles, models) are reproducible from
#: their specs and stay outside the disaster-recovery contract.
REPLICATION_KINDS = ("checkpoint", INFLIGHT_KIND, "stage")

#: Environment variable naming the filesystem peer every checkpointing
#: job replicates to (see :func:`resolve_replication`).
ENV_PEER = "SIMPROF_REPLICA_PEER"

#: Set to ``1`` to make env-resolved replication synchronous (each save
#: blocks until pushed) — mostly for tests and drills.
ENV_SYNC = "SIMPROF_REPLICA_SYNC"

_BACKOFF_SITE = "replicate.backoff"
_FLAKY_SITE = "replicate.flaky"


def _site_rng(seed: int, site: str, *coords: int):
    """Seeded per-decision RNG (lazy import: faults re-exports chaos,
    chaos imports this module — a top-level import would cycle)."""
    from repro.faults.plan import site_rng

    return site_rng(seed, site, *coords)


class PeerError(RuntimeError):
    """A peer operation failed (transport or protocol)."""


class PeerUnreachable(PeerError):
    """The peer could not be reached (or the transfer timed out)."""


class PeerPayloadMismatch(PeerError):
    """A completed transfer failed digest verification and was quarantined."""


# -- retry/backoff/timeout ----------------------------------------------------


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Bounded retries with deterministic exponential-backoff jitter.

    ``sleep_seconds`` derives its jitter from
    ``site_rng(seed, "replicate.backoff", *coords, attempt)`` — never
    from ambient randomness — so a replayed fault campaign waits the
    exact same intervals.  ``timeout`` bounds one transfer attempt
    end-to-end (a stalled peer surfaces as :class:`PeerUnreachable`
    and is retried).
    """

    retries: int = 3
    backoff: float = 0.01
    timeout: float = 30.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.backoff < 0:
            raise ValueError("backoff must be >= 0")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive (or None)")

    def sleep_seconds(self, attempt: int, *coords: int) -> float:
        """Backoff before retry ``attempt`` (0-based), jitter included."""
        if self.backoff <= 0:
            return 0.0
        jitter = float(
            _site_rng(self.seed, _BACKOFF_SITE, *coords, attempt).uniform()
        )
        return self.backoff * (2.0**attempt) * (1.0 + 0.5 * jitter)

    def deadline(self) -> float | None:
        return None if self.timeout is None else time.monotonic() + self.timeout


# -- peers --------------------------------------------------------------------


class StorePeer:
    """A digest-verified push/pull endpoint for store entries.

    The transfer protocol is deliberately dumb (offset-addressed
    chunks + a commit barrier) so any transport — filesystem, object
    store, socket — can implement it:

    * ``transfer_offset(key)`` returns how many payload bytes the peer
      already holds for an in-flight transfer (resume point);
    * ``send_chunk(key, offset, data)`` appends bytes at exactly that
      offset (a mismatch means the two sides disagree and the transfer
      restarts);
    * ``commit(key, manifest)`` verifies the assembled payload against
      ``manifest.payload_sha256`` and atomically publishes it — or
      quarantines the bytes and raises :class:`PeerPayloadMismatch`;
    * ``read_chunk`` / ``manifest`` / ``keys`` serve the pull
      direction; ``delete`` retires entries whose job completed.
    """

    #: Bytes per chunk; small enough that drills can interrupt
    #: mid-transfer, large enough to amortise syscalls.
    CHUNK = 1 << 16

    name: str = "peer"

    def manifest(self, key: str) -> ArtifactManifest | None:
        raise NotImplementedError

    def has(self, key: str, payload_sha256: str) -> bool:
        raise NotImplementedError

    def transfer_offset(self, key: str) -> int:
        raise NotImplementedError

    def send_chunk(self, key: str, offset: int, data: bytes) -> None:
        raise NotImplementedError

    def commit(self, key: str, manifest: ArtifactManifest) -> None:
        raise NotImplementedError

    def abort_transfer(self, key: str) -> None:
        raise NotImplementedError

    def read_chunk(self, key: str, offset: int, size: int) -> bytes:
        raise NotImplementedError

    def keys(self, kind: str | None = None) -> list[str]:
        raise NotImplementedError

    def delete(self, key: str) -> None:
        raise NotImplementedError


class FilesystemPeer(StorePeer):
    """A peer backed by a directory laid out like an ``ArtifactStore``.

    ``<root>/<key>.pkl`` + ``<root>/<key>.json`` mirror the local
    store's layout byte-for-byte, so a recovery site can open the peer
    directory directly as an ``ArtifactStore`` (or pull it with
    :func:`pull_fleet`).  Partial transfers live under
    ``<root>/transfer/``, quarantined mismatches under
    ``<root>/quarantine/``.

    Construction never touches the disk — an unreachable path
    surfaces as :class:`PeerUnreachable` on the first operation, not
    as a crash at wiring time.
    """

    def __init__(self, root: str | Path, *, name: str | None = None) -> None:
        self.root = Path(root)
        self.name = name or str(self.root)

    # -- paths ---------------------------------------------------------------

    def _value_path(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    def _manifest_path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def _part_path(self, key: str) -> Path:
        return self.root / "transfer" / f"{key}.part"

    def _ensure(self, path: Path) -> None:
        try:
            path.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise PeerUnreachable(f"peer {self.name}: {exc}") from exc

    # -- metadata ------------------------------------------------------------

    def manifest(self, key: str) -> ArtifactManifest | None:
        try:
            return ArtifactManifest.from_json(
                self._manifest_path(key).read_text(encoding="utf-8")
            )
        except FileNotFoundError:
            return None
        except OSError as exc:
            raise PeerUnreachable(f"peer {self.name}: {exc}") from exc
        except ValueError:
            return None  # torn manifest: treat as absent, re-replicate

    def has(self, key: str, payload_sha256: str) -> bool:
        """Digest-verified acknowledgement: the peer holds these bytes.

        The stored payload is re-hashed — an entry that rotted *on the
        peer* must read as missing, not acknowledged, or the bounded-lag
        GC guard would collect the only good copy.
        """
        if not payload_sha256:
            return False
        manifest = self.manifest(key)
        if manifest is None or manifest.payload_sha256 != payload_sha256:
            return False
        try:
            payload = self._value_path(key).read_bytes()
        except OSError:
            return False
        return hashlib.sha256(payload).hexdigest() == payload_sha256

    # -- push direction ------------------------------------------------------

    def transfer_offset(self, key: str) -> int:
        try:
            return self._part_path(key).stat().st_size
        except FileNotFoundError:
            return 0
        except OSError as exc:
            raise PeerUnreachable(f"peer {self.name}: {exc}") from exc

    def send_chunk(self, key: str, offset: int, data: bytes) -> None:
        part = self._part_path(key)
        self._ensure(part.parent)
        try:
            with open(part, "ab") as fh:
                if fh.tell() != offset:
                    raise PeerError(
                        f"peer {self.name}: transfer offset mismatch for "
                        f"{key} (peer at {fh.tell()}, sender at {offset})"
                    )
                fh.write(data)
        except OSError as exc:
            raise PeerUnreachable(f"peer {self.name}: {exc}") from exc

    def commit(self, key: str, manifest: ArtifactManifest) -> None:
        part = self._part_path(key)
        try:
            payload = part.read_bytes()
        except OSError as exc:
            raise PeerUnreachable(f"peer {self.name}: {exc}") from exc
        digest = hashlib.sha256(payload).hexdigest()
        if digest != manifest.payload_sha256:
            qdir = self.root / "quarantine"
            self._ensure(qdir)
            try:
                os.replace(part, qdir / part.name)
            except OSError as exc:
                raise PeerUnreachable(f"peer {self.name}: {exc}") from exc
            raise PeerPayloadMismatch(
                f"peer {self.name}: payload digest mismatch for {key} "
                f"(got {digest[:12]}, manifest {manifest.payload_sha256[:12]}); "
                "bytes quarantined"
            )
        try:
            self._ensure(self.root)
            os.replace(part, self._value_path(key))
            _atomic_write_bytes(
                self._manifest_path(key), manifest.to_json().encode()
            )
        except OSError as exc:
            raise PeerUnreachable(f"peer {self.name}: {exc}") from exc

    def abort_transfer(self, key: str) -> None:
        self._part_path(key).unlink(missing_ok=True)

    # -- pull direction ------------------------------------------------------

    def read_chunk(self, key: str, offset: int, size: int) -> bytes:
        try:
            with open(self._value_path(key), "rb") as fh:
                fh.seek(offset)
                return fh.read(size)
        except FileNotFoundError as exc:
            raise PeerError(f"peer {self.name}: no payload for {key}") from exc
        except OSError as exc:
            raise PeerUnreachable(f"peer {self.name}: {exc}") from exc

    def keys(self, kind: str | None = None) -> list[str]:
        try:
            paths = sorted(self.root.glob("*.json"))
        except OSError as exc:
            raise PeerUnreachable(f"peer {self.name}: {exc}") from exc
        found = []
        for path in paths:
            if kind is not None and not path.stem.startswith(f"{kind}-"):
                continue
            if self._value_path(path.stem).exists():
                found.append(path.stem)
        return found

    def delete(self, key: str) -> None:
        try:
            self._value_path(key).unlink(missing_ok=True)
            self._manifest_path(key).unlink(missing_ok=True)
            self._part_path(key).unlink(missing_ok=True)
        except OSError as exc:
            raise PeerUnreachable(f"peer {self.name}: {exc}") from exc


@dataclass(frozen=True, slots=True)
class FlakyPlan:
    """Seeded misbehaviour of a :class:`FlakyPeer` transport.

    Rates are per data-plane operation (``send_chunk``, ``read_chunk``,
    ``commit``, ``delete``).  Exactly one fault can fire per operation:
    the decision draw partitions ``[0, 1)`` into drop / stall / clean,
    and a *separate* draw corrupts chunk payloads so corruption rates
    compose independently with drops.  Every draw derives from
    ``site_rng(seed, "replicate.flaky", op_index)``, so a flaky
    campaign replays bit-identically.
    """

    seed: int = 0
    drop_rate: float = 0.0
    stall_rate: float = 0.0
    stall_seconds: float = 0.001
    corrupt_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("drop_rate", "stall_rate", "corrupt_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate!r}")
        if self.stall_seconds < 0:
            raise ValueError("stall_seconds must be >= 0")


class FlakyPeer(StorePeer):
    """Wraps a peer with deterministic drops, stalls, and corruption.

    The control plane (``manifest``/``has``/``transfer_offset``/
    ``keys``) passes through untouched — the interesting failures are
    on the data path, and keeping metadata reliable keeps the fault
    sequence easy to reason about in drills.
    """

    def __init__(self, inner: StorePeer, plan: FlakyPlan) -> None:
        self.inner = inner
        self.plan = plan
        self.name = f"flaky({inner.name})"
        self.ops = 0
        self.faults: list[tuple[int, str, str]] = []  # (op, op_name, fault)

    def _fault(self, op_name: str, data: bytes | None = None) -> bytes | None:
        """Draw this operation's fault decision; may raise or sleep."""
        op = self.ops
        self.ops += 1
        rng = _site_rng(self.plan.seed, _FLAKY_SITE, op)
        draw = float(rng.uniform())
        if draw < self.plan.drop_rate:
            self.faults.append((op, op_name, "drop"))
            raise PeerUnreachable(
                f"peer {self.name}: injected drop at op {op} ({op_name})"
            )
        if draw < self.plan.drop_rate + self.plan.stall_rate:
            self.faults.append((op, op_name, "stall"))
            time.sleep(self.plan.stall_seconds)
        if (
            data is not None
            and len(data) > 0
            and self.plan.corrupt_rate > 0
            and float(rng.uniform()) < self.plan.corrupt_rate
        ):
            self.faults.append((op, op_name, "corrupt"))
            pos = int(rng.integers(len(data)))
            corrupted = bytearray(data)
            corrupted[pos] ^= 0xFF
            return bytes(corrupted)
        return data

    # Control plane: reliable passthrough.
    def manifest(self, key):
        return self.inner.manifest(key)

    def has(self, key, payload_sha256):
        return self.inner.has(key, payload_sha256)

    def transfer_offset(self, key):
        return self.inner.transfer_offset(key)

    def abort_transfer(self, key):
        self.inner.abort_transfer(key)

    def keys(self, kind=None):
        return self.inner.keys(kind)

    # Data plane: seeded violence.
    def send_chunk(self, key, offset, data):
        data = self._fault("send_chunk", data)
        self.inner.send_chunk(key, offset, data)

    def commit(self, key, manifest):
        self._fault("commit")
        self.inner.commit(key, manifest)

    def read_chunk(self, key, offset, size):
        data = self.inner.read_chunk(key, offset, size)
        return self._fault("read_chunk", data)

    def delete(self, key):
        self._fault("delete")
        self.inner.delete(key)


# -- transfers ----------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class TransferOutcome:
    """What happened to one key.

    ``action`` is one of ``pushed``/``pulled`` (bytes moved and
    verified), ``present`` (digest-verified copy already there),
    ``gone`` (source entry vanished — a completed job retired it),
    ``unverified`` (source has no recorded digest; refused, never
    silently shipped), ``corrupt-local`` (source bytes fail their own
    manifest digest; quarantined at the source), ``missing`` (pull of
    a key the peer does not hold), or ``failed`` (retries exhausted).
    """

    key: str
    action: str
    attempts: int = 0
    bytes_moved: int = 0
    error: str = ""

    @property
    def ok(self) -> bool:
        return self.action in ("pushed", "pulled", "present", "gone")


def _key_coord(key: str) -> int:
    """Stable per-key coordinate for backoff jitter desynchronisation."""
    return zlib.crc32(key.encode())


def push_key(
    store: ArtifactStore,
    peer: StorePeer,
    key: str,
    *,
    retry: RetryPolicy | None = None,
) -> TransferOutcome:
    """Push one entry's exact bytes + manifest to ``peer``; never raises.

    The local payload is re-hashed before shipping — a corrupt local
    entry is quarantined, not replicated.  Transfers resume from the
    peer's partial offset, and the peer's ``commit`` verifies the
    assembled bytes, so a torn or corrupted transfer can never be
    acknowledged.
    """
    retry = retry or RetryPolicy()
    manifest = store.manifest(key)
    if manifest is None or not manifest.payload_sha256:
        return TransferOutcome(
            key, "unverified", error="no payload digest recorded; not shipped"
        )
    try:
        payload = store.read_payload(key)
    except KeyError:
        return TransferOutcome(key, "gone")
    if hashlib.sha256(payload).hexdigest() != manifest.payload_sha256:
        store.quarantine(key)
        return TransferOutcome(
            key, "corrupt-local",
            error="local payload fails manifest digest; quarantined",
        )
    last_error = ""
    sent_total = 0
    for attempt in range(retry.retries + 1):
        if attempt > 0:
            time.sleep(retry.sleep_seconds(attempt - 1, _key_coord(key)))
        try:
            if peer.has(key, manifest.payload_sha256):
                return TransferOutcome(key, "present", attempts=attempt)
            deadline = retry.deadline()
            offset = peer.transfer_offset(key)
            if offset > len(payload):
                # The partial belongs to different bytes; start over.
                peer.abort_transfer(key)
                offset = 0
            while offset < len(payload):
                if deadline is not None and time.monotonic() > deadline:
                    raise PeerUnreachable(
                        f"push of {key} timed out after {retry.timeout}s"
                    )
                chunk = payload[offset : offset + peer.CHUNK]
                peer.send_chunk(key, offset, chunk)
                offset += len(chunk)
                sent_total += len(chunk)
            peer.commit(key, manifest)
            return TransferOutcome(
                key, "pushed", attempts=attempt + 1, bytes_moved=sent_total
            )
        except (PeerError, OSError) as exc:
            last_error = str(exc)
    return TransferOutcome(
        key,
        "failed",
        attempts=retry.retries + 1,
        bytes_moved=sent_total,
        error=last_error,
    )


def pull_key(
    peer: StorePeer,
    store: ArtifactStore,
    key: str,
    *,
    retry: RetryPolicy | None = None,
) -> TransferOutcome:
    """Fetch one entry from ``peer`` into ``store``; never raises.

    The mirror image of :func:`push_key`: chunked reads accumulate in
    ``<store>/transfer/<key>.part`` (resumable), the assembled bytes
    must match the peer manifest's digest (mismatches are quarantined
    locally and retried from scratch), and the verified payload +
    manifest are installed atomically with their bytes unchanged — the
    local copy is byte-identical to what the origin store wrote.
    """
    retry = retry or RetryPolicy()
    last_error = ""
    pulled_total = 0
    for attempt in range(retry.retries + 1):
        if attempt > 0:
            time.sleep(retry.sleep_seconds(attempt - 1, _key_coord(key)))
        try:
            manifest = peer.manifest(key)
            if manifest is None or not manifest.payload_sha256:
                return TransferOutcome(
                    key, "missing", attempts=attempt + 1,
                    error="peer has no verified entry for this key",
                )
            local = store.manifest(key)
            if (
                local is not None
                and local.payload_sha256 == manifest.payload_sha256
                and store.contains(key)
            ):
                return TransferOutcome(key, "present", attempts=attempt)
            part = store.root / "transfer" / f"{key}.part"
            part.parent.mkdir(parents=True, exist_ok=True)
            deadline = retry.deadline()
            size = int(manifest.size_bytes)
            offset = part.stat().st_size if part.exists() else 0
            if offset > size:
                part.unlink(missing_ok=True)
                offset = 0
            with open(part, "ab") as fh:
                while offset < size:
                    if deadline is not None and time.monotonic() > deadline:
                        raise PeerUnreachable(
                            f"pull of {key} timed out after {retry.timeout}s"
                        )
                    chunk = peer.read_chunk(key, offset, peer.CHUNK)
                    if not chunk:
                        raise PeerError(
                            f"peer returned no data for {key} at {offset}"
                        )
                    fh.write(chunk)
                    offset += len(chunk)
                    pulled_total += len(chunk)
            payload = part.read_bytes()
            if hashlib.sha256(payload).hexdigest() != manifest.payload_sha256:
                qdir = store.root / "quarantine"
                qdir.mkdir(exist_ok=True)
                os.replace(part, qdir / part.name)
                raise PeerPayloadMismatch(
                    f"pulled payload for {key} fails digest; quarantined"
                )
            part.unlink(missing_ok=True)
            store.install_payload(key, payload, manifest)
            return TransferOutcome(
                key, "pulled", attempts=attempt + 1, bytes_moved=pulled_total
            )
        except (PeerError, OSError) as exc:
            last_error = str(exc)
    return TransferOutcome(
        key,
        "failed",
        attempts=retry.retries + 1,
        bytes_moved=pulled_total,
        error=last_error,
    )


@dataclass
class ReplicationReport:
    """Outcome of one store↔peer sweep (:func:`replicate_store` etc.)."""

    outcomes: list[TransferOutcome] = field(default_factory=list)

    def _keys(self, *actions: str) -> list[str]:
        return [o.key for o in self.outcomes if o.action in actions]

    @property
    def moved(self) -> list[str]:
        return self._keys("pushed", "pulled")

    @property
    def present(self) -> list[str]:
        return self._keys("present")

    @property
    def failed(self) -> list[str]:
        return self._keys("failed")

    @property
    def skipped(self) -> list[str]:
        return self._keys("gone", "unverified", "corrupt-local", "missing")

    @property
    def ok(self) -> bool:
        return not self.failed

    def summary(self) -> str:
        return (
            f"{len(self.moved)} transferred, {len(self.present)} already "
            f"present, {len(self.failed)} failed, "
            f"{len(self.skipped)} skipped"
        )


def replicate_store(
    store: ArtifactStore,
    peer: StorePeer,
    *,
    kinds: tuple[str, ...] = REPLICATION_KINDS,
    retry: RetryPolicy | None = None,
) -> ReplicationReport:
    """Push every local entry of the given kinds to ``peer``.

    The catch-up sibling of :class:`ReplicationPolicy`: one sweep makes
    the peer hold a digest-verified copy of every checkpoint chain and
    inflight-journal entry currently on disk (``simprof cache
    replicate``).  Keys are visited in sorted order so two sweeps of
    the same store transfer in the same sequence.
    """
    report = ReplicationReport()
    wanted = set(kinds)
    for manifest in store.entries():
        if manifest.kind not in wanted:
            continue
        report.outcomes.append(push_key(store, peer, manifest.key, retry=retry))
    return report


def pull_job(
    peer: StorePeer,
    store: ArtifactStore,
    job_key: str,
    *,
    kinds: tuple[str, ...] = REPLICATION_KINDS,
    retry: RetryPolicy | None = None,
) -> ReplicationReport:
    """Fetch one job's checkpoint chain + journal entry from ``peer``."""
    report = ReplicationReport()
    for kind in kinds:
        for key in _peer_keys_safe(peer, kind, report):
            manifest = peer.manifest(key)
            if manifest is None or manifest.params.get("job") != job_key:
                continue
            report.outcomes.append(pull_key(peer, store, key, retry=retry))
    return report


def pull_fleet(
    peer: StorePeer,
    store: ArtifactStore,
    *,
    kinds: tuple[str, ...] = REPLICATION_KINDS,
    retry: RetryPolicy | None = None,
) -> ReplicationReport:
    """Fetch *every* replicated entry from ``peer`` into ``store``.

    The disaster-recovery entry point: after a total local-store loss,
    one pull rebuilds the inflight journal and all checkpoint chains,
    and :func:`restore_fleet` finishes the jobs.
    """
    report = ReplicationReport()
    for kind in kinds:
        for key in _peer_keys_safe(peer, kind, report):
            report.outcomes.append(pull_key(peer, store, key, retry=retry))
    return report


def _peer_keys_safe(
    peer: StorePeer, kind: str, report: ReplicationReport
) -> list[str]:
    """List a peer's keys, degrading to an explicit failure record."""
    try:
        return peer.keys(kind)
    except PeerError as exc:
        report.outcomes.append(
            TransferOutcome(f"{kind}-*", "failed", error=str(exc))
        )
        return []


# -- the replication policy ---------------------------------------------------


@dataclass(frozen=True, slots=True)
class ReplicationStatus:
    """A point-in-time accounting of a policy's replication state.

    Every submitted key is accounted for exactly once:
    ``pushed + present + gone + failed + superseded + pending ==
    submitted`` — degradation is recorded, never silent.  ``lag`` is
    the number of submitted-but-unacknowledged keys; a healthy policy
    drains it to zero.
    """

    submitted: int = 0
    pushed: int = 0
    present: int = 0
    gone: int = 0
    failed: int = 0
    superseded: int = 0
    pending: int = 0
    last_error: str = ""

    @property
    def lag(self) -> int:
        return self.pending + self.failed + self.superseded

    @property
    def degraded(self) -> bool:
        """True when some key did not make it to the peer."""
        return self.failed > 0 or self.superseded > 0


class ReplicationPolicy:
    """Mirrors fresh checkpoint writes to a peer, off the hot path.

    Hooked into :meth:`~repro.runtime.checkpoint.CheckpointManager.save`
    via the manager's ``replicate=`` argument: each fresh save is
    ``submit``-ted here and pushed by a background thread.  Guarantees:

    * **never a job failure** — ``submit`` cannot raise; push errors
      are absorbed into the status counters (``failed``,
      ``last_error``) and the job keeps running local-only;
    * **bounded lag** — at most ``max_lag`` pushes queue up; beyond
      that the *oldest* pending checkpoint is dropped and counted as
      ``superseded`` (for a chain, newer positions strictly dominate
      older ones, so durability loss is bounded by the newest
      un-pushed position, not silent);
    * **recorded degradation** — :meth:`status` accounts for every
      submitted key, and :attr:`ReplicationStatus.degraded` flips as
      soon as anything failed to replicate.

    ``synchronous=True`` pushes inline (each save blocks until the
    peer acknowledged or retries exhausted) — for drills and tests
    that need a deterministic transfer order.
    """

    def __init__(
        self,
        peer: StorePeer,
        *,
        retry: RetryPolicy | None = None,
        max_lag: int = 64,
        synchronous: bool = False,
    ) -> None:
        if max_lag < 1:
            raise ValueError("max_lag must be >= 1")
        self.peer = peer
        self.retry = retry or RetryPolicy()
        self.max_lag = max_lag
        self.synchronous = synchronous
        self._cond = threading.Condition()
        self._queue: deque[tuple[str, ArtifactStore, str]] = deque()
        self._thread: threading.Thread | None = None
        self._busy = False
        self._closed = False
        self._counts = {
            "submitted": 0,
            "pushed": 0,
            "present": 0,
            "gone": 0,
            "failed": 0,
            "superseded": 0,
        }
        self._last_error = ""

    # -- submission (the CheckpointManager.save hook) ------------------------

    def submit(self, store: ArtifactStore, key: str) -> None:
        """Replicate ``key`` from ``store`` to the peer; never raises."""
        self._enqueue("push", store, key)

    def retire(self, keys: list[str]) -> None:
        """Delete retired entries (completed job) from the peer.

        Best-effort: a failed peer delete only leaves stale chain
        entries behind, which a later restore treats as extra work,
        never as wrong results.
        """
        for key in keys:
            self._enqueue("delete", None, key)

    def _enqueue(self, op: str, store: ArtifactStore | None, key: str) -> None:
        if self.synchronous:
            self._run_op(op, store, key)
            return
        run_inline = False
        with self._cond:
            if op == "push":
                self._counts["submitted"] += 1
            if self._closed:
                # Late submit after close: run inline rather than lose it.
                run_inline = True
            else:
                self._queue.append((op, store, key))
                while len(self._queue) > self.max_lag:
                    old_op, _old_store, _old_key = self._queue.popleft()
                    if old_op == "push":
                        self._counts["superseded"] += 1
                if self._thread is None:
                    self._thread = threading.Thread(
                        target=self._worker, name="simprof-replicate", daemon=True
                    )
                    self._thread.start()
                self._cond.notify_all()
        if run_inline:
            self._run_op(op, store, key)

    # -- the worker ----------------------------------------------------------

    def _worker(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._closed:
                    self._cond.wait()
                if not self._queue and self._closed:
                    return
                op, store, key = self._queue.popleft()
                self._busy = True
            try:
                self._run_op(op, store, key, counted=True)
            finally:
                with self._cond:
                    self._busy = False
                    self._cond.notify_all()

    def _run_op(
        self,
        op: str,
        store: ArtifactStore | None,
        key: str,
        *,
        counted: bool = False,
    ) -> None:
        if op == "push" and self.synchronous:
            self._counts["submitted"] += 1
        try:
            if op == "delete":
                self.peer.delete(key)
                return
            outcome = push_key(store, self.peer, key, retry=self.retry)
            bucket = {
                "pushed": "pushed",
                "present": "present",
                "gone": "gone",
            }.get(outcome.action, "failed")
            with self._cond:
                self._counts[bucket] += 1
                if not outcome.ok:
                    self._last_error = outcome.error
        except Exception as exc:  # noqa: BLE001 - replication must not kill jobs
            with self._cond:
                if op == "push":
                    self._counts["failed"] += 1
                self._last_error = str(exc)

    # -- observation / lifecycle ---------------------------------------------

    def status(self) -> ReplicationStatus:
        with self._cond:
            pending = sum(1 for op, _, _ in self._queue if op == "push")
            if self._busy:
                pending += 1  # the in-flight op is not acked yet
            return ReplicationStatus(
                submitted=self._counts["submitted"],
                pushed=self._counts["pushed"],
                present=self._counts["present"],
                gone=self._counts["gone"],
                failed=self._counts["failed"],
                superseded=self._counts["superseded"],
                pending=min(pending, self._counts["submitted"]),
                last_error=self._last_error,
            )

    def flush(self, timeout: float | None = None) -> ReplicationStatus:
        """Wait until the queue drains (or ``timeout``); returns status."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while self._queue or self._busy:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                self._cond.wait(timeout=remaining)
        return self.status()

    def close(self, *, flush: bool = True) -> ReplicationStatus:
        """Drain (optionally) and stop the worker; returns final status."""
        if flush:
            self.flush()
        with self._cond:
            self._closed = True
            if not flush:
                while self._queue:
                    op, _, _ = self._queue.popleft()
                    if op == "push":
                        self._counts["superseded"] += 1
            self._cond.notify_all()
            thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
        return self.status()


def resolve_replication(
    peer_root: str | Path | None = None, *, synchronous: bool | None = None
) -> ReplicationPolicy | None:
    """Build the ambient replication policy, if one is configured.

    ``SIMPROF_REPLICA_PEER`` names a filesystem peer directory; when it
    is unset (and no explicit ``peer_root`` is given) replication is
    off and this returns ``None`` — the checkpoint hot path then does
    no peer work at all.  ``SIMPROF_REPLICA_SYNC=1`` makes env-resolved
    policies synchronous.
    """
    root = peer_root if peer_root is not None else os.environ.get(ENV_PEER)
    if not root:
        return None
    if synchronous is None:
        synchronous = os.environ.get(ENV_SYNC) == "1"
    return ReplicationPolicy(FilesystemPeer(root), synchronous=synchronous)


def resolve_peer(peer_root: str | Path | None = None) -> StorePeer | None:
    """The configured peer endpoint (``SIMPROF_REPLICA_PEER``), if any."""
    root = peer_root if peer_root is not None else os.environ.get(ENV_PEER)
    if not root:
        return None
    return FilesystemPeer(root)


# -- the inflight journal -----------------------------------------------------


def inflight_store_key(store: ArtifactStore, job_key: str) -> str:
    """Store key of a job's inflight-journal entry."""
    return store.key_for(INFLIGHT_KIND, {"job": job_key})


def register_inflight(
    store: ArtifactStore,
    job_key: str,
    payload: dict[str, Any],
    *,
    replicate: ReplicationPolicy | None = None,
) -> str:
    """Journal a checkpointing job in the store itself.

    ``payload`` must carry everything a successor needs to finish the
    job without the original process — at minimum ``{"spec":
    RunSpec.to_payload(), "checkpoint_every": N, "label": ...}``.
    Because the journal is a normal store entry, it replicates to the
    peer alongside the chains it describes.
    """
    key = inflight_store_key(store, job_key)
    if not store.contains(key):
        store.put(
            key,
            dict(payload),
            kind=INFLIGHT_KIND,
            params={"job": job_key, "label": str(payload.get("label", ""))},
        )
    if replicate is not None:
        replicate.submit(store, key)
    return key


def clear_inflight(
    store: ArtifactStore,
    job_key: str,
    *,
    replicate: ReplicationPolicy | None = None,
) -> None:
    """Retire a job's journal entry (locally, and best-effort on the peer)."""
    key = inflight_store_key(store, job_key)
    store.delete(key)
    if replicate is not None:
        replicate.retire([key])


def iter_inflight(store: ArtifactStore) -> Iterator[tuple[str, dict]]:
    """``(job_key, payload)`` for every journalled inflight job, sorted."""
    found = []
    for manifest in store.entries():
        if manifest.kind != INFLIGHT_KIND:
            continue
        try:
            payload = store.get(manifest.key)
        except KeyError:
            continue  # corrupt journal entry: quarantined by the store
        if isinstance(payload, dict) and "spec" in payload:
            found.append((str(manifest.params.get("job", "")), payload))
    found.sort(key=lambda kv: kv[0])
    yield from found


# -- fleet restore ------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class FleetRestore:
    """One job's restore outcome."""

    job_key: str
    label: str
    profile_key: str
    digest: str
    resumed_from: int


def _restore_one(item: tuple[str, dict]) -> dict:
    """Pool worker: finish one journalled job from its checkpoint chain.

    Opens the store by root path (workers do not share the parent's
    instance), resumes from the latest chain entry, materialises the
    profile artifact, and retires the chain + journal entry.  Returns
    a plain dict so the parent can rebuild :class:`FleetRestore`
    whether the work ran in-process or in a pool.
    """
    root, payload = item
    from repro.runtime.checkpoint import CheckpointManager, checkpoint_job_key
    from repro.runtime.runner import RunSpec, _compute_profile_stream

    store = ArtifactStore(root)
    spec = RunSpec.from_payload(payload["spec"])
    params = spec.profile_params()
    job_key = checkpoint_job_key(params)
    latest = CheckpointManager(store, job_key).latest()
    resumed_from = 0 if latest is None else latest[0]
    every = max(1, int(payload.get("checkpoint_every") or 1))
    job = store.get_or_compute(
        "profile",
        params,
        lambda: _compute_profile_stream(
            spec, store, checkpoint_every=every, resume=True
        ),
    )
    clear_inflight(store, job_key)
    return {
        "job_key": job_key,
        "label": str(payload.get("label", spec.label)),
        "profile_key": store.key_for("profile", params),
        "digest": job.content_digest(),
        "resumed_from": resumed_from,
    }


def restore_fleet(
    store: ArtifactStore | None = None,
    *,
    jobs: int | None = None,
    retries: int = 2,
    backoff: float = 0.0,
    seed: int = 0,
) -> list[FleetRestore]:
    """Finish every journalled inflight job, in parallel, bit-identically.

    Discovery is the store's own inflight journal (pull it from a peer
    first with :func:`pull_fleet` after a local-store loss).  Each job
    resumes from its latest checkpoint and runs to completion through
    the same code path a live worker uses, fanned out over
    :func:`~repro.runtime.runner.map_tasks` — results come back in
    journal order, so serial (``jobs=1``) and parallel restores are
    byte-identical.
    """
    from repro.runtime.runner import map_tasks

    if store is None:
        store = default_store()
    items = [
        (str(store.root), payload) for _job_key, payload in iter_inflight(store)
    ]
    if not items:
        return []
    raw = map_tasks(
        _restore_one,
        items,
        jobs=jobs,
        retries=retries,
        backoff=backoff,
        seed=seed,
    )
    # Workers wrote through their own store instances; drop this
    # process's memory tier so subsequent reads see the restored disk
    # state instead of pre-wipe cached objects.
    store.clear_memory()
    return [
        FleetRestore(
            job_key=r["job_key"],
            label=r["label"],
            profile_key=r["profile_key"],
            digest=r["digest"],
            resumed_from=int(r["resumed_from"]),
        )
        for r in raw
    ]

