"""Batch experiment runner.

Turns a list of :class:`RunSpec`s (workload, framework, scale, seed,
graph, params, SimProf knobs) into profiles and phase models through the
artifact store, fanning the cache misses out across a
``ProcessPoolExecutor`` when parallelism is enabled.

Guarantees:

* **cache-aware de-duplication** — structurally equal specs collapse to
  one computation, and anything already in the store is never
  recomputed;
* **bounded retries with backoff** — a worker failure is retried up to
  ``retries`` times (sleeping ``backoff * 2**attempt`` seconds between
  attempts) before surfacing as :class:`RunnerError`; a broken pool
  (OOM-killed worker, fork failure) degrades to in-process execution;
* **timeouts with speculative re-execution** — a pool task that
  exceeds ``timeout`` seconds is re-submitted to another worker
  (running futures cannot be cancelled, but the store's atomic
  content-addressed writes make duplicate materialisation harmless —
  first writer wins, byte-identical either way);
* **checkpoint/resume** — with ``checkpoint=<path>``, the runner
  journals each completed dedupe key; a killed batch restarted with
  the same checkpoint file skips straight past finished specs even if
  the store was swept in between;
* **deterministic results** — workers only *materialise* artifacts into
  the content-addressed store and return keys; the parent loads every
  result from the store in input order, so serial and parallel runs
  produce identical values.

Parallelism defaults to serial; set ``SIMPROF_JOBS`` (or pass ``jobs=``)
to fan out.  Workers inherit ``SIMPROF_CACHE_DIR``, and the store's
atomic unique-tempfile writes make concurrent materialisation safe.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass, field, fields
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.core.phases import PhaseModel
from repro.core.pipeline import SimProf, SimProfConfig
from repro.core.units import JobProfile
from repro.runtime.store import ArtifactStore, default_store

__all__ = [
    "RunSpec",
    "RunResult",
    "GraphResult",
    "RunnerError",
    "ExperimentRunner",
    "resolve_jobs",
    "map_tasks",
    "run_specs",
    "spec_stream",
]


def resolve_jobs(jobs: int | None = None) -> int:
    """Worker count: explicit argument, else ``SIMPROF_JOBS``, else 1."""
    if jobs is not None:
        return max(1, int(jobs))
    env = os.environ.get("SIMPROF_JOBS", "")
    try:
        return max(1, int(env))
    except ValueError:
        return 1


class RunnerError(RuntimeError):
    """A spec kept failing after the configured retries."""


def _backoff_sleep(backoff: float, seed: int, attempt: int, *coords: int) -> None:
    """Exponential backoff with *deterministic* jitter.

    The jitter factor is drawn from ``site_rng(seed, "runner.backoff",
    *coords, attempt)`` — never from ambient randomness — so fault
    replays wait bit-identical intervals.  The sleep is
    ``backoff * 2**attempt * (1 + 0.5·u)`` with ``u ~ U[0, 1)``: the
    floor equals the historical un-jittered schedule, the jitter only
    ever stretches it, desynchronising retry herds without speeding
    anything up behind a test's back.
    """
    if backoff <= 0:
        return
    from repro.faults.plan import site_rng

    u = float(site_rng(seed, "runner.backoff", *coords, attempt).uniform())
    time.sleep(backoff * (2.0**attempt) * (1.0 + 0.5 * u))


def map_tasks(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    *,
    jobs: int | None = None,
    retries: int = 2,
    backoff: float = 0.0,
    seed: int = 0,
    initializer: Callable[..., None] | None = None,
    initargs: tuple[Any, ...] = (),
) -> list[Any]:
    """Order-preserving parallel map with the runner's failure semantics.

    The generic sibling of :meth:`ExperimentRunner.run` for pure
    compute tasks that are not :class:`RunSpec`-shaped (the phase
    k-sweep, batch scoring): ``fn`` must be a picklable module-level
    callable and each item picklable.  Guarantees:

    * results come back in input order, so serial (``jobs=1``) and
      parallel runs of a deterministic ``fn`` are byte-identical;
    * per-item bounded retries with exponential backoff and
      deterministic per-item jitter (``backoff * 2**attempt`` seconds
      stretched by ``site_rng(seed, "runner.backoff", item, attempt)``),
      surfacing as :class:`RunnerError` when exhausted;
    * a broken pool (OOM-killed worker, fork failure) degrades to
      in-process execution of the unfinished items — ``initializer``
      is then invoked locally so per-process context stays available.

    ``jobs`` defaults to the ``SIMPROF_JOBS`` environment variable;
    with one worker (or one item) everything runs in-process and the
    initializer, if any, runs first.
    """
    jobs = resolve_jobs(jobs)
    retries = max(0, int(retries))
    backoff = max(0.0, float(backoff))
    work = list(items)

    def sleep_before_retry(attempt: int, index: int) -> None:
        _backoff_sleep(backoff, seed, attempt, index)

    def run_inline(index: int, item: Any) -> Any:
        last: Exception | None = None
        for attempt in range(retries + 1):
            if attempt > 0:
                sleep_before_retry(attempt - 1, index)
            try:
                return fn(item)
            except Exception as exc:  # noqa: BLE001 - rewrapped below
                last = exc
        raise RunnerError(
            f"task {item!r} failed after {retries + 1} attempts: {last}"
        ) from last

    if jobs <= 1 or len(work) <= 1:
        if initializer is not None:
            initializer(*initargs)
        return [run_inline(i, item) for i, item in enumerate(work)]

    results: list[Any] = [None] * len(work)
    done: set[int] = set()
    try:
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(work)),
            initializer=initializer,
            initargs=initargs,
        ) as pool:
            attempts = dict.fromkeys(range(len(work)), 0)
            futures = {pool.submit(fn, item): i for i, item in enumerate(work)}
            while futures:
                finished, _pending = wait(futures, return_when=FIRST_COMPLETED)
                for future in finished:
                    i = futures.pop(future)
                    exc = future.exception()
                    if exc is None:
                        results[i] = future.result()
                        done.add(i)
                        continue
                    if isinstance(exc, BrokenProcessPool):
                        raise exc
                    attempts[i] += 1
                    if attempts[i] > retries:
                        raise RunnerError(
                            f"task {work[i]!r} failed after "
                            f"{retries + 1} attempts: {exc}"
                        ) from exc
                    sleep_before_retry(attempts[i] - 1, i)
                    futures[pool.submit(fn, work[i])] = i
    except BrokenProcessPool:
        # A worker died hard (OOM, signal).  Finish what is left
        # in-process rather than losing the batch.
        if initializer is not None:
            initializer(*initargs)
        for i, item in enumerate(work):
            if i not in done:
                results[i] = run_inline(i, item)
    return results


@dataclass(frozen=True)
class RunSpec:
    """One (workload, framework) execution request.

    ``params`` are workload input knobs (e.g. ``zipf_s``); ``simprof``
    is the full pipeline configuration.  Cache keys are derived from
    *every* field, so no knob can go stale silently.
    """

    workload: str
    framework: str
    scale: float = 1.0
    seed: int = 0
    graph_name: str | None = None
    input_name: str | None = None
    params: Mapping[str, Any] | None = None
    simprof: SimProfConfig = field(default_factory=SimProfConfig)

    @property
    def label(self) -> str:
        """Short display label, e.g. ``wc_sp``."""
        suffix = {"spark": "sp", "hadoop": "hp"}.get(self.framework, self.framework)
        return f"{self.workload}_{suffix}"

    def profile_params(self) -> dict[str, Any]:
        """Key material for the profile artifact.

        The profiler subset is derived automatically from
        :meth:`SimProfConfig.profiler_config` (a dataclass), so every
        profiling-relevant knob — including ``simprof.seed``, which the
        old hand-listed keys dropped — is part of the key.
        """
        return {
            "workload": self.workload,
            "framework": self.framework,
            "scale": self.scale,
            "seed": self.seed,
            "graph": self.graph_name or "",
            "input_name": self.input_name or self.graph_name or "default",
            "params": dict(self.params or {}),
            "profiler": self.simprof.profiler_config(),
        }

    def model_params(self) -> dict[str, Any]:
        """Key material for the phase-model artifact: the *full* config."""
        return {
            "profile": self.profile_params(),
            "simprof": self.simprof,
        }

    def to_payload(self) -> dict[str, Any]:
        """Plain-dict form safe to ship to a pool worker."""
        return {
            "workload": self.workload,
            "framework": self.framework,
            "scale": self.scale,
            "seed": self.seed,
            "graph_name": self.graph_name,
            "input_name": self.input_name,
            "params": dict(self.params or {}),
            "simprof": asdict(self.simprof),
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "RunSpec":
        """Rebuild a spec from :meth:`to_payload` output.

        Tolerant by design: unknown top-level keys and unknown
        ``simprof`` knobs are ignored, and missing optional fields take
        their defaults — a journal or checkpoint written by a newer
        schema still round-trips on an older engine instead of crashing
        a resume.  Unknown knobs cannot silently alias: cache keys are
        derived from the *reconstructed* spec, so a dropped knob yields
        the same key an engine without that knob would compute.
        """
        raw = payload.get("simprof") or {}
        if isinstance(raw, SimProfConfig):
            simprof = raw
        else:
            known = {f.name for f in fields(SimProfConfig)}
            simprof = SimProfConfig(
                **{k: v for k, v in dict(raw).items() if k in known}
            )
        return cls(
            workload=payload["workload"],
            framework=payload["framework"],
            scale=payload.get("scale", 1.0),
            seed=payload.get("seed", 0),
            graph_name=payload.get("graph_name"),
            input_name=payload.get("input_name"),
            params=payload.get("params") or None,
            simprof=simprof,
        )


@dataclass
class RunResult:
    """One spec's artifacts, in input order."""

    spec: RunSpec
    job: JobProfile
    model: PhaseModel | None
    profile_key: str
    model_key: str | None
    cached: bool

    @property
    def label(self) -> str:
        return self.spec.label


@dataclass
class GraphResult:
    """Outcome of one :meth:`ExperimentRunner.run_graph` execution.

    Holds the resolved :class:`~repro.runtime.provenance.NodePlan` per
    node; values stay in the store and load lazily (``result[name]``),
    so a driver fetching only its report node never unpickles the
    upstream traces.
    """

    store: ArtifactStore
    plans: list[Any]  # list[NodePlan]

    def plan(self, name: str) -> Any:
        for plan in self.plans:
            if plan.name == name:
                return plan
        raise KeyError(f"no stage node named {name!r}")

    def key(self, name: str) -> str:
        return self.plan(name).key

    def cached(self, name: str) -> bool:
        return self.plan(name).cached

    @property
    def executed(self) -> list[str]:
        """Node names recomputed this run (in topological order)."""
        return [p.name for p in self.plans if not p.cached]

    @property
    def hits(self) -> int:
        return sum(p.cached for p in self.plans)

    @property
    def misses(self) -> int:
        return len(self.plans) - self.hits

    def __getitem__(self, name: str) -> Any:
        return self.store.get(self.key(name))


# -- computation (runs in the parent or in pool workers) ----------------------


def _compute_profile(spec: RunSpec) -> JobProfile:
    """Run the workload and profile its busiest thread (stages timed).

    Expressed over the declared stage functions
    (:mod:`repro.runtime.stages`) so the classic per-spec path and the
    provenance graph compute values through identical code.
    """
    from repro.runtime.stages import (
        stage_profile,
        stage_trace_gen,
        trace_params,
    )

    trace = stage_trace_gen({}, trace_params(spec))
    return stage_profile(
        {"trace": trace}, {"profiler": spec.simprof.profiler_config()}
    )


def spec_stream(spec: RunSpec):
    """The raw event stream a spec profiles (workload + graph resolved).

    Shared by the streaming compute path and the chaos drills so both
    consume byte-identical streams for the same spec.
    """
    from repro.datagen.seeds import GRAPH_INPUTS
    from repro.workloads import run_workload_stream

    graph = GRAPH_INPUTS[spec.graph_name] if spec.graph_name else None
    return run_workload_stream(
        spec.workload,
        spec.framework,
        scale=spec.scale,
        seed=spec.seed,
        graph=graph,
        input_name=spec.input_name or spec.graph_name or "default",
        params=dict(spec.params) if spec.params else None,
    )


def _compute_profile_stream(
    spec: RunSpec,
    store: ArtifactStore,
    *,
    checkpoint_every: int,
    resume: bool = True,
    kill_after: int | None = None,
    replicate: Any | None = None,
) -> JobProfile:
    """Streaming twin of :func:`_compute_profile` with checkpointing.

    The job is profiled off a live stream under a
    :class:`~repro.runtime.checkpoint.CheckpointPolicy` keyed on the
    spec's profile params: a worker killed mid-stream leaves its
    snapshots in the shared store, and the next worker to pick up the
    same spec resumes bit-identically from the latest one.  On success
    the snapshots are cleared — the profile artifact supersedes them.

    Two robustness layers ride along:

    * the job registers itself in the store's **inflight journal**
      (:mod:`repro.runtime.replicate`) while streaming, so a fleet of
      killed workers can be rediscovered and restored wholesale by
      :func:`~repro.runtime.replicate.restore_fleet`;
    * with replication configured (``replicate=`` or the
      ``SIMPROF_REPLICA_PEER`` environment), every fresh checkpoint —
      and the journal entry itself — is mirrored to the peer.  An
      env-resolved policy is owned here and drained on the way out
      (success *or* simulated kill: the real-world analogue is the
      replication agent outliving the worker process); a policy passed
      in stays caller-owned.
    """
    from repro.runtime.checkpoint import (
        CheckpointManager,
        CheckpointPolicy,
        checkpoint_job_key,
    )
    from repro.runtime.replicate import (
        clear_inflight,
        register_inflight,
        resolve_replication,
    )

    owned = replicate is None
    replicate = resolve_replication() if replicate is None else replicate
    manager = CheckpointManager(
        store, checkpoint_job_key(spec.profile_params()), replicate=replicate
    )
    policy = CheckpointPolicy(
        manager, every=checkpoint_every, resume=resume, kill_after=kill_after
    )
    register_inflight(
        store,
        manager.job_key,
        {
            "spec": spec.to_payload(),
            "checkpoint_every": int(checkpoint_every),
            "label": spec.label,
        },
        replicate=replicate,
    )
    try:
        job = SimProf(spec.simprof).profile_stream(
            spec_stream(spec), checkpoint=policy
        )
    finally:
        if owned and replicate is not None:
            replicate.close()
    manager.clear()
    clear_inflight(store, manager.job_key, replicate=replicate)
    return job


def _materialise(
    spec: RunSpec,
    want: str,
    store: ArtifactStore,
    *,
    checkpoint_every: int | None = None,
) -> tuple[str, str | None]:
    """Ensure the spec's artifacts exist in the store; return their keys."""
    profile_params = spec.profile_params()
    if checkpoint_every is not None:
        compute = lambda: _compute_profile_stream(  # noqa: E731
            spec, store, checkpoint_every=checkpoint_every
        )
    else:
        compute = lambda: _compute_profile(spec)  # noqa: E731
    job = store.get_or_compute("profile", profile_params, compute)
    profile_key = store.key_for("profile", profile_params)
    model_key: str | None = None
    if want == "model":
        model_params = spec.model_params()
        # Spec-level parallelism takes precedence: the phase-formation
        # k-sweep runs serially here (jobs=1) so pool workers never nest
        # process pools.  The assembled feature matrix is cached in the
        # same store, keyed on the profile's content digest, so sweeps
        # over clustering knobs skip featurization entirely.
        store.get_or_compute(
            "model",
            model_params,
            lambda: SimProf(spec.simprof).form_phases(job, jobs=1, store=store),
        )
        model_key = store.key_for("model", model_params)
    return profile_key, model_key


def _pool_worker(payload: dict[str, Any]) -> tuple[str, str | None]:
    """Pool entry point: materialise into the (env-configured) store.

    Returns only the store keys — values stay on disk, so the parent
    reads identical bytes whether the work ran here or in-process.
    """
    spec = RunSpec.from_payload(payload)
    return _materialise(
        spec,
        payload["want"],
        default_store(),
        checkpoint_every=payload.get("checkpoint_every"),
    )


# -- the runner ---------------------------------------------------------------


class _Checkpoint:
    """Journal of completed dedupe keys, atomically rewritten on mark.

    Besides the ``done`` set, the journal records *in-flight* specs:
    ``inflight`` maps each dedupe key currently being computed to the
    stream-checkpoint job key its worker snapshots under (see
    :mod:`repro.runtime.checkpoint`).  A batch killed mid-stream and
    restarted with the same journal therefore knows exactly which
    checkpoint chain each unfinished spec resumes from; ``mark``
    retires the in-flight entry when the spec completes.

    A corrupt or unreadable journal is treated as empty (the batch
    restarts from the store's contents) rather than crashing a resume.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.done: set[str] = set()
        self.inflight: dict[str, dict[str, Any]] = {}
        if self.path.exists():
            try:
                data = json.loads(self.path.read_text(encoding="utf-8"))
                self.done = {str(k) for k in data.get("done", ())}
                self.inflight = {
                    str(k): dict(v)
                    for k, v in (data.get("inflight") or {}).items()
                }
            except (OSError, json.JSONDecodeError, AttributeError, TypeError):
                self.done = set()
                self.inflight = {}

    def _write(self) -> None:
        tmp = self.path.with_name(self.path.name + ".tmp")
        payload: dict[str, Any] = {"done": sorted(self.done)}
        if self.inflight:
            payload["inflight"] = {
                k: self.inflight[k] for k in sorted(self.inflight)
            }
        tmp.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        tmp.replace(self.path)

    def mark(self, key: str) -> None:
        if key in self.done and key not in self.inflight:
            return
        self.done.add(key)
        self.inflight.pop(key, None)
        self._write()

    def mark_inflight(self, key: str, info: dict[str, Any]) -> None:
        if key in self.done or self.inflight.get(key) == info:
            return
        self.inflight[key] = dict(info)
        self._write()


class ExperimentRunner:
    """Executes batches of :class:`RunSpec` against one artifact store."""

    def __init__(
        self,
        store: ArtifactStore | None = None,
        *,
        jobs: int | None = None,
        retries: int = 2,
        backoff: float = 0.0,
        timeout: float | None = None,
        checkpoint: str | Path | None = None,
        checkpoint_every: int | None = None,
        seed: int = 0,
    ) -> None:
        self.store = store or default_store()
        self.jobs = resolve_jobs(jobs)
        self.retries = max(0, int(retries))
        self.backoff = max(0.0, float(backoff))
        # Seeds the retry-backoff jitter (site "runner.backoff") — not
        # any workload randomness, which lives in the specs themselves.
        self.seed = int(seed)
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive (or None)")
        self.timeout = timeout
        self.checkpoint = _Checkpoint(checkpoint) if checkpoint else None
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1 (or None)")
        # With checkpoint_every set, cache-miss profiles are computed off
        # the streaming path under a CheckpointPolicy, so a worker killed
        # mid-job resumes bit-identically on the next attempt (or on a
        # replacement worker sharing the store).  None keeps the batch
        # path with zero checkpoint overhead.
        self.checkpoint_every = checkpoint_every

    def map_tasks(
        self,
        fn: Callable[[Any], Any],
        items: Iterable[Any],
        *,
        initializer: Callable[..., None] | None = None,
        initargs: tuple[Any, ...] = (),
    ) -> list[Any]:
        """Run :func:`map_tasks` with this runner's jobs/retries/backoff."""
        return map_tasks(
            fn,
            items,
            jobs=self.jobs,
            retries=self.retries,
            backoff=self.backoff,
            seed=self.seed,
            initializer=initializer,
            initargs=initargs,
        )

    # -- provenance-graph execution -------------------------------------------

    def plan_graph(self, graph: Any, *, code: Any | None = None) -> list[Any]:
        """Resolve a :class:`~repro.runtime.provenance.StageGraph` to
        per-node keys, lineage records and hit/miss causes (no
        execution)."""
        from repro.runtime.provenance import plan_graph

        return plan_graph(graph, self.store, code=code)

    def run_graph(self, graph: Any, *, code: Any | None = None) -> GraphResult:
        """Execute a stage graph incrementally.

        Plans the graph (:func:`~repro.runtime.provenance.plan_graph`),
        then repeatedly fans every *ready* miss — all upstream nodes
        cached or already executed — out over :meth:`map_tasks`.
        Workers materialise into the shared store and return keys, so
        a parallel run is byte-identical to a serial one; nodes whose
        full provenance digest matches an existing entry are never
        re-executed, which is the entire point: after a one-line edit
        to one estimator, only the stages whose code closure contains
        that module run again.
        """
        from repro.runtime.provenance import (
            execute_payload,
            record_graph_run,
            worker_payload,
        )

        plans = self.plan_graph(graph, code=code)
        completed = {p.name for p in plans if p.cached}
        pending = [p for p in plans if not p.cached]
        while pending:
            ready = [
                p
                for p in pending
                if all(d in completed for d in p.node.deps.values())
            ]
            if not ready:  # pragma: no cover - topo order precludes this
                stuck = sorted(p.name for p in pending)
                raise RunnerError(f"stage graph deadlock at {stuck}")
            self.map_tasks(
                execute_payload, [worker_payload(p, self.store) for p in ready]
            )
            completed.update(p.name for p in ready)
            pending = [p for p in pending if p.name not in completed]
        record_graph_run(self.store, plans)
        return GraphResult(store=self.store, plans=plans)

    def _sleep_before_retry(self, attempt: int, *coords: int) -> None:
        """Deterministically jittered backoff (attempt is 0-based)."""
        _backoff_sleep(self.backoff, self.seed, attempt, *coords)

    def _mark_done(self, key: str) -> None:
        if self.checkpoint is not None:
            self.checkpoint.mark(key)

    # The dedupe identity of a spec is its (deepest) artifact key.
    def _dedupe_key(self, spec: RunSpec, want: str) -> str:
        if want == "model":
            return self.store.key_for("model", spec.model_params())
        return self.store.key_for("profile", spec.profile_params())

    def _is_materialised(self, spec: RunSpec, want: str) -> bool:
        profile_key = self.store.key_for("profile", spec.profile_params())
        if not self.store.contains(profile_key):
            return False
        if want == "model":
            return self.store.contains(
                self.store.key_for("model", spec.model_params())
            )
        return True

    def _run_inline(self, spec: RunSpec, want: str) -> None:
        last: Exception | None = None
        for attempt in range(self.retries + 1):
            if attempt > 0:
                self._sleep_before_retry(attempt - 1)
            try:
                _materialise(
                    spec,
                    want,
                    self.store,
                    checkpoint_every=self.checkpoint_every,
                )
                return
            except Exception as exc:  # noqa: BLE001 - rewrapped below
                last = exc
        raise RunnerError(
            f"spec {spec.label} failed after {self.retries + 1} attempts: {last}"
        ) from last

    def _run_pool(self, missing: dict[str, RunSpec], want: str) -> None:
        attempts: dict[str, int] = {key: 0 for key in missing}
        workers = min(self.jobs, len(missing))

        def payload(key: str) -> dict[str, Any]:
            return {
                **missing[key].to_payload(),
                "want": want,
                "checkpoint_every": self.checkpoint_every,
            }

        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                # One key may have several in-flight futures: a running
                # future cannot be cancelled, so a timed-out spec gets a
                # speculative twin instead — first completion wins, and
                # the store's atomic content-addressed writes make the
                # loser's materialisation a harmless duplicate.
                futures: dict[str, list[Any]] = {
                    key: [pool.submit(_pool_worker, payload(key))]
                    for key in missing
                }
                started = {key: time.monotonic() for key in futures}
                while futures:
                    done, _pending = wait(
                        [f for fs in futures.values() for f in fs],
                        timeout=self.timeout,
                        return_when=FIRST_COMPLETED,
                    )
                    now = time.monotonic()
                    for key in list(futures):
                        finished = [f for f in futures[key] if f in done]
                        if finished:
                            if any(f.exception() is None for f in finished):
                                del futures[key]
                                self._mark_done(key)
                                continue
                            for future in finished:
                                futures[key].remove(future)
                            exc = finished[-1].exception()
                            if isinstance(exc, BrokenProcessPool):
                                raise exc
                            attempts[key] += len(finished)
                            if attempts[key] > self.retries:
                                spec = missing[key]
                                raise RunnerError(
                                    f"spec {spec.label} failed after "
                                    f"{self.retries + 1} attempts: {exc}"
                                ) from exc
                            if not futures[key]:
                                self._sleep_before_retry(attempts[key] - 1)
                                futures[key] = [
                                    pool.submit(_pool_worker, payload(key))
                                ]
                                started[key] = time.monotonic()
                        elif (
                            self.timeout is not None
                            and now - started[key] > self.timeout
                            and len(futures[key]) == 1
                        ):
                            # Straggler: speculatively re-execute on
                            # another worker (at most one twin per key).
                            futures[key].append(
                                pool.submit(_pool_worker, payload(key))
                            )
        except BrokenProcessPool:
            # A worker died hard (OOM, signal).  Finish what is left
            # in-process rather than losing the batch.
            for spec in missing.values():
                if not self._is_materialised(spec, want):
                    self._run_inline(spec, want)

    def _load(self, key: str, spec: RunSpec, want: str) -> Any:
        """Load an artifact, rematerialising if the entry turned out corrupt.

        ``contains`` only checks existence; a torn or stale-format entry
        surfaces as ``KeyError`` at load time (the store drops it), so
        one inline recompute heals the cache.
        """
        try:
            return self.store.get(key)
        except KeyError:
            self._run_inline(spec, want)
            return self.store.get(key)

    def run(
        self, specs: Iterable[RunSpec], *, want: str = "model"
    ) -> list[RunResult]:
        """Materialise every spec and return results in input order.

        ``want`` is ``"model"`` (profile + fitted phase model) or
        ``"profile"``.
        """
        if want not in ("profile", "model"):
            raise ValueError(f"want must be 'profile' or 'model', got {want!r}")
        ordered: Sequence[RunSpec] = list(specs)

        unique: dict[str, RunSpec] = {}
        cached: dict[str, bool] = {}
        for spec in ordered:
            key = self._dedupe_key(spec, want)
            if key not in unique:
                unique[key] = spec
                cached[key] = self._is_materialised(spec, want)

        # A checkpoint journal lets a killed batch resume: keys it lists
        # are skipped here, and any that the store lost since are healed
        # lazily by ``_load``'s recompute path.
        done_keys = self.checkpoint.done if self.checkpoint is not None else set()
        missing = {
            k: s for k, s in unique.items() if not cached[k] and k not in done_keys
        }
        if missing and self.checkpoint is not None and self.checkpoint_every:
            # Journal where each unfinished spec's stream checkpoints
            # live, so a killed batch restarted with this journal can be
            # audited (``simprof cache checkpoints``) and resumes from
            # the recorded chains.
            from repro.runtime.checkpoint import checkpoint_job_key

            for key, spec in missing.items():
                self.checkpoint.mark_inflight(
                    key,
                    {
                        "job_key": checkpoint_job_key(spec.profile_params()),
                        "label": spec.label,
                    },
                )
        if missing:
            if self.jobs > 1 and len(missing) > 1:
                self._run_pool(missing, want)
                # Workers wrote to disk; anything a broken pool left
                # behind was finished inline by _run_pool.
                for key, spec in missing.items():
                    if not self._is_materialised(spec, want):
                        self._run_inline(spec, want)
                    self._mark_done(key)
            else:
                for key, spec in missing.items():
                    self._run_inline(spec, want)
                    self._mark_done(key)
        if self.checkpoint is not None:
            for key in unique:
                self._mark_done(key)

        results: list[RunResult] = []
        for spec in ordered:
            profile_key = self.store.key_for("profile", spec.profile_params())
            job = self._load(profile_key, spec, want)
            model = None
            model_key = None
            if want == "model":
                model_key = self.store.key_for("model", spec.model_params())
                model = self._load(model_key, spec, want)
            results.append(
                RunResult(
                    spec=spec,
                    job=job,
                    model=model,
                    profile_key=profile_key,
                    model_key=model_key,
                    cached=cached[self._dedupe_key(spec, want)],
                )
            )
        return results


def run_specs(
    specs: Iterable[RunSpec],
    *,
    want: str = "model",
    jobs: int | None = None,
    store: ArtifactStore | None = None,
    retries: int = 2,
    backoff: float = 0.0,
    timeout: float | None = None,
    checkpoint: str | Path | None = None,
    checkpoint_every: int | None = None,
    seed: int = 0,
) -> list[RunResult]:
    """Convenience wrapper: run a batch against the default store."""
    runner = ExperimentRunner(
        store,
        jobs=jobs,
        retries=retries,
        backoff=backoff,
        timeout=timeout,
        checkpoint=checkpoint,
        checkpoint_every=checkpoint_every,
        seed=seed,
    )
    return runner.run(specs, want=want)
