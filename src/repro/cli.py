"""Command-line interface.

The everyday entry points::

    simprof list                         # workloads and graph inputs
    simprof run wc_sp --points 20        # run + analyze one benchmark
    simprof profile wc_sp --stream       # streaming profiling pipeline
    simprof figure fig7 --jobs 4         # regenerate a paper figure
    simprof sensitivity cc_sp            # input-sensitivity analysis
    simprof cache ls                     # inspect the artifact store
    simprof cache graph --why KEY        # explain a stage recompute
    simprof cache stats                  # provenance hit/miss counters
    simprof cache gc --stale             # evict outdated artifacts
    simprof stats                        # per-stage timing breakdown
    simprof check --strict src           # static determinism lints

``simprof`` is installed as a console script; ``python -m repro.cli``
works identically.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

__all__ = ["main", "build_parser"]

FIGURES = {
    "table1": "repro.experiments.table1:run_table1",
    "table2": "repro.experiments.table2:run_table2",
    "fig6": "repro.experiments.fig06_cov:run_fig6",
    "fig7": "repro.experiments.fig07_errors:run_fig7",
    "fig8": "repro.experiments.fig08_samplesize:run_fig8",
    "fig9": "repro.experiments.fig09_phasecount:run_fig9",
    "fig10": "repro.experiments.fig10_phasetypes:run_fig10",
    "fig11": "repro.experiments.fig11_allocation:run_fig11",
    "fig12": "repro.experiments.fig12_13_sensitivity:run_fig12_13",
    "fig13": "repro.experiments.fig12_13_sensitivity:run_fig12_13",
}


def _parse_label(label: str) -> tuple[str, str]:
    """``wc_sp`` -> ("wc", "spark"); also accepts ``wc spark`` forms."""
    suffixes = {"sp": "spark", "hp": "hadoop", "spark": "spark", "hadoop": "hadoop"}
    if "_" in label:
        workload, _, suffix = label.rpartition("_")
        if suffix in suffixes:
            return workload, suffixes[suffix]
    raise SystemExit(
        f"error: cannot parse benchmark label {label!r} "
        "(expected e.g. wc_sp, cc_hp)"
    )


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="simprof",
        description="SimProf (IPDPS'17) reproduction: sampling framework "
        "for data analytic workloads.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads and graph inputs")

    run = sub.add_parser("run", help="run a benchmark and select points")
    run.add_argument("label", help="benchmark label, e.g. wc_sp or cc_hp")
    run.add_argument("--points", type=int, default=20,
                     help="simulation points to select (default 20)")
    run.add_argument("--scale", type=float, default=1.0,
                     help="input-volume multiplier (default 1.0)")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--graph", default=None,
                     help="Table II input name for graph workloads")
    run.add_argument("--unit-size", type=int, default=100_000_000)
    run.add_argument("--snapshot-period", type=int, default=2_000_000)
    run.add_argument("--error", type=float, default=None,
                     help="also solve the sample size for this relative "
                     "CPI error bound (e.g. 0.05)")
    run.add_argument("--export-dir", default=None,
                     help="write <label>.simpoints/.weights (SimPoint "
                     "format) into this directory")

    prof = sub.add_parser(
        "profile",
        help="profile a benchmark (batch, or --stream for the live pipeline)",
    )
    prof.add_argument("label", help="benchmark label, e.g. wc_sp or cc_hp")
    prof.add_argument("--stream", action="store_true",
                      help="consume the trace as a live stream: the trace "
                      "is never materialised and units are cut while the "
                      "workload runs (bit-identical result)")
    prof.add_argument("--points", type=int, default=20,
                      help="simulation points to select (default 20)")
    prof.add_argument("--scale", type=float, default=1.0,
                      help="input-volume multiplier (default 1.0)")
    prof.add_argument("--seed", type=int, default=0)
    prof.add_argument("--graph", default=None,
                      help="Table II input name for graph workloads")
    prof.add_argument("--unit-size", type=int, default=100_000_000)
    prof.add_argument("--snapshot-period", type=int, default=2_000_000)
    prof.add_argument("--faults", default=None, metavar="PLAN",
                      help="JSON fault plan (repro.faults.FaultPlan): "
                      "inject deterministic cluster faults — and stream "
                      "faults with --stream — then report the recoveries")
    prof.add_argument("--worker", action="store_true",
                      help="with --stream: produce the trace in a worker "
                      "process, shipped zero-copy over shared memory "
                      "(falls back to a pickling queue transport on "
                      "platforms without shared_memory, and for "
                      "fault-injected streams)")
    prof.add_argument("--checkpoint-every", type=int, default=None,
                      metavar="N",
                      help="with --stream: persist a resumable snapshot "
                      "of the profiling session to the artifact store "
                      "every N segment batches (off by default: zero "
                      "overhead)")
    prof.add_argument("--from-peer", default=None, metavar="PEER",
                      help="with --resume: pull this job's checkpoint chain "
                           "from a replica peer directory before resuming "
                           "(disaster recovery without a shared filesystem)")
    prof.add_argument("--resume", action="store_true",
                      help="with --checkpoint-every: resume from the "
                      "latest checkpoint of an identical interrupted "
                      "run instead of starting fresh")

    fig = sub.add_parser("figure", help="regenerate a paper table/figure")
    fig.add_argument("name", choices=sorted(FIGURES),
                     help="which experiment to run")
    fig.add_argument("--scale", type=float, default=1.0)
    fig.add_argument("--seed", type=int, default=0)
    fig.add_argument("--unit-size", type=int, default=100_000_000)
    fig.add_argument("--snapshot-period", type=int, default=2_000_000)
    fig.add_argument("--draws", type=int, default=20,
                     help="sampling draws averaged for SRS/SimProf")
    fig.add_argument("--jobs", type=int, default=None,
                     help="parallel workload runs (default: $SIMPROF_JOBS "
                     "or serial)")

    report = sub.add_parser(
        "report", help="run every experiment and write a markdown report"
    )
    report.add_argument("--output", "-o", default="simprof_report.md")
    report.add_argument("--scale", type=float, default=1.0)
    report.add_argument("--seed", type=int, default=0)
    report.add_argument("--unit-size", type=int, default=100_000_000)
    report.add_argument("--snapshot-period", type=int, default=2_000_000)
    report.add_argument("--draws", type=int, default=20)
    report.add_argument("--no-extensions", action="store_true")
    report.add_argument("--jobs", type=int, default=None,
                        help="parallel workload runs (default: $SIMPROF_JOBS "
                        "or serial)")

    sens = sub.add_parser(
        "sensitivity", help="input-sensitivity analysis for a graph workload"
    )
    sens.add_argument("label", help="cc_sp, cc_hp, rank_sp or rank_hp")
    sens.add_argument("--references", nargs="*", default=None,
                      help="reference input names (default: all seven)")
    sens.add_argument("--scale", type=float, default=1.0)
    sens.add_argument("--points", type=int, default=20)

    cache = sub.add_parser("cache", help="inspect or clean the artifact store")
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_ls = cache_sub.add_parser("ls", help="list cached artifacts")
    cache_ls.add_argument("--kind", default=None,
                          help="filter by artifact kind (profile, model)")
    cache_info = cache_sub.add_parser("info", help="show one entry's manifest")
    cache_info.add_argument("key", help="artifact key (see `simprof cache ls`)")
    cache_graph = cache_sub.add_parser(
        "graph",
        help="inspect the stage-level provenance graph recorded in "
             "manifests",
    )
    cache_graph.add_argument("--why", default=None, metavar="KEY",
                             help="explain one stage artifact: its lineage "
                                  "record and what changed vs the previous "
                                  "run of the same node")
    cache_graph.add_argument("--invalidated", action="store_true",
                             help="list stage artifacts whose recorded code "
                                  "fingerprint no longer matches the working "
                                  "tree (they will recompute next run)")
    cache_sub.add_parser(
        "stats",
        help="provenance counters: graph nodes, reuse hits/misses, "
             "invalidation causes",
    )
    cache_verify = cache_sub.add_parser(
        "verify", help="integrity-check payloads against manifest digests"
    )
    cache_verify.add_argument("--repair", action="store_true",
                              help="move corrupt entries to "
                              "<store>/quarantine/ instead of just "
                              "reporting them")
    cache_ckpt = cache_sub.add_parser(
        "checkpoints",
        help="list, inspect or gc in-flight stream checkpoints",
    )
    cache_ckpt.add_argument("--fleet", action="store_true",
                            help="summarise the in-flight job journal: one "
                                 "row per job with chain length and peer "
                                 "acknowledgement state")
    cache_ckpt.add_argument("--peer", default=None, metavar="PEER",
                            help="replica peer directory to check "
                                 "acknowledgements against (default: "
                                 "$SIMPROF_REPLICA_PEER)")
    cache_ckpt.add_argument("--force", action="store_true",
                            help="with --gc: collect chain entries even if "
                                 "the configured peer has not acknowledged "
                                 "them")
    cache_ckpt.add_argument("--inspect", default=None, metavar="KEY",
                            help="decode one checkpoint's snapshot and "
                            "summarise its components")
    cache_ckpt.add_argument("--gc", action="store_true",
                            help="delete checkpoint manifests instead of "
                            "listing them")
    cache_ckpt.add_argument("--job", default=None, metavar="JOBKEY",
                            help="restrict listing/gc to one job key")
    cache_rep = cache_sub.add_parser(
        "replicate",
        help="push checkpoint chains and the in-flight journal to a "
             "replica peer (or pull them back with --pull)",
    )
    cache_rep.add_argument("peer", help="peer store directory")
    cache_rep.add_argument("--watch", action="store_true",
                           help="keep sweeping every --interval seconds")
    cache_rep.add_argument("--interval", type=float, default=2.0,
                           help="seconds between --watch sweeps (default 2)")
    cache_rep.add_argument("--rounds", type=int, default=None,
                           help="with --watch: stop after N sweeps "
                                "(default: run until interrupted)")
    cache_rep.add_argument("--pull", action="store_true",
                           help="reverse direction: fetch the peer's chains "
                                "and journal into the local store "
                                "(disaster recovery)")
    cache_rep.add_argument("--kind", action="append", default=None,
                           metavar="KIND",
                           help="artifact kinds to replicate (repeatable; "
                                "default: checkpoint + inflight)")
    cache_gc = cache_sub.add_parser("gc", help="evict artifacts")
    cache_gc.add_argument("--stale", action="store_true",
                          help="remove entries from other store versions")
    cache_gc.add_argument("--older-than", type=float, default=None,
                          metavar="DAYS", help="remove entries older than DAYS")
    cache_gc.add_argument("--kind", default=None,
                          help="restrict to one artifact kind")
    cache_gc.add_argument("--all", action="store_true", dest="everything",
                          help="remove every entry")
    cache_gc.add_argument("--dry-run", action="store_true",
                          help="report what would be removed, delete nothing")

    sub.add_parser(
        "stats", help="per-stage timing breakdown aggregated from manifests"
    )

    check = sub.add_parser(
        "check",
        help="static invariant checks (determinism, seed discipline, "
        "stream contracts)",
    )
    check.add_argument("paths", nargs="*", default=["src"],
                       help="files or directories to check (default: src)")
    check.add_argument("--strict", action="store_true",
                       help="fail on baselined findings too (CI mode)")
    check.add_argument("--format", choices=["text", "json", "sarif"],
                       default="text", dest="output_format")
    check.add_argument("--baseline", default=None, metavar="FILE",
                       help="baseline file (default: .simprof-baseline.json "
                       "next to the first path, if present)")
    check.add_argument("--write-baseline", action="store_true",
                       help="rewrite the baseline from the current findings "
                       "and exit 0")
    check.add_argument("--rules", default=None, metavar="IDS",
                       help="comma-separated rule ids (default: all)")
    check.add_argument("--list-rules", action="store_true",
                       help="print the rule catalogue and exit")
    check.add_argument("--jobs", default=None, metavar="N",
                       help="fan analysis out over N processes "
                       "('auto' = CPU count)")
    check.add_argument("--changed", action="store_true",
                       help="report only files whose digest changed since "
                       "the cached analysis, plus their reverse-dependency "
                       "closure; print what was skipped")
    check.add_argument("--no-cache", action="store_true",
                       help="bypass the ArtifactStore analysis cache")
    return parser


def _cmd_list() -> int:
    from repro.datagen.seeds import GRAPH_INPUTS
    from repro.experiments.common import format_table
    from repro.workloads import WORKLOADS

    print(
        format_table(
            ["abbrev", "workload", "type", "labels"],
            [
                (cls.abbrev, cls.name, cls.workload_type,
                 f"{cls.abbrev}_hp, {cls.abbrev}_sp")
                for cls in WORKLOADS.values()
            ],
            title="Workloads (Table I)",
        )
    )
    print()
    print(
        format_table(
            ["input", "type", "role", "nodes"],
            [
                (g.name, g.category, g.role, g.n_nodes)
                for g in GRAPH_INPUTS.values()
            ],
            title="Graph inputs (Table II)",
        )
    )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro import SimProf, SimProfConfig
    from repro.datagen.seeds import get_graph_input
    from repro.experiments.common import format_table
    from repro.workloads import run_workload

    workload, framework = _parse_label(args.label)
    graph = get_graph_input(args.graph) if args.graph else None
    print(f"Running {args.label} (scale {args.scale}, seed {args.seed}) ...")
    trace = run_workload(
        workload,
        framework,
        scale=args.scale,
        seed=args.seed,
        graph=graph,
        input_name=args.graph or "default",
    )
    simprof = SimProf(
        SimProfConfig(
            unit_size=args.unit_size,
            snapshot_period=args.snapshot_period,
            seed=args.seed,
        )
    )
    result = simprof.analyze(trace, n_points=args.points)

    print(
        format_table(
            ["phase", "weight", "CPI", "CoV", "points", "dominant method"],
            [
                (
                    s.phase_id,
                    f"{s.weight:.1%}",
                    f"{s.cpi_mean:.3f}",
                    f"{s.cpi_cov:.3f}",
                    int(result.points.allocation[s.phase_id]),
                    (result.model.top_methods(s.phase_id, 1) or [("-", 0)])[0][0],
                )
                for s in result.phase_stats
            ],
            title=(
                f"{args.label}: {result.job.n_units} units, "
                f"{result.n_phases} phases"
            ),
        )
    )
    lo, hi = result.points.confidence_interval(0.997)
    print(f"\nsimulation points: {[int(p) for p in result.simulation_points]}")
    print(
        f"estimate {result.points.estimate:.4f} vs oracle "
        f"{result.oracle_cpi():.4f} (error {result.sampling_error():.2%}); "
        f"99.7% CI [{lo:.4f}, {hi:.4f}]"
    )
    if args.error is not None:
        n = simprof.sample_size_for(
            result.job, result.model, relative_error=args.error
        )
        print(f"sample size for {args.error:.0%} error bound: {n} units")
    if args.export_dir is not None:
        from repro.core.export import export_simpoints

        files = export_simpoints(
            result.points, result.model, args.export_dir, basename=args.label
        )
        print(f"wrote {files.simpoints} and {files.weights}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro import SimProf, SimProfConfig
    from repro.datagen.seeds import get_graph_input
    from repro.experiments.common import format_table
    from repro.runtime.instrument import get_instrumentation
    from repro.workloads import run_workload, run_workload_stream

    workload, framework = _parse_label(args.label)
    graph = get_graph_input(args.graph) if args.graph else None
    faults = None
    if args.faults:
        from repro.faults import FaultPlan

        try:
            faults = FaultPlan.load(args.faults)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"error: cannot load fault plan: {exc}") from exc
    if not args.stream and (
        args.worker or args.checkpoint_every is not None or args.resume
    ):
        raise SystemExit(
            "error: --worker/--checkpoint-every/--resume require --stream"
        )
    if args.resume and args.checkpoint_every is None:
        raise SystemExit("error: --resume requires --checkpoint-every")
    if args.from_peer and not args.resume:
        raise SystemExit("error: --from-peer requires --resume")
    if args.checkpoint_every is not None and args.checkpoint_every < 1:
        raise SystemExit("error: --checkpoint-every must be >= 1")
    mode = "streaming" if args.stream else "batch"
    print(f"Profiling {args.label} ({mode}, scale {args.scale}, "
          f"seed {args.seed}) ...")
    config = SimProfConfig(
        unit_size=args.unit_size,
        snapshot_period=args.snapshot_period,
        seed=args.seed,
    )
    simprof = SimProf(config)
    run_kwargs = dict(
        scale=args.scale,
        seed=args.seed,
        graph=graph,
        input_name=args.graph or "default",
        faults=faults,
    )
    if args.stream:
        if args.worker:
            from repro.workloads import stream_in_worker

            stream = stream_in_worker(
                workload,
                framework,
                scale=args.scale,
                seed=args.seed,
                graph_name=args.graph,
                input_name=args.graph or "default",
                faults=faults,
            )
            print(f"worker transport: {stream.transport}")
        else:
            stream = run_workload_stream(workload, framework, **run_kwargs)
        checkpoint = None
        replication = None
        if args.checkpoint_every is not None:
            from repro.runtime.checkpoint import (
                CheckpointManager,
                CheckpointPolicy,
                checkpoint_job_key,
            )
            from repro.runtime.replicate import resolve_replication
            from repro.runtime.store import default_store

            job_key = checkpoint_job_key(
                {
                    "workload": workload,
                    "framework": framework,
                    "scale": args.scale,
                    "seed": args.seed,
                    "graph": args.graph or "",
                    # A faulty stream profiles differently from a clean
                    # one: two runs that differ only in the fault plan
                    # must never share a checkpoint chain (SPA010).
                    "faults": args.faults or "",
                    "profiler": config.profiler_config(),
                }
            )
            if args.from_peer:
                from repro.runtime.replicate import FilesystemPeer, pull_job

                report = pull_job(
                    FilesystemPeer(args.from_peer), default_store(), job_key
                )
                print(f"pulled job {job_key} from {args.from_peer}: "
                      f"{report.summary()}")
                if not report.ok:
                    print("warning: some peer entries failed to pull; "
                          "resuming from what arrived", file=sys.stderr)
            replication = resolve_replication()
            manager = CheckpointManager(
                default_store(), job_key, replicate=replication
            )
            if not args.resume:
                manager.clear()  # start fresh, drop stale chains
            checkpoint = CheckpointPolicy(
                manager, every=args.checkpoint_every, resume=args.resume
            )
        result = simprof.analyze_stream(
            stream, n_points=args.points, checkpoint=checkpoint
        )
        if checkpoint is not None:
            cleared = checkpoint.manager.clear()
            print(f"checkpointing: job {job_key}, every "
                  f"{args.checkpoint_every} batches "
                  f"({cleared} snapshot(s) retired on completion)")
        if replication is not None:
            status = replication.close()
            degraded = " (DEGRADED: local-only)" if status.degraded else ""
            print(f"replication: {status.pushed} pushed, "
                  f"{status.present} already present, lag {status.lag}"
                  f"{degraded}")
    else:
        trace = run_workload(workload, framework, **run_kwargs)
        result = simprof.analyze(trace, n_points=args.points)

    print(
        format_table(
            ["phase", "weight", "CPI", "CoV", "units"],
            [
                (
                    s.phase_id,
                    f"{s.weight:.1%}",
                    f"{s.cpi_mean:.3f}",
                    f"{s.cpi_cov:.3f}",
                    s.n_units,
                )
                for s in result.phase_stats
            ],
            title=(
                f"{args.label}: {result.job.n_units} units, "
                f"{result.n_phases} phases ({mode})"
            ),
        )
    )
    print(f"\nsimulation points: {[int(p) for p in result.simulation_points]}")
    print(
        f"estimate {result.points.estimate:.4f} vs oracle "
        f"{result.oracle_cpi():.4f} (error {result.sampling_error():.2%})"
    )
    if args.stream:
        snap = get_instrumentation().snapshot().get("stream-profiling")
        if snap is not None and snap.counters.get("units"):
            units = snap.counters["units"]
            secs = snap.counters.get("unit_seconds", 0.0)
            if secs > 0:
                print(
                    f"streaming throughput: {units / secs:,.0f} units/s; "
                    f"mean emission latency "
                    f"{1e6 * secs / units:,.1f} us/unit "
                    f"({units:.0f} units across all threads)"
                )
    if faults is not None:
        from repro.faults import FaultReport

        report_dict = (getattr(result.job, "meta", None) or {}).get(
            "fault_report"
        )
        if report_dict:
            print("\n" + FaultReport.from_dict(report_dict).summary())
        else:
            print("\nfault plan active, no faults fired "
                  "(rates too low for this run)")
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    import importlib

    from repro.core.pipeline import SimProfConfig
    from repro.experiments.common import ExperimentConfig

    if args.jobs is not None:
        os.environ["SIMPROF_JOBS"] = str(args.jobs)
    spec = FIGURES[args.name]
    module_name, _, fn_name = spec.partition(":")
    fn = getattr(importlib.import_module(module_name), fn_name)
    if args.name.startswith("table"):
        result = fn()
    else:
        cfg = ExperimentConfig(
            scale=args.scale,
            seed=args.seed,
            n_sampling_draws=args.draws,
            simprof=SimProfConfig(
                seed=args.seed,
                unit_size=args.unit_size,
                snapshot_period=args.snapshot_period,
            ),
        )
        result = fn(cfg)
    print(result.to_text())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.core.pipeline import SimProfConfig
    from repro.experiments.common import ExperimentConfig
    from repro.experiments.report import generate_report

    if args.jobs is not None:
        os.environ["SIMPROF_JOBS"] = str(args.jobs)
    cfg = ExperimentConfig(
        scale=args.scale,
        seed=args.seed,
        n_sampling_draws=args.draws,
        simprof=SimProfConfig(
            seed=args.seed,
            unit_size=args.unit_size,
            snapshot_period=args.snapshot_period,
        ),
    )
    text = generate_report(
        cfg,
        include_extensions=not args.no_extensions,
        progress=lambda msg: print(f"  running {msg} ..."),
    )
    with open(args.output, "w") as fh:
        fh.write(text)
    print(f"wrote {args.output}")
    return 0


def _cmd_sensitivity(args: argparse.Namespace) -> int:
    from repro.core.pipeline import SimProfConfig
    from repro.experiments.common import ExperimentConfig
    from repro.experiments.fig12_13_sensitivity import run_fig12_13

    workload, framework = _parse_label(args.label)
    if workload not in ("cc", "rank"):
        raise SystemExit("error: sensitivity analysis targets cc/rank")
    cfg = ExperimentConfig(scale=args.scale, simprof=SimProfConfig())
    result = run_fig12_13(
        cfg,
        n_points=args.points,
        reference_names=tuple(args.references) if args.references else None,
    )
    print(result.to_text())
    print()
    detail = result.details[f"{workload}_{'sp' if framework == 'spark' else 'hp'}"]
    for phase in detail.phases:
        verdict = "SENSITIVE" if phase.sensitive else "insensitive"
        by = f" ({', '.join(phase.triggered_by)})" if phase.triggered_by else ""
        print(f"  phase {phase.phase_id}: {verdict}{by}")
    return 0


def _format_age(seconds: float) -> str:
    """Compact age rendering for cache listings."""
    if seconds < 120:
        return f"{seconds:.0f}s"
    if seconds < 7200:
        return f"{seconds / 60:.0f}m"
    if seconds < 172800:
        return f"{seconds / 3600:.1f}h"
    return f"{seconds / 86400:.1f}d"


def _cmd_cache(args: argparse.Namespace) -> int:
    import time

    from repro.experiments.common import format_table
    from repro.runtime.store import default_store

    store = default_store()
    if args.cache_command == "ls":
        entries = [
            m for m in store.entries()
            if args.kind is None or m.kind == args.kind
        ]
        corrupt = [
            m.key for m in entries
            if store.manifest_status(m.key) == "corrupt"
        ]
        if corrupt:
            print(
                f"warning: {len(corrupt)} corrupt manifest(s), "
                "showing synthesised metadata "
                "(run `simprof cache verify` to inspect)",
                file=sys.stderr,
            )
        now = time.time()
        print(
            format_table(
                ["key", "kind", "ver", "size", "hits", "compute", "depth",
                 "age"],
                [
                    (
                        m.key,
                        m.kind,
                        m.version,
                        f"{m.size_bytes / 1024:.0f}K",
                        m.hits,
                        f"{m.compute_seconds:.2f}s",
                        (m.provenance or {}).get("depth", "-"),
                        _format_age(now - m.created) if m.created else "?",
                    )
                    for m in entries
                ],
                title=f"Artifact store: {store.root} ({len(entries)} entries)",
            )
        )
        return 0
    if args.cache_command == "info":
        manifest = store.manifest(args.key)
        if manifest is None:
            status = store.manifest_status(args.key)
            detail = "no" if status == "missing" else status
            print(f"error: {detail} manifest for {args.key!r} in {store.root}",
                  file=sys.stderr)
            return 1
        print(manifest.to_json())
        return 0
    if args.cache_command == "graph":
        from repro.runtime.provenance import (
            STAGE_KIND,
            explain_key,
            invalidated_entries,
        )

        if args.why is not None:
            try:
                explanation = explain_key(store, args.why)
            except KeyError as exc:
                print(f"error: {exc.args[0]}", file=sys.stderr)
                return 1
            record = explanation["record"]
            print(f"{args.why}")
            print(f"  node:   {record.get('node', '?')} "
                  f"(stage {record.get('stage', '?')}, "
                  f"depth {record.get('depth', '?')})")
            print(f"  fn:     {record.get('fn', '?')}")
            print(f"  params: {record.get('params_digest', '?')}")
            code = record.get("code") or {}
            print(f"  code:   {code.get('fingerprint', '?')} over "
                  f"{len(code.get('modules', {}))} module(s) "
                  f"(roots: {', '.join(code.get('roots', [])) or '-'})")
            for inp in sorted(record.get("upstream") or {}):
                up = record["upstream"][inp]
                print(f"  input:  {inp} <- {up.get('node', '?')} "
                      f"[{up.get('key', '?')}]")
            if explanation["predecessor"] is None:
                print("  first recorded run of this node (no predecessor)")
            elif not explanation["changed"]:
                print(f"  identical to predecessor "
                      f"{explanation['predecessor']}")
            else:
                print(f"  vs predecessor {explanation['predecessor']}:")
                for change in explanation["changed"]:
                    detail = ""
                    if change.get("modules"):
                        detail = f" ({', '.join(change['modules'])})"
                    if change.get("inputs"):
                        detail = f" ({', '.join(change['inputs'])})"
                    print(f"    changed: {change['what']}{detail}")
            return 0
        if args.invalidated:
            stale = invalidated_entries(store)
            for entry in stale:
                mods = ", ".join(entry["modules"]) or "?"
                print(f"  {entry['key']}  {entry['node']}  ({mods})")
            print(f"{len(stale)} stage artifact(s) with stale code "
                  f"fingerprints in {store.root}")
            return 1 if stale else 0
        nodes = [
            m for m in store.entries()
            if m.kind == STAGE_KIND and m.provenance
        ]
        nodes.sort(
            key=lambda m: (m.provenance.get("depth", 0),
                           m.provenance.get("node", ""))
        )
        print(
            format_table(
                ["node", "stage", "depth", "inputs", "key"],
                [
                    (
                        m.provenance.get("node", "?"),
                        m.provenance.get("stage", "?"),
                        m.provenance.get("depth", "?"),
                        ", ".join(sorted(m.provenance.get("upstream") or {}))
                        or "-",
                        m.key,
                    )
                    for m in nodes
                ],
                title=(
                    f"Provenance graph: {store.root} "
                    f"({len(nodes)} stage artifact(s))"
                ),
            )
        )
        return 0
    if args.cache_command == "stats":
        from repro.runtime.provenance import provenance_stats

        stats = provenance_stats(store)
        print(
            format_table(
                ["stage", "artifacts"],
                list(stats["per_stage"].items()),
                title=(
                    f"Provenance: {stats['entries']} stage artifact(s), "
                    f"max lineage depth {stats['max_depth']}"
                ),
            )
        )
        print(
            f"\nrun_graph sessions: {stats['runs']}; "
            f"node reuse {stats['hits']} hit(s) / "
            f"{stats['misses']} miss(es)"
        )
        if stats["causes"]:
            breakdown = ", ".join(
                f"{cause}: {count}"
                for cause, count in sorted(stats["causes"].items())
            )
            print(f"miss causes: {breakdown}")
        return 0
    if args.cache_command == "verify":
        from repro.runtime.checkpoint import verify_checkpoints

        outcome = store.verify(repair=args.repair)
        # Checkpoints get a second, snapshot-level pass: an entry can
        # match its payload digest byte-for-byte yet be unresumable
        # (bad state_digest, undecodable snapshot) — those must be
        # reported, and with --repair quarantined, not left loadable.
        deep = verify_checkpoints(store, repair=args.repair)
        deep_corrupt = set(deep["corrupt"])
        outcome["ok"] = [k for k in outcome["ok"] if k not in deep_corrupt]
        outcome["corrupt"] = sorted(set(outcome["corrupt"]) | deep_corrupt)
        for key in outcome["corrupt"]:
            label = "quarantined" if args.repair else "CORRUPT"
            print(f"  {label}: {key}")
        print(
            f"{len(outcome['ok'])} ok, {len(outcome['corrupt'])} corrupt, "
            f"{len(outcome['unverified'])} unverified in {store.root} "
            f"({len(deep['ok'])} checkpoint(s) deep-verified)"
        )
        return 1 if outcome["corrupt"] and not args.repair else 0
    if args.cache_command == "replicate":
        from repro.runtime.replicate import (
            REPLICATION_KINDS,
            FilesystemPeer,
            pull_fleet,
            replicate_store,
        )

        peer = FilesystemPeer(args.peer)
        kinds = tuple(args.kind) if args.kind else REPLICATION_KINDS
        rounds = 0
        while True:
            if args.pull:
                report = pull_fleet(peer, store, kinds=kinds)
                direction = f"pulled from {peer.name}"
            else:
                report = replicate_store(store, peer, kinds=kinds)
                direction = f"pushed to {peer.name}"
            print(f"{direction}: {report.summary()}")
            for out in report.outcomes:
                if out.action == "failed":
                    print(f"  failed: {out.key}: {out.error}", file=sys.stderr)
            rounds += 1
            if not args.watch or (
                args.rounds is not None and rounds >= args.rounds
            ):
                return 0 if report.ok else 1
            time.sleep(args.interval)
    if args.cache_command == "checkpoints":
        from repro.runtime.checkpoint import iter_checkpoint_manifests
        from repro.runtime.snapshot import decode_state

        manifests = [
            m for m in iter_checkpoint_manifests(store)
            if args.job is None or m.params.get("job") == args.job
        ]
        manifests.sort(
            key=lambda m: (m.params.get("job", ""), m.params.get("position", 0))
        )
        if args.inspect is not None:
            manifest = next(
                (m for m in manifests if m.key == args.inspect), None
            )
            if manifest is None:
                print(f"error: no checkpoint {args.inspect!r} in {store.root}",
                      file=sys.stderr)
                return 1
            print(manifest.to_json())
            state = decode_state(store.get(manifest.key))
            kinds = {
                name: value.get("kind")
                for name, value in state.items()
                if isinstance(value, dict) and "kind" in value
            }
            print(f"snapshot components: {kinds}")
            return 0
        if args.gc:
            from repro.runtime.replicate import resolve_peer

            # Bounded-lag safety: when a replica peer is configured, a
            # chain entry the peer has not acknowledged (digest-verified
            # copy present) may be the only copy that survives a local
            # disk loss — keep it unless --force.
            peer = None if args.force else resolve_peer(args.peer)
            removed = 0
            retained = 0
            reclaimed = 0
            for manifest in manifests:
                if peer is not None and not (
                    manifest.payload_sha256
                    and peer.has(manifest.key, manifest.payload_sha256)
                ):
                    retained += 1
                    continue
                reclaimed += manifest.size_bytes
                store.delete(manifest.key)
                removed += 1
            print(f"removed {removed} checkpoint(s) "
                  f"({reclaimed / 1024:.0f}K)")
            if retained:
                print(f"retained {retained} checkpoint(s) the peer has not "
                      "acknowledged (bounded-lag safety; --force to "
                      "override)")
            return 0
        if args.fleet:
            from repro.runtime.replicate import iter_inflight, resolve_peer

            peer = resolve_peer(args.peer)
            rows = []
            for job_key, payload in iter_inflight(store):
                chain = [
                    m for m in manifests if m.params.get("job") == job_key
                ]
                latest = max(
                    (int(m.params.get("position", 0)) for m in chain),
                    default=0,
                )
                if peer is not None:
                    acked = sum(
                        1 for m in chain
                        if m.payload_sha256
                        and peer.has(m.key, m.payload_sha256)
                    )
                    ack = f"{acked}/{len(chain)}"
                else:
                    ack = "-"
                rows.append(
                    (
                        job_key,
                        payload.get("label", "?"),
                        payload.get("checkpoint_every", "?"),
                        len(chain),
                        latest,
                        ack,
                    )
                )
            print(
                format_table(
                    ["job", "label", "every", "chain", "latest", "peer-ack"],
                    rows,
                    title=(
                        f"In-flight fleet: {store.root} "
                        f"({len(rows)} journalled job(s))"
                    ),
                )
            )
            return 0
        now = time.time()
        print(
            format_table(
                ["key", "job", "position", "size", "age"],
                [
                    (
                        m.key,
                        m.params.get("job", "?"),
                        m.params.get("position", "?"),
                        f"{m.size_bytes / 1024:.0f}K",
                        _format_age(now - m.created) if m.created else "?",
                    )
                    for m in manifests
                ],
                title=(
                    f"In-flight checkpoints: {store.root} "
                    f"({len(manifests)} across "
                    f"{len({m.params.get('job') for m in manifests})} job(s))"
                ),
            )
        )
        return 0
    if args.cache_command == "gc":
        if not (args.stale or args.older_than is not None or args.everything):
            print("error: pass --stale, --older-than DAYS and/or --all",
                  file=sys.stderr)
            return 2
        removed, reclaimed = store.gc(
            max_age_days=args.older_than,
            kind=args.kind,
            stale_only=args.stale,
            everything=args.everything,
            dry_run=args.dry_run,
        )
        verb = "would remove" if args.dry_run else "removed"
        print(f"{verb} {removed} entries ({reclaimed / 1024:.0f}K)")
        return 0
    raise AssertionError("unreachable")  # pragma: no cover


def _cmd_stats() -> int:
    from repro.experiments.common import format_table
    from repro.runtime.store import default_store

    store = default_store()
    entries = list(store.entries())
    corrupt = sum(
        1 for m in entries if store.manifest_status(m.key) == "corrupt"
    )
    if corrupt:
        print(
            f"warning: {corrupt} corrupt manifest(s) counted with no "
            "stage data (run `simprof cache verify`)",
            file=sys.stderr,
        )
    stages: dict[str, tuple[int, float]] = {}
    counters: dict[str, dict[str, float]] = {}
    total_hits = 0
    total_compute = 0.0
    for manifest in entries:
        total_hits += manifest.hits
        total_compute += manifest.compute_seconds
        for name, seconds in manifest.stages.items():
            calls, secs = stages.get(name, (0, 0.0))
            stages[name] = (calls + 1, secs + seconds)
        for name, stage_counters in manifest.counters.items():
            acc = counters.setdefault(name, {})
            for key, value in stage_counters.items():
                acc[key] = acc.get(key, 0.0) + value
    print(
        format_table(
            ["stage", "artifacts", "total s", "share %"],
            [
                (
                    name,
                    calls,
                    f"{secs:.2f}",
                    f"{100 * secs / total_compute:.1f}"
                    if total_compute > 0 else "-",
                )
                for name, (calls, secs) in sorted(
                    stages.items(), key=lambda kv: -kv[1][1]
                )
            ],
            title=f"Pipeline stages across {len(entries)} cached artifacts",
        )
    )
    throughput = [
        (name, c["units"], c.get("unit_seconds", 0.0))
        for name, c in sorted(counters.items())
        if c.get("units")
    ]
    if throughput:
        print()
        print(
            format_table(
                ["stage", "units", "units/s", "us/unit"],
                [
                    (
                        name,
                        f"{units:.0f}",
                        f"{units / secs:,.0f}" if secs > 0 else "-",
                        f"{1e6 * secs / units:,.1f}" if secs > 0 else "-",
                    )
                    for name, units, secs in throughput
                ],
                title="Streaming throughput",
            )
        )
    print(
        f"\ncompute invested: {total_compute:.2f}s; "
        f"manifest hits since creation: {total_hits} "
        f"(cache dir {store.root})"
    )
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.analysis import (
        Baseline,
        render_json,
        render_sarif,
        render_text,
        run_check,
    )
    from repro.analysis.baseline import BASELINE_VERSION, DEFAULT_BASELINE_NAME
    from repro.analysis.reporters import render_rule_catalogue

    if args.list_rules:
        print(render_rule_catalogue())
        return 0
    baseline_path = args.baseline or DEFAULT_BASELINE_NAME
    rule_ids = None
    if args.rules:
        rule_ids = [r.strip().upper() for r in args.rules.split(",") if r.strip()]
    jobs = None
    if args.jobs is not None:
        if str(args.jobs).lower() == "auto":
            jobs = os.cpu_count() or 1
        else:
            try:
                jobs = max(1, int(args.jobs))
            except ValueError:
                print(f"error: --jobs must be an integer or 'auto', got "
                      f"{args.jobs!r}", file=sys.stderr)
                return 2
    store = None
    if not args.no_cache:
        from repro.runtime.store import default_store

        store = default_store()
    if args.changed and store is None:
        print("error: --changed needs the analysis cache (drop --no-cache)",
              file=sys.stderr)
        return 2
    try:
        baseline = Baseline.load(baseline_path)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        result = run_check(
            list(args.paths),
            rule_ids=rule_ids,
            baseline=baseline,
            jobs=jobs,
            store=store,
            changed_only=args.changed,
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    if args.write_baseline:
        everything = sorted(result.findings + result.baselined)
        Baseline().save(baseline_path, everything)
        print(f"wrote {baseline_path} ({len(everything)} grandfathered "
              "finding(s))")
        return 0
    # A v1 baseline that loaded cleanly is migrated in place: re-key the
    # findings it currently absorbs under the v2 fingerprint scheme.
    if baseline.version < BASELINE_VERSION and not result.parse_errors:
        Baseline().save(baseline_path, sorted(result.baselined))
        print(f"note: migrated {baseline_path} to version {BASELINE_VERSION} "
              f"({len(result.baselined)} grandfathered finding(s) re-keyed)",
              file=sys.stderr)
    if args.output_format == "json":
        print(render_json(result, strict=args.strict))
    elif args.output_format == "sarif":
        print(render_sarif(result, strict=args.strict))
    else:
        print(render_text(result, strict=args.strict))
    return result.exit_code(strict=args.strict)


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for the ``simprof`` console script."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "figure":
        return _cmd_figure(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "sensitivity":
        return _cmd_sensitivity(args)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "stats":
        return _cmd_stats()
    if args.command == "check":
        return _cmd_check(args)
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
