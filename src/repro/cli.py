"""Command-line interface.

Four subcommands cover the library's everyday entry points::

    simprof list                         # workloads and graph inputs
    simprof run wc_sp --points 20        # run + analyze one benchmark
    simprof figure fig7                  # regenerate a paper figure
    simprof sensitivity cc_sp            # input-sensitivity analysis

``simprof`` is installed as a console script; ``python -m repro.cli``
works identically.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

__all__ = ["main", "build_parser"]

FIGURES = {
    "table1": "repro.experiments.table1:run_table1",
    "table2": "repro.experiments.table2:run_table2",
    "fig6": "repro.experiments.fig06_cov:run_fig6",
    "fig7": "repro.experiments.fig07_errors:run_fig7",
    "fig8": "repro.experiments.fig08_samplesize:run_fig8",
    "fig9": "repro.experiments.fig09_phasecount:run_fig9",
    "fig10": "repro.experiments.fig10_phasetypes:run_fig10",
    "fig11": "repro.experiments.fig11_allocation:run_fig11",
    "fig12": "repro.experiments.fig12_13_sensitivity:run_fig12_13",
    "fig13": "repro.experiments.fig12_13_sensitivity:run_fig12_13",
}


def _parse_label(label: str) -> tuple[str, str]:
    """``wc_sp`` -> ("wc", "spark"); also accepts ``wc spark`` forms."""
    suffixes = {"sp": "spark", "hp": "hadoop", "spark": "spark", "hadoop": "hadoop"}
    if "_" in label:
        workload, _, suffix = label.rpartition("_")
        if suffix in suffixes:
            return workload, suffixes[suffix]
    raise SystemExit(
        f"error: cannot parse benchmark label {label!r} "
        "(expected e.g. wc_sp, cc_hp)"
    )


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="simprof",
        description="SimProf (IPDPS'17) reproduction: sampling framework "
        "for data analytic workloads.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads and graph inputs")

    run = sub.add_parser("run", help="run a benchmark and select points")
    run.add_argument("label", help="benchmark label, e.g. wc_sp or cc_hp")
    run.add_argument("--points", type=int, default=20,
                     help="simulation points to select (default 20)")
    run.add_argument("--scale", type=float, default=1.0,
                     help="input-volume multiplier (default 1.0)")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--graph", default=None,
                     help="Table II input name for graph workloads")
    run.add_argument("--unit-size", type=int, default=100_000_000)
    run.add_argument("--snapshot-period", type=int, default=2_000_000)
    run.add_argument("--error", type=float, default=None,
                     help="also solve the sample size for this relative "
                     "CPI error bound (e.g. 0.05)")
    run.add_argument("--export-dir", default=None,
                     help="write <label>.simpoints/.weights (SimPoint "
                     "format) into this directory")

    fig = sub.add_parser("figure", help="regenerate a paper table/figure")
    fig.add_argument("name", choices=sorted(FIGURES),
                     help="which experiment to run")
    fig.add_argument("--scale", type=float, default=1.0)
    fig.add_argument("--seed", type=int, default=0)
    fig.add_argument("--unit-size", type=int, default=100_000_000)
    fig.add_argument("--snapshot-period", type=int, default=2_000_000)
    fig.add_argument("--draws", type=int, default=20,
                     help="sampling draws averaged for SRS/SimProf")

    report = sub.add_parser(
        "report", help="run every experiment and write a markdown report"
    )
    report.add_argument("--output", "-o", default="simprof_report.md")
    report.add_argument("--scale", type=float, default=1.0)
    report.add_argument("--seed", type=int, default=0)
    report.add_argument("--unit-size", type=int, default=100_000_000)
    report.add_argument("--snapshot-period", type=int, default=2_000_000)
    report.add_argument("--draws", type=int, default=20)
    report.add_argument("--no-extensions", action="store_true")

    sens = sub.add_parser(
        "sensitivity", help="input-sensitivity analysis for a graph workload"
    )
    sens.add_argument("label", help="cc_sp, cc_hp, rank_sp or rank_hp")
    sens.add_argument("--references", nargs="*", default=None,
                      help="reference input names (default: all seven)")
    sens.add_argument("--scale", type=float, default=1.0)
    sens.add_argument("--points", type=int, default=20)
    return parser


def _cmd_list() -> int:
    from repro.datagen.seeds import GRAPH_INPUTS
    from repro.experiments.common import format_table
    from repro.workloads import WORKLOADS

    print(
        format_table(
            ["abbrev", "workload", "type", "labels"],
            [
                (cls.abbrev, cls.name, cls.workload_type,
                 f"{cls.abbrev}_hp, {cls.abbrev}_sp")
                for cls in WORKLOADS.values()
            ],
            title="Workloads (Table I)",
        )
    )
    print()
    print(
        format_table(
            ["input", "type", "role", "nodes"],
            [
                (g.name, g.category, g.role, g.n_nodes)
                for g in GRAPH_INPUTS.values()
            ],
            title="Graph inputs (Table II)",
        )
    )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro import SimProf, SimProfConfig
    from repro.datagen.seeds import get_graph_input
    from repro.experiments.common import format_table
    from repro.workloads import run_workload

    workload, framework = _parse_label(args.label)
    graph = get_graph_input(args.graph) if args.graph else None
    print(f"Running {args.label} (scale {args.scale}, seed {args.seed}) ...")
    trace = run_workload(
        workload,
        framework,
        scale=args.scale,
        seed=args.seed,
        graph=graph,
        input_name=args.graph or "default",
    )
    simprof = SimProf(
        SimProfConfig(
            unit_size=args.unit_size,
            snapshot_period=args.snapshot_period,
            seed=args.seed,
        )
    )
    result = simprof.analyze(trace, n_points=args.points)

    print(
        format_table(
            ["phase", "weight", "CPI", "CoV", "points", "dominant method"],
            [
                (
                    s.phase_id,
                    f"{s.weight:.1%}",
                    f"{s.cpi_mean:.3f}",
                    f"{s.cpi_cov:.3f}",
                    int(result.points.allocation[s.phase_id]),
                    (result.model.top_methods(s.phase_id, 1) or [("-", 0)])[0][0],
                )
                for s in result.phase_stats
            ],
            title=(
                f"{args.label}: {result.job.n_units} units, "
                f"{result.n_phases} phases"
            ),
        )
    )
    lo, hi = result.points.confidence_interval(0.997)
    print(f"\nsimulation points: {[int(p) for p in result.simulation_points]}")
    print(
        f"estimate {result.points.estimate:.4f} vs oracle "
        f"{result.oracle_cpi():.4f} (error {result.sampling_error():.2%}); "
        f"99.7% CI [{lo:.4f}, {hi:.4f}]"
    )
    if args.error is not None:
        n = simprof.sample_size_for(
            result.job, result.model, relative_error=args.error
        )
        print(f"sample size for {args.error:.0%} error bound: {n} units")
    if args.export_dir is not None:
        from repro.core.export import export_simpoints

        files = export_simpoints(
            result.points, result.model, args.export_dir, basename=args.label
        )
        print(f"wrote {files.simpoints} and {files.weights}")
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    import importlib

    from repro.core.pipeline import SimProfConfig
    from repro.experiments.common import ExperimentConfig

    spec = FIGURES[args.name]
    module_name, _, fn_name = spec.partition(":")
    fn = getattr(importlib.import_module(module_name), fn_name)
    if args.name.startswith("table"):
        result = fn()
    else:
        cfg = ExperimentConfig(
            scale=args.scale,
            seed=args.seed,
            n_sampling_draws=args.draws,
            simprof=SimProfConfig(
                seed=args.seed,
                unit_size=args.unit_size,
                snapshot_period=args.snapshot_period,
            ),
        )
        result = fn(cfg)
    print(result.to_text())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.core.pipeline import SimProfConfig
    from repro.experiments.common import ExperimentConfig
    from repro.experiments.report import generate_report

    cfg = ExperimentConfig(
        scale=args.scale,
        seed=args.seed,
        n_sampling_draws=args.draws,
        simprof=SimProfConfig(
            seed=args.seed,
            unit_size=args.unit_size,
            snapshot_period=args.snapshot_period,
        ),
    )
    text = generate_report(
        cfg,
        include_extensions=not args.no_extensions,
        progress=lambda msg: print(f"  running {msg} ..."),
    )
    with open(args.output, "w") as fh:
        fh.write(text)
    print(f"wrote {args.output}")
    return 0


def _cmd_sensitivity(args: argparse.Namespace) -> int:
    from repro.core.pipeline import SimProfConfig
    from repro.experiments.common import ExperimentConfig
    from repro.experiments.fig12_13_sensitivity import run_fig12_13

    workload, framework = _parse_label(args.label)
    if workload not in ("cc", "rank"):
        raise SystemExit("error: sensitivity analysis targets cc/rank")
    cfg = ExperimentConfig(scale=args.scale, simprof=SimProfConfig())
    result = run_fig12_13(
        cfg,
        n_points=args.points,
        reference_names=tuple(args.references) if args.references else None,
    )
    print(result.to_text())
    print()
    detail = result.details[f"{workload}_{'sp' if framework == 'spark' else 'hp'}"]
    for phase in detail.phases:
        verdict = "SENSITIVE" if phase.sensitive else "insensitive"
        by = f" ({', '.join(phase.triggered_by)})" if phase.triggered_by else ""
        print(f"  phase {phase.phase_id}: {verdict}{by}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for the ``simprof`` console script."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "figure":
        return _cmd_figure(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "sensitivity":
        return _cmd_sensitivity(args)
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
