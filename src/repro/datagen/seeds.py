"""Table II input catalog: eight SNAP-style graph inputs.

The paper downloads eight SNAP graphs and, because the originals are
small and unevenly sized, synthesises Kronecker graphs "that have
connectivity similar to the original graph".  We do the same one step
earlier: each catalog entry carries a 2×2 initiator in the style a
Kronfit run produces for that seed's family —

* web graphs (Google, Stanford, Wikipedia): strong core-periphery,
  heavy-tailed degrees;
* social/community graphs (Facebook, Flickr): even heavier hubs;
* collaboration / co-purchase graphs (DBLP, Amazon): milder skew,
  more clustering mass off the diagonal;
* road networks: near-uniform low degrees (almost no skew).

Paper scales are 2^20–2^24 nodes; the default here is 2^13–2^15 so a
full input-sensitivity sweep runs offline in seconds.  ``scale_delta``
restores (or further shrinks) the paper scale when desired.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.datagen.kronecker import KroneckerSpec, generate_kronecker_edges

__all__ = [
    "GraphInput",
    "GRAPH_INPUTS",
    "TRAINING_INPUT",
    "REFERENCE_INPUTS",
    "get_graph_input",
]


@dataclass(frozen=True, slots=True)
class GraphInput:
    """One Table II row: a named synthetic-graph input."""

    name: str
    category: str
    role: str  # "training" | "reference"
    spec: KroneckerSpec

    def edges(self, seed: int = 0, scale_delta: int = 0) -> np.ndarray:
        """Materialise the edge list (optionally rescaled)."""
        spec = self.spec
        if scale_delta:
            spec = replace(spec, scale=max(1, spec.scale + scale_delta))
        return generate_kronecker_edges(spec, seed)

    @property
    def n_nodes(self) -> int:
        """Nodes at the catalog's default scale."""
        return self.spec.n_nodes


def _entry(
    name: str,
    category: str,
    role: str,
    initiator: tuple[float, float, float, float],
    scale: int,
    edge_factor: int,
) -> GraphInput:
    a, b, c, d = initiator
    return GraphInput(
        name=name,
        category=category,
        role=role,
        spec=KroneckerSpec(
            initiator=((a, b), (c, d)), scale=scale, edge_factor=edge_factor
        ),
    )


# Table II of the paper.  Google is the training input; the seven others
# are reference inputs.  Initiators follow published Kronfit fits for
# each graph family; scales are staggered as in the paper ("between
# 2^20 and 2^24", here 2^13..2^15).
GRAPH_INPUTS: dict[str, GraphInput] = {
    g.name: g
    for g in (
        _entry("Google", "Web graph", "training", (0.90, 0.53, 0.53, 0.20), 14, 12),
        _entry("Facebook", "Social network", "reference", (0.95, 0.58, 0.58, 0.30), 13, 16),
        _entry("Flickr", "Online communities", "reference", (0.99, 0.45, 0.45, 0.38), 13, 14),
        _entry("Wikipedia", "Online encyclopedia", "reference", (0.88, 0.60, 0.60, 0.22), 14, 12),
        _entry("DBLP", "CS bibliography", "reference", (0.84, 0.46, 0.46, 0.36), 13, 8),
        _entry("Stanford", "Web graph", "reference", (0.92, 0.50, 0.50, 0.16), 13, 10),
        _entry("Amazon", "Product co-purchasing", "reference", (0.80, 0.50, 0.50, 0.45), 13, 6),
        _entry("Road", "Road network", "reference", (0.55, 0.45, 0.45, 0.55), 15, 3),
    )
}

TRAINING_INPUT: GraphInput = GRAPH_INPUTS["Google"]
REFERENCE_INPUTS: tuple[GraphInput, ...] = tuple(
    g for g in GRAPH_INPUTS.values() if g.role == "reference"
)


def get_graph_input(name: str) -> GraphInput:
    """Catalog lookup by name (case-insensitive)."""
    for key, g in GRAPH_INPUTS.items():
        if key.lower() == name.lower():
            return g
    raise KeyError(
        f"unknown graph input {name!r}; available: {sorted(GRAPH_INPUTS)}"
    )
