"""Input synthesis: BigDataBench-style text and Kronecker graphs."""

from repro.datagen.text import TextSpec, synthesize_text, synthesize_labeled_text
from repro.datagen.kronecker import KroneckerSpec, generate_kronecker_edges
from repro.datagen.seeds import (
    GRAPH_INPUTS,
    GraphInput,
    REFERENCE_INPUTS,
    TRAINING_INPUT,
    get_graph_input,
)

__all__ = [
    "GRAPH_INPUTS",
    "GraphInput",
    "KroneckerSpec",
    "REFERENCE_INPUTS",
    "TRAINING_INPUT",
    "TextSpec",
    "generate_kronecker_edges",
    "get_graph_input",
    "synthesize_labeled_text",
    "synthesize_text",
]
